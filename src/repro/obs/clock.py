"""The sanctioned monotonic-clock seam.

``tools/check_invariants.py`` bans direct time reads
(``time.time``/``time.perf_counter``/``datetime.now``/...) in engine,
stream, and storage code: wall clocks make results depend on when a
query runs, and scattering raw monotonic reads makes instrumentation
impossible to stub in tests or virtualize for replay.  All durations in
those layers come from this module instead — one function, one import,
one place a test or a simulator can monkeypatch.

The value is *monotonic and unitless-origin*: only differences are
meaningful.  Never persist it, compare it across processes, or render
it as a timestamp.
"""

from __future__ import annotations

import time as _time

__all__ = ["monotonic"]


def monotonic() -> float:
    """Seconds on a monotonic clock; only differences are meaningful."""
    return _time.perf_counter()
