"""Hierarchical query tracing with a Chrome ``trace_event`` exporter.

A :class:`Tracer` hands out spans through a context manager::

    with tracer.span("scan", pattern="e1") as span:
        ...
        span.set(path=info.name, fetched=fetched)

``tools/check_invariants.py`` enforces that every ``.span(...)`` call
*is* a ``with`` context expression, so spans close on all exception
paths by construction.  Span stacks are thread-local — the parallel
executor runs sub-queries on a thread pool and each worker thread's
spans nest independently — and every finished span records a stable
small ``tid`` so Chrome's viewer lays the threads out as tracks.

:data:`NULL_TRACER` is the disabled implementation: ``span()`` returns
a shared no-op whose ``set()`` does nothing, so instrumented code pays
one method call per span (not per row) when tracing is off.
"""

from __future__ import annotations

import json
import threading
from typing import Iterable

from repro.obs.clock import monotonic

__all__ = ["Span", "Tracer", "NULL_TRACER", "chrome_trace"]


class Span:
    """One timed operation; re-entrant ``with`` target via the tracer."""

    __slots__ = ("name", "start", "end", "depth", "tid", "attrs", "_tracer")

    def __init__(self, name: str, tracer: "Tracer", depth: int, tid: int,
                 attrs: dict) -> None:
        self.name = name
        self.start = monotonic()
        self.end: float | None = None
        self.depth = depth
        self.tid = tid
        self.attrs = attrs
        self._tracer = tracer

    def set(self, **attrs: object) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    @property
    def elapsed(self) -> float:
        end = self.end if self.end is not None else monotonic()
        return end - self.start

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end = monotonic()
        self._tracer._finish(self)


class Tracer:
    """Collects one query's spans; create a fresh one per traced query."""

    def __init__(self) -> None:
        self.origin = monotonic()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._finished: list[Span] = []
        self._tids: dict[int, int] = {}

    def span(self, name: str, **attrs: object) -> Span:
        """Open a span.  Must be used as ``with tracer.span(...) as s:``."""
        stack = self._stack()
        span = Span(name, self, depth=len(stack), tid=self._tid(), attrs=attrs)
        stack.append(span)
        return span

    def spans(self) -> list[Span]:
        """Finished spans in completion order (inner before outer)."""
        with self._lock:
            return list(self._finished)

    def chrome(self) -> dict:
        """The trace as a Chrome ``trace_event`` JSON-ready dict."""
        return chrome_trace(self.spans(), origin=self.origin)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.chrome(), indent=indent)

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _tid(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            tid = self._tids.get(ident)
            if tid is None:
                tid = self._tids[ident] = len(self._tids)
            return tid

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - misnested close
            stack.remove(span)
        with self._lock:
            self._finished.append(span)


class _NullSpan:
    """Shared do-nothing span for the disabled tracer."""

    __slots__ = ()

    def set(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


class _NullTracer(Tracer):
    """Tracing disabled: ``span()`` is one call returning a shared no-op."""

    def __init__(self) -> None:
        self._null = _NullSpan()

    def span(self, name: str, **attrs: object) -> "Span":
        return self._null  # type: ignore[return-value]

    def spans(self) -> list[Span]:
        return []

    def chrome(self) -> dict:
        return chrome_trace(())


#: The shared disabled tracer; ``options.tracer or NULL_TRACER`` is the
#: idiom at every instrumented site.
NULL_TRACER = _NullTracer()


def chrome_trace(spans: Iterable[Span], origin: float | None = None) -> dict:
    """Spans as Chrome's ``trace_event`` format (complete ``X`` events).

    Load the result in ``chrome://tracing`` / Perfetto: one track per
    engine thread, nesting inferred from time containment.  Attribute
    values are stringified when not JSON-native so arbitrary spec/path
    objects survive export.
    """
    spans = list(spans)
    if origin is None:
        origin = min((span.start for span in spans), default=0.0)
    events = []
    for span in sorted(spans, key=lambda s: s.start):
        end = span.end if span.end is not None else span.start
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": (span.start - origin) * 1e6,
            "dur": (end - span.start) * 1e6,
            "pid": 1,
            "tid": span.tid,
            "cat": "query",
            "args": {key: _jsonable(value)
                     for key, value in span.attrs.items()},
        })
    return {"displayTimeUnit": "ms", "traceEvents": events}


def _jsonable(value: object) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)
