"""Observability: metrics registry, tracing, and the sanctioned clock.

A dependency-free layer the whole system reports through:

* :mod:`repro.obs.clock` — the one sanctioned monotonic time source for
  engine/stream/storage code (``tools/check_invariants.py`` bans raw
  ``time.*`` reads there and points offenders here);
* :mod:`repro.obs.metrics` — process-local counters, gauges, and
  bounded-memory log-bucketed histograms whose snapshots are plain
  picklable data that *merge* — shard workers ship theirs over the
  existing shardrpc and the coordinator aggregates;
* :mod:`repro.obs.trace` — hierarchical spans (parse → analyze → plan →
  schedule → per-pattern scan → join → project) with per-span
  attributes, exported as Chrome ``trace_event`` JSON.

This is the substrate the future async query service's admission
control and SLOs will read; nothing here imports outside the stdlib.
"""

from repro.obs.clock import monotonic
from repro.obs.metrics import (REGISTRY, HistogramSnapshot, MetricsRegistry,
                               MetricsSnapshot)
from repro.obs.trace import NULL_TRACER, Span, Tracer, chrome_trace

__all__ = ["monotonic", "REGISTRY", "MetricsRegistry", "MetricsSnapshot",
           "HistogramSnapshot", "Tracer", "Span", "NULL_TRACER",
           "chrome_trace"]
