"""Process-local metrics: counters, gauges, log-bucketed histograms.

Design constraints, in order:

* **Hot-path cheap.**  Instrumented code holds metric *handles* (created
  once at import or construction time); recording is an ``enabled``
  check plus a dict/int update — no locks, no allocation.  A disabled
  registry costs one attribute load and a branch, which is what the
  ``bench_storage`` overhead-budget test pins to ≤5%.
* **Bounded memory.**  Histograms never keep raw observations: values
  land in sparse logarithmic buckets (:data:`BUCKETS_PER_DECADE` per
  ×10), so a histogram's size is O(decades spanned), not O(samples),
  and p50/p95/p99 are read from cumulative bucket counts with ~±12%
  relative error — plenty for latency telemetry.
* **Mergeable snapshots.**  :meth:`MetricsRegistry.snapshot` returns
  plain picklable data; shard workers ship theirs over the existing
  shardrpc and the coordinator folds them together with
  :meth:`MetricsSnapshot.merge` — counters sum, gauges take the
  last-written value, histogram buckets add.

``reset()`` zeroes metrics *in place* so cached handles stay live —
tests and the overhead benchmark rely on that.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass, field

__all__ = ["BUCKETS_PER_DECADE", "Counter", "Gauge", "Histogram",
           "HistogramSnapshot", "MetricsRegistry", "MetricsSnapshot",
           "REGISTRY", "bucket_index", "bucket_value"]

#: Log-bucket resolution: 10 buckets per decade keeps the relative
#: quantile error under ~12% (10**0.1 ≈ 1.26 bucket ratio) while a
#: µs-to-minutes latency range still fits in ~80 buckets.
BUCKETS_PER_DECADE = 10

#: Sparse-bucket key for observations ≤ 0 (log undefined); its
#: representative value is 0.0.
ZERO_BUCKET = -(10 ** 9)


def bucket_index(value: float) -> int:
    """The sparse log-bucket an observation falls into."""
    if value <= 0.0:
        return ZERO_BUCKET
    return math.floor(math.log10(value) * BUCKETS_PER_DECADE)


def bucket_value(index: int) -> float:
    """A bucket's representative value (its geometric midpoint)."""
    if index == ZERO_BUCKET:
        return 0.0
    return 10.0 ** ((index + 0.5) / BUCKETS_PER_DECADE)


class Counter:
    """A monotonically increasing count (events scanned, rounds pruned)."""

    __slots__ = ("name", "value", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.value: float = 0
        self._registry = registry

    def inc(self, amount: float = 1) -> None:
        if self._registry.enabled:
            self.value += amount

    def _reset(self) -> None:
        self.value = 0


class Gauge:
    """A last-write-wins level (queue depth, watermark lag, state size)."""

    __slots__ = ("name", "value", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self.value: float = 0.0
        self._registry = registry

    def set(self, value: float) -> None:
        if self._registry.enabled:
            self.value = value

    def _reset(self) -> None:
        self.value = 0.0


class Histogram:
    """A bounded-memory latency/size distribution with p50/p95/p99."""

    __slots__ = ("name", "count", "total", "vmin", "vmax", "buckets",
                 "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self._reset()

    def _reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def snapshot(self) -> "HistogramSnapshot":
        return HistogramSnapshot(count=self.count, total=self.total,
                                 vmin=self.vmin, vmax=self.vmax,
                                 buckets=dict(self.buckets))


@dataclass
class HistogramSnapshot:
    """Frozen histogram state: plain data, picklable, mergeable."""

    count: int = 0
    total: float = 0.0
    vmin: float = math.inf
    vmax: float = -math.inf
    buckets: dict[int, int] = field(default_factory=dict)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The value at quantile ``q`` (0..1), clamped to [vmin, vmax].

        Walks the cumulative bucket counts and returns the covering
        bucket's geometric midpoint — exact to within one bucket's
        width (~±12% relative).
        """
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return min(max(bucket_value(index), self.vmin), self.vmax)
        return self.vmax  # pragma: no cover - bucket counts always cover

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Bucket-wise sum — the distribution of the pooled samples."""
        buckets = dict(self.buckets)
        for index, count in other.buckets.items():
            buckets[index] = buckets.get(index, 0) + count
        return HistogramSnapshot(count=self.count + other.count,
                                 total=self.total + other.total,
                                 vmin=min(self.vmin, other.vmin),
                                 vmax=max(self.vmax, other.vmax),
                                 buckets=buckets)

    def to_dict(self) -> dict:
        return {"count": self.count, "total": self.total,
                "min": None if self.count == 0 else self.vmin,
                "max": None if self.count == 0 else self.vmax,
                "p50": self.percentile(0.50), "p95": self.percentile(0.95),
                "p99": self.percentile(0.99), "mean": self.mean,
                "buckets": {str(k): v for k, v in self.buckets.items()}}

    @classmethod
    def from_dict(cls, data: dict) -> "HistogramSnapshot":
        count = int(data["count"])
        return cls(count=count, total=float(data["total"]),
                   vmin=math.inf if data.get("min") is None
                   else float(data["min"]),
                   vmax=-math.inf if data.get("max") is None
                   else float(data["max"]),
                   buckets={int(k): int(v)
                            for k, v in data.get("buckets", {}).items()})


@dataclass
class MetricsSnapshot:
    """One registry's state at a point in time: plain, picklable data.

    Merge semantics (the contract the sharded tier depends on):
    counters **sum**, gauges take the **last write** (``other`` wins),
    histogram **buckets add**.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSnapshot] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        gauges.update(other.gauges)          # last write wins
        histograms = dict(self.histograms)
        for name, hist in other.histograms.items():
            mine = histograms.get(name)
            histograms[name] = hist if mine is None else mine.merge(hist)
        return MetricsSnapshot(counters=counters, gauges=gauges,
                               histograms=histograms)

    @classmethod
    def merged(cls, snapshots: "list[MetricsSnapshot]") -> "MetricsSnapshot":
        out = cls()
        for snapshot in snapshots:
            out = out.merge(snapshot)
        return out

    def to_dict(self) -> dict:
        return {"counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {name: hist.to_dict()
                               for name, hist in self.histograms.items()}}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsSnapshot":
        return cls(counters=dict(data.get("counters", {})),
                   gauges=dict(data.get("gauges", {})),
                   histograms={name: HistogramSnapshot.from_dict(hist)
                               for name, hist
                               in data.get("histograms", {}).items()})

    @classmethod
    def from_json(cls, text: str) -> "MetricsSnapshot":
        return cls.from_dict(json.loads(text))


class MetricsRegistry:
    """Get-or-create registry of named metrics for one process.

    Handle creation takes a lock; recording through a handle does not
    (updates are GIL-coarse — at per-scan/per-batch granularity the
    worst case under racing engine threads is an undercount, never a
    crash).  ``enabled`` gates every record so the overhead benchmark
    can measure the instrumented-but-idle cost.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name, self)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name, self)
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name, self)
            return metric

    def snapshot(self) -> MetricsSnapshot:
        """Frozen plain-data copy of every metric with any signal."""
        with self._lock:
            return MetricsSnapshot(
                counters={name: c.value
                          for name, c in self._counters.items() if c.value},
                gauges={name: g.value for name, g in self._gauges.items()},
                histograms={name: h.snapshot()
                            for name, h in self._histograms.items()
                            if h.count})

    def reset(self) -> None:
        """Zero every metric *in place* — cached handles stay live."""
        with self._lock:
            for counter in self._counters.values():
                counter._reset()
            for gauge in self._gauges.values():
                gauge._reset()
            for histogram in self._histograms.values():
                histogram._reset()


#: The process-global registry every layer records into.  Shard worker
#: processes get their own copy (fresh module state after spawn), which
#: is exactly what makes their snapshots per-worker.
REGISTRY = MetricsRegistry()
