"""``python -m repro`` — the AIQL command line."""

from repro.ui.main import main

if __name__ == "__main__":
    raise SystemExit(main())
