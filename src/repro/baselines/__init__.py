"""Comparison baselines: relational (SQLite-as-PostgreSQL) and graph."""

from repro.baselines.cypher_translator import translate_cypher
from repro.baselines.graph import GraphRun, GraphStore
from repro.baselines.sql_translator import translate
from repro.baselines.sqlite_backend import RelationalBaseline, SqlRun

__all__ = [
    "translate_cypher", "GraphRun", "GraphStore", "translate",
    "RelationalBaseline", "SqlRun",
]
