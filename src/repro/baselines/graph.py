"""The graph-database baseline (Neo4j stand-in).

Entities become property nodes and events become typed edges; queries are
answered by *traversal-based pattern matching*: candidates for the first
pattern come from an edge scan, and subsequent patterns expand through
adjacency lists of already-bound nodes.  That mirrors how a graph engine
evaluates a Cypher path — fast at expansions, but with no cost-based join
reordering and no statistics, which is exactly the weakness the paper
observes: "Neo4j runs generally slower than PostgreSQL since it lacks
support for efficient joins, which are required in expressing attack
behaviors with multiple steps."

Patterns are matched in declaration order (Cypher's default behaviour when
no planner statistics exist), with constraint predicates compiled from the
same AIQL AST the optimized engine uses, so result sets are identical and
only the execution strategy differs.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass

from repro.errors import ExecutionError
from repro.lang.ast import DependencyQuery, MultieventQuery, Query
from repro.model.events import Event
from repro.engine.dependency import rewrite_dependency
from repro.engine.executor import project_bindings
from repro.engine.joiner import Binding, TemporalCheck
from repro.engine.planner import DataQuery, plan_multievent


@dataclass
class GraphRun:
    """One executed graph query with timing and projected rows."""

    columns: list[str]
    rows: list[tuple]
    elapsed: float
    expansions: int


class GraphStore:
    """In-memory property graph: entity nodes, event edges."""

    def __init__(self) -> None:
        self._edges: list[Event] = []
        self._out: dict[tuple, list[Event]] = defaultdict(list)
        self._in: dict[tuple, list[Event]] = defaultdict(list)

    def load_events(self, events) -> int:
        count = 0
        for event in events:
            self._edges.append(event)
            self._out[event.subject.identity].append(event)
            self._in[event.object.identity].append(event)
            count += 1
        return count

    def load_store(self, store) -> int:
        return self.load_events(store.scan())

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    @property
    def node_count(self) -> int:
        return len(set(self._out) | set(self._in))

    # ------------------------------------------------------------------
    # Traversal-based pattern matching
    # ------------------------------------------------------------------
    def run_query(self, query: Query,
                  step_limit: int = 50_000_000) -> GraphRun:
        """Match an AIQL multievent/dependency query by graph traversal."""
        if isinstance(query, DependencyQuery):
            query = rewrite_dependency(query)
        if not isinstance(query, MultieventQuery):
            raise ExecutionError(
                "the graph baseline executes multievent and dependency "
                "queries only")
        started = time.perf_counter()
        plan = plan_multievent(query)
        checks = [TemporalCheck(rel.left, rel.right, rel.within)
                  for rel in plan.temporal]
        matcher = _Matcher(self, plan.data_queries, checks, plan.window,
                           step_limit)
        bindings = matcher.match()
        if plan.relations:
            bindings = [binding for binding in bindings
                        if all(check.holds(binding)
                               for check in plan.relations)]
        columns, rows = project_bindings(plan, query, bindings)
        elapsed = time.perf_counter() - started
        return GraphRun(columns=columns, rows=rows, elapsed=elapsed,
                        expansions=matcher.expansions)


class _Matcher:
    """Backtracking subgraph matcher in declaration order."""

    def __init__(self, store: GraphStore, data_queries, checks,
                 window, step_limit: int) -> None:
        self._store = store
        self._data_queries = list(data_queries)  # declaration order
        self._checks = checks
        self._window = window
        self._limit = step_limit
        self.expansions = 0

    def match(self) -> list[Binding]:
        results: list[Binding] = []
        self._extend({}, 0, results)
        return results

    def _extend(self, binding: Binding, depth: int,
                results: list[Binding]) -> None:
        if depth == len(self._data_queries):
            results.append(dict(binding))
            return
        dq = self._data_queries[depth]
        for event in self._candidates(dq, binding):
            self.expansions += 1
            if self.expansions > self._limit:
                raise ExecutionError(
                    f"graph traversal exceeded {self._limit} expansions")
            if not self._admissible(dq, event, binding):
                continue
            added = self._bind(dq, event, binding)
            self._extend(binding, depth + 1, results)
            for key in added:
                del binding[key]

    def _candidates(self, dq: DataQuery, binding: Binding):
        """Expansion through a bound endpoint when possible, else a scan."""
        subject = binding.get(dq.subject_var)
        if subject is not None:
            return self._store._out.get(
                subject.identity, ())  # type: ignore[attr-defined]
        obj = binding.get(dq.object_var)
        if obj is not None:
            return self._store._in.get(
                obj.identity, ())  # type: ignore[attr-defined]
        return self._store._edges

    def _admissible(self, dq: DataQuery, event: Event,
                    binding: Binding) -> bool:
        if event.event_type != dq.event_type:
            return False
        if event.operation not in dq.operations:
            return False
        if self._window is not None and not self._window.contains(event.ts):
            return False
        if dq.agentids is not None and event.agentid not in dq.agentids:
            return False
        if not dq.predicate(event):
            return False
        bound_subject = binding.get(dq.subject_var)
        if (bound_subject is not None
                and event.subject.identity
                != bound_subject.identity):  # type: ignore[attr-defined]
            return False
        bound_object = binding.get(dq.object_var)
        if (bound_object is not None
                and event.object.identity
                != bound_object.identity):  # type: ignore[attr-defined]
            return False
        # Eager temporal checks against already-bound events.  Two pattern
        # variables may bind the same event (as in SQL self-joins), so the
        # check runs whenever both endpoints are resolvable.
        for check in self._checks:
            left = (event if check.left == dq.event_var
                    else binding.get(check.left))
            right = (event if check.right == dq.event_var
                     else binding.get(check.right))
            if left is None or right is None:
                continue
            probe = {check.left: left, check.right: right}
            if not check.holds(probe):
                return False
        return True

    def _bind(self, dq: DataQuery, event: Event,
              binding: Binding) -> list[str]:
        added = []
        for key, value in ((dq.event_var, event),
                           (dq.subject_var, event.subject),
                           (dq.object_var, event.object)):
            if key not in binding:
                binding[key] = value
                added.append(key)
        return added
