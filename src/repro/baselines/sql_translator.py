"""AIQL -> SQL translation: the "semantically equivalent SQL queries".

This produces exactly what the paper compares against: one *monolithic*
SQL query per AIQL query, with every pattern a self-join alias and all the
joins and constraints woven together, leaving scheduling to the SQL
engine's planner.  The same translator output feeds (a) the performance
baselines (executed in SQLite) and (b) the conciseness metrics (constraint
/ word / character counts of the query text).

Dependency queries are rewritten to multievent queries first (they have no
direct SQL counterpart).  Anomaly queries translate to a recursive-CTE
sliding-window query with LAG() for historical aggregate access.
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.lang.ast import (AggCall, AnomalyQuery, BinOp, Constraint,
                            DependencyQuery, Expr, HistoryRef, Literal,
                            MultieventQuery, NotOp, Query,
                            VarRef, expr_history_refs)
from repro.model.entities import DEFAULT_ATTRIBUTE, canonical_attribute
from repro.model.events import canonical_event_attribute
from repro.engine.dependency import rewrite_dependency
from repro.baselines.schema import (event_column, identity_column,
                                    object_column, sql_quote, subject_column)


def translate(query: Query) -> str:
    """Translate any AIQL query to a single SQL statement."""
    if isinstance(query, DependencyQuery):
        return translate(rewrite_dependency(query))
    if isinstance(query, MultieventQuery):
        return _translate_multievent(query)
    if isinstance(query, AnomalyQuery):
        return _translate_anomaly(query)
    raise TranslationError(f"cannot translate {type(query).__name__}")


# ---------------------------------------------------------------------------
# Multievent
# ---------------------------------------------------------------------------

def _variable_occurrences(query: MultieventQuery) -> dict[str, list[tuple]]:
    """Entity variable -> [(alias, role, entity_type), ...] in order."""
    occurrences: dict[str, list[tuple]] = {}
    for pattern in query.patterns:
        alias = pattern.event_var
        occurrences.setdefault(pattern.subject.variable, []).append(
            (alias, "subject", pattern.subject.entity_type))
        occurrences.setdefault(pattern.object.variable, []).append(
            (alias, "object", pattern.object.entity_type))
    return occurrences


def _constraint_sql(alias: str, role: str, entity_type: str,
                    constraint: Constraint) -> str:
    attribute = constraint.attribute
    if attribute is None:
        attribute = DEFAULT_ATTRIBUTE[entity_type]
    else:
        attribute = canonical_attribute(entity_type, attribute)
    if role == "subject":
        column = subject_column(attribute)
    else:
        column = object_column(entity_type, attribute)
    return _comparison_sql(f"{alias}.{column}", constraint.op,
                           constraint.value)


def _comparison_sql(lhs: str, op: str, value: object) -> str:
    if op == "like":
        return f"{lhs} LIKE {sql_quote(value)}"
    if op == "in":
        rendered = ", ".join(sql_quote(v) for v in value)  # type: ignore
        return f"{lhs} IN ({rendered})"
    sql_op = {"=": "=", "!=": "<>", "<": "<", "<=": "<=", ">": ">",
              ">=": ">="}[op]
    return f"{lhs} {sql_op} {sql_quote(value)}"


def _global_conjuncts(query, alias: str) -> list[str]:
    conjuncts = []
    window = query.header.window
    if window is not None:
        conjuncts.append(f"{alias}.ts >= {window.start!r}")
        conjuncts.append(f"{alias}.ts < {window.end!r}")
    for constraint in query.header.constraints:
        column = event_column(canonical_event_attribute(
            constraint.attribute or ""))
        conjuncts.append(_comparison_sql(f"{alias}.{column}", constraint.op,
                                         constraint.value))
    return conjuncts


def _return_column(item_expr: VarRef, query: MultieventQuery,
                   occurrences: dict[str, list[tuple]]) -> str:
    variable = item_expr.variable
    event_vars = {p.event_var for p in query.patterns}
    if variable in event_vars:
        attribute = canonical_event_attribute(item_expr.attribute or "id")
        return f"{variable}.{event_column(attribute)}"
    if variable not in occurrences:
        raise TranslationError(f"unknown return variable {variable!r}")
    alias, role, entity_type = occurrences[variable][0]
    attribute = item_expr.attribute
    if attribute is None:
        attribute = DEFAULT_ATTRIBUTE[entity_type]
    else:
        attribute = canonical_attribute(entity_type, attribute)
    if role == "subject":
        return f"{alias}.{subject_column(attribute)}"
    return f"{alias}.{object_column(entity_type, attribute)}"


def _translate_multievent(query: MultieventQuery) -> str:
    occurrences = _variable_occurrences(query)
    aliases = [pattern.event_var for pattern in query.patterns]
    conjuncts: list[str] = []
    for pattern in query.patterns:
        alias = pattern.event_var
        conjuncts.append(
            f"{alias}.etype = {sql_quote(pattern.object.entity_type)}")
        if len(pattern.operations) == 1:
            conjuncts.append(
                f"{alias}.operation = {sql_quote(pattern.operations[0])}")
        else:
            ops = ", ".join(sql_quote(op) for op in pattern.operations)
            conjuncts.append(f"{alias}.operation IN ({ops})")
        conjuncts.extend(_global_conjuncts(query, alias))
    # Bracket constraints: every occurrence of a variable carries the union
    # of that variable's constraints (AIQL's constraint chaining), exactly
    # as the planner does, so both engines see identical semantics.
    merged: dict[str, list[Constraint]] = {}
    for pattern in query.patterns:
        for entity in (pattern.subject, pattern.object):
            bucket = merged.setdefault(entity.variable, [])
            for constraint in entity.constraints:
                if constraint not in bucket:
                    bucket.append(constraint)
    for variable, places in occurrences.items():
        for constraint in merged.get(variable, ()):  # chained constraints
            for alias, role, entity_type in places:
                conjuncts.append(_constraint_sql(alias, role, entity_type,
                                                 constraint))
    # Shared-variable joins on interned entity ids.
    for variable, places in occurrences.items():
        if len(places) < 2:
            continue
        first_alias, first_role, _t = places[0]
        anchor = f"{first_alias}.{identity_column(first_role)}"
        for alias, role, _etype in places[1:]:
            conjuncts.append(f"{alias}.{identity_column(role)} = {anchor}")
    # Temporal relationships.
    for relation in query.temporal:
        rel = relation.normalized()
        conjuncts.append(f"{rel.left}.ts < {rel.right}.ts")
        if rel.within is not None:
            conjuncts.append(
                f"{rel.right}.ts - {rel.left}.ts <= {rel.within!r}")
    # Explicit attribute relationships (with p1.user = p2.user).
    for attr_relation in query.relations:
        left = _return_column(attr_relation.left, query, occurrences)
        right = _return_column(attr_relation.right, query, occurrences)
        sql_op = {"=": "=", "!=": "<>"}.get(attr_relation.op,
                                            attr_relation.op)
        conjuncts.append(f"{left} {sql_op} {right}")
    select_parts = []
    for item in query.return_items:
        if not isinstance(item.expr, VarRef):
            raise TranslationError(
                "multievent return items must be variables or attributes")
        column = _return_column(item.expr, query, occurrences)
        select_parts.append(f"{column} AS {item.name}"
                            if item.alias else column)
    distinct = "DISTINCT " if query.distinct else ""
    from_clause = ", ".join(f"events {alias}" for alias in aliases)
    where_clause = "\n  AND ".join(dict.fromkeys(conjuncts))
    sql = (f"SELECT {distinct}{', '.join(select_parts)}\n"
           f"FROM {from_clause}\n"
           f"WHERE {where_clause}")
    if query.sort_by:
        keys = []
        for key in query.sort_by:
            column = _return_column(key.expr, query, occurrences)
            keys.append(f"{column} DESC" if key.descending else column)
        sql += "\nORDER BY " + ", ".join(keys)
    if query.top is not None:
        sql += f"\nLIMIT {query.top}"
    return sql


# ---------------------------------------------------------------------------
# Anomaly
# ---------------------------------------------------------------------------

def _anomaly_group_columns(query: AnomalyQuery) -> list[tuple[str, str]]:
    """(result name, SQL expression over alias e) per group-by ref."""
    pattern = query.patterns[0]
    columns = []
    for ref in query.group_by:
        if ref.variable == pattern.event_var:
            attribute = canonical_event_attribute(ref.attribute or "id")
            columns.append((str(ref), f"e.{event_column(attribute)}"))
            continue
        if ref.variable == pattern.subject.variable:
            role, etype = "subject", pattern.subject.entity_type
        elif ref.variable == pattern.object.variable:
            role, etype = "object", pattern.object.entity_type
        else:
            raise TranslationError(f"unknown group-by {ref.variable!r}")
        if ref.attribute is None:
            # Bare entity variables group by interned identity; display
            # columns come from the default attribute.
            columns.append((str(ref), f"e.{identity_column(role)}"))
        else:
            attribute = canonical_attribute(etype, ref.attribute)
            column = (subject_column(attribute) if role == "subject"
                      else object_column(etype, attribute))
            columns.append((str(ref), f"e.{column}"))
    return columns


def _anomaly_display_columns(query: AnomalyQuery) -> dict[str, str]:
    """Group-by ref text -> display expression (default attribute)."""
    pattern = query.patterns[0]
    display = {}
    for ref in query.group_by:
        if ref.attribute is not None or ref.variable == pattern.event_var:
            continue
        if ref.variable == pattern.subject.variable:
            role, etype = "subject", pattern.subject.entity_type
        else:
            role, etype = "object", pattern.object.entity_type
        attribute = DEFAULT_ATTRIBUTE[etype]
        column = (subject_column(attribute) if role == "subject"
                  else object_column(etype, attribute))
        display[str(ref)] = f"e.{column}"
    return display


def _agg_sql(call: AggCall, query: AnomalyQuery) -> str:
    pattern = query.patterns[0]
    func = {"avg": "AVG", "sum": "SUM", "count": "COUNT", "min": "MIN",
            "max": "MAX"}.get(call.func)
    if func is None:
        raise TranslationError(
            f"aggregate {call.func!r} has no SQL translation")
    if call.arg is None:
        return "COUNT(*)"
    ref = call.arg
    if ref.variable == pattern.event_var:
        if ref.attribute is None:
            return "COUNT(*)" if call.func == "count" else "COUNT(e.id)"
        column = f"e.{event_column(canonical_event_attribute(ref.attribute))}"
    elif ref.variable == pattern.subject.variable:
        attribute = (DEFAULT_ATTRIBUTE['proc'] if ref.attribute is None else
                     canonical_attribute("proc", ref.attribute))
        column = f"e.{subject_column(attribute)}"
    else:
        etype = pattern.object.entity_type
        attribute = (DEFAULT_ATTRIBUTE[etype] if ref.attribute is None else
                     canonical_attribute(etype, ref.attribute))
        column = f"e.{object_column(etype, attribute)}"
    # AVG/SUM over the empty set are NULL in SQL but 0 in AIQL; COALESCE
    # keeps the backends' semantics aligned.
    return f"{func}({column})"


def _having_sql(expr: Expr, aliases: set[str]) -> str:
    if isinstance(expr, Literal):
        return sql_quote(expr.value)
    if isinstance(expr, VarRef):
        if expr.attribute is None and expr.variable in aliases:
            return expr.variable
        return str(expr).replace(".", "_")
    if isinstance(expr, HistoryRef):
        return f"{expr.alias}_h{expr.offset}"
    if isinstance(expr, NotOp):
        return f"NOT ({_having_sql(expr.operand, aliases)})"
    if isinstance(expr, BinOp):
        op = {"and": "AND", "or": "OR", "=": "=", "!=": "<>"}.get(
            expr.op, expr.op)
        left = _having_sql(expr.left, aliases)
        right = _having_sql(expr.right, aliases)
        if expr.op == "/":
            # SQLite integer division truncates; force real division to
            # match AIQL arithmetic.
            return f"({left} * 1.0 / {right})"
        return f"({left} {op} {right})"
    if isinstance(expr, AggCall):
        raise TranslationError(
            "aggregates in having must be aliased in the return clause "
            "for SQL translation")
    raise TranslationError(f"untranslatable having expression {expr!r}")


def _translate_anomaly(query: AnomalyQuery) -> str:
    """Sliding windows via a recursive CTE + LAG() for history access."""
    if len(query.patterns) != 1:
        raise TranslationError("anomaly translation supports one pattern")
    pattern = query.patterns[0]
    window = query.header.window
    if window is None:
        raise TranslationError(
            "anomaly SQL translation requires an explicit time window")
    spec = query.window_spec
    conjuncts = [f"e.etype = {sql_quote(pattern.object.entity_type)}"]
    if len(pattern.operations) == 1:
        conjuncts.append(
            f"e.operation = {sql_quote(pattern.operations[0])}")
    else:
        ops = ", ".join(sql_quote(op) for op in pattern.operations)
        conjuncts.append(f"e.operation IN ({ops})")
    for constraint in pattern.subject.constraints:
        conjuncts.append(_constraint_sql("e", "subject", "proc", constraint))
    for constraint in pattern.object.constraints:
        conjuncts.append(_constraint_sql("e", "object",
                                         pattern.object.entity_type,
                                         constraint))
    for constraint in query.header.constraints:
        column = event_column(canonical_event_attribute(
            constraint.attribute or ""))
        conjuncts.append(_comparison_sql(f"e.{column}", constraint.op,
                                         constraint.value))
    group_columns = _anomaly_group_columns(query)
    display_columns = _anomaly_display_columns(query)
    agg_selects = []
    aliases = set()
    for item in query.return_items:
        if isinstance(item.expr, AggCall):
            agg_selects.append(
                f"{_agg_sql(item.expr, query)} AS {item.name}")
            aliases.add(item.name)
    group_selects = [f"{expr} AS {name.replace('.', '_')}"
                     for name, expr in group_columns]
    display_selects = [f"MIN({expr}) AS {name.replace('.', '_')}_display"
                       for name, expr in display_columns.items()]
    history_selects = []
    partition = ", ".join(name.replace('.', '_') for name, _ in
                          group_columns) or "1"
    if query.having is not None:
        for ref in expr_history_refs(query.having):
            history_selects.append(
                f"LAG({ref.alias}, {ref.offset}) OVER "
                f"(PARTITION BY {partition} ORDER BY widx) "
                f"AS {ref.alias}_h{ref.offset}")
    inner_select = ", ".join(
        ["w.idx AS widx", "w.wstart AS wstart"] + group_selects
        + display_selects + agg_selects)
    group_by_inner = ", ".join(
        ["w.idx", "w.wstart"] + [expr for _n, expr in group_columns])
    where_clause = "\n      AND ".join(dict.fromkeys(conjuncts))
    steps = max(1, int((window.duration + spec.step - 1) // spec.step))
    having_clause = ""
    if query.having is not None:
        having_clause = ("\nWHERE " + _having_sql(query.having, aliases))
    mid_select = ", ".join(["widx", "wstart"]
                           + [name.replace('.', '_')
                              for name, _ in group_columns]
                           + [f"{name.replace('.', '_')}_display"
                              for name in display_columns]
                           + sorted(aliases) + history_selects)
    final_names = []
    for item in query.return_items:
        if isinstance(item.expr, AggCall):
            final_names.append(item.name)
        else:
            text = str(item.expr)
            final_names.append(
                f"{text.replace('.', '_')}_display"
                if text in display_columns else text.replace('.', '_'))
    return f"""WITH RECURSIVE wins(idx, wstart) AS (
  SELECT 0, {window.start!r}
  UNION ALL
  SELECT idx + 1, wstart + {spec.step!r} FROM wins
  WHERE idx + 1 < {steps}
),
windowed AS (
  SELECT {inner_select}
  FROM wins w
  JOIN events e ON e.ts >= w.wstart AND e.ts < w.wstart + {spec.width!r}
  WHERE {where_clause}
  GROUP BY {group_by_inner}
),
with_history AS (
  SELECT {mid_select}
  FROM windowed w
)
SELECT wstart, {', '.join(final_names)}
FROM with_history{having_clause}
ORDER BY wstart"""
