"""AIQL -> Cypher translation (for the conciseness comparison).

The paper's §3 notes that "both SQL and Cypher queries become quite verbose
with many joins and constraints".  This translator produces the Cypher a
Neo4j user would write for the same investigation: one ``MATCH`` path
element per event pattern, relationship properties for event attributes,
``WHERE`` for constraints and temporal order.

The text is consumed by :mod:`repro.investigate.conciseness` (it is not
executed — the executable graph baseline is :mod:`repro.baselines.graph`,
which matches the AIQL AST directly so that result sets are directly
comparable).
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.lang.ast import (AnomalyQuery, Constraint, DependencyQuery,
                            MultieventQuery, Query, VarRef)
from repro.model.entities import DEFAULT_ATTRIBUTE, canonical_attribute
from repro.model.events import canonical_event_attribute
from repro.engine.dependency import rewrite_dependency

_NODE_LABELS = {"proc": "Process", "file": "File", "ip": "Connection"}


def translate_cypher(query: Query) -> str:
    """Render the Cypher equivalent of an AIQL query."""
    if isinstance(query, DependencyQuery):
        return translate_cypher(rewrite_dependency(query))
    if isinstance(query, MultieventQuery):
        return _translate_multievent(query)
    if isinstance(query, AnomalyQuery):
        return _translate_anomaly(query)
    raise TranslationError(f"cannot translate {type(query).__name__}")


def _like_to_regex_literal(pattern: str) -> str:
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        elif ch in ".^$*+?{}[]\\|()":
            out.append("\\" + ch)
        else:
            out.append(ch)
    return "(?i)" + "".join(out)


def _value(value: object) -> str:
    if isinstance(value, str):
        return "'" + value.replace("\\", "\\\\").replace("'", "\\'") + "'"
    if isinstance(value, tuple):
        return "[" + ", ".join(_value(v) for v in value) + "]"
    return str(value)


def _constraint(variable: str, entity_type: str,
                constraint: Constraint) -> str:
    attribute = constraint.attribute
    if attribute is None:
        attribute = DEFAULT_ATTRIBUTE[entity_type]
    elif attribute != "agentid":
        attribute = canonical_attribute(entity_type, attribute)
    lhs = f"{variable}.{attribute}"
    if constraint.op == "like":
        return f"{lhs} =~ {_value(_like_to_regex_literal(str(constraint.value)))}"
    if constraint.op == "in":
        return f"{lhs} IN {_value(constraint.value)}"
    op = {"=": "=", "!=": "<>"}.get(constraint.op, constraint.op)
    return f"{lhs} {op} {_value(constraint.value)}"


def _translate_multievent(query: MultieventQuery) -> str:
    match_parts: list[str] = []
    where: list[str] = []
    seen_vars: set[str] = set()
    for pattern in query.patterns:
        subject, obj = pattern.subject, pattern.object
        rel_type = "|".join(op.upper() for op in pattern.operations)
        match_parts.append(
            f"({subject.variable}:{_NODE_LABELS[subject.entity_type]})"
            f"-[{pattern.event_var}:{rel_type}]->"
            f"({obj.variable}:{_NODE_LABELS[obj.entity_type]})")
        for entity in (subject, obj):
            if entity.variable in seen_vars:
                pass  # Cypher reuses the variable, constraints already set.
            seen_vars.add(entity.variable)
            for constraint in entity.constraints:
                clause = _constraint(entity.variable, entity.entity_type,
                                     constraint)
                if clause not in where:
                    where.append(clause)
        window = query.header.window
        if window is not None:
            where.append(f"{pattern.event_var}.ts >= {window.start}")
            where.append(f"{pattern.event_var}.ts < {window.end}")
        for constraint in query.header.constraints:
            attribute = canonical_event_attribute(constraint.attribute or "")
            where.append(
                f"{pattern.event_var}.{attribute} "
                f"{'=' if constraint.op == '=' else constraint.op} "
                f"{_value(constraint.value)}")
    for relation in query.temporal:
        rel = relation.normalized()
        where.append(f"{rel.left}.ts < {rel.right}.ts")
        if rel.within is not None:
            where.append(f"{rel.right}.ts - {rel.left}.ts <= {rel.within}")
    for attr_relation in query.relations:
        op = {"=": "=", "!=": "<>"}.get(attr_relation.op, attr_relation.op)
        where.append(f"{attr_relation.left} {op} {attr_relation.right}")
    returns = []
    for item in query.return_items:
        if not isinstance(item.expr, VarRef):
            raise TranslationError("unsupported return item for Cypher")
        ref = item.expr
        event_vars = {p.event_var for p in query.patterns}
        if ref.variable in event_vars:
            attribute = canonical_event_attribute(ref.attribute or "id")
        else:
            entity_type = _variable_type(query, ref.variable)
            attribute = (DEFAULT_ATTRIBUTE[entity_type]
                         if ref.attribute is None
                         else canonical_attribute(entity_type,
                                                  ref.attribute))
        text = f"{ref.variable}.{attribute}"
        if item.alias:
            text += f" AS {item.alias}"
        returns.append(text)
    distinct = "DISTINCT " if query.distinct else ""
    lines = ["MATCH " + ",\n      ".join(match_parts)]
    if where:
        lines.append("WHERE " + "\n  AND ".join(dict.fromkeys(where)))
    lines.append(f"RETURN {distinct}{', '.join(returns)}")
    if query.sort_by:
        keys = [f"{key.expr}{' DESC' if key.descending else ''}"
                for key in query.sort_by]
        lines.append("ORDER BY " + ", ".join(keys))
    if query.top is not None:
        lines.append(f"LIMIT {query.top}")
    return "\n".join(lines)


def _variable_type(query: MultieventQuery, variable: str) -> str:
    for pattern in query.patterns:
        for entity in (pattern.subject, pattern.object):
            if entity.variable == variable:
                return entity.entity_type
    raise TranslationError(f"unknown variable {variable!r}")


def _translate_anomaly(query: AnomalyQuery) -> str:
    """Cypher for the anomaly query's event selection + aggregation.

    Neo4j has no sliding windows or LAG; the realistic translation buckets
    by window index with integer arithmetic and leaves the historical
    comparison to a client-side post-pass — which is itself part of the
    conciseness point the paper makes.
    """
    pattern = query.patterns[0]
    subject, obj = pattern.subject, pattern.object
    rel_type = "|".join(op.upper() for op in pattern.operations)
    where: list[str] = []
    for entity in (subject, obj):
        for constraint in entity.constraints:
            where.append(_constraint(entity.variable, entity.entity_type,
                                     constraint))
    window = query.header.window
    if window is not None:
        where.append(f"{pattern.event_var}.ts >= {window.start}")
        where.append(f"{pattern.event_var}.ts < {window.end}")
    for constraint in query.header.constraints:
        attribute = canonical_event_attribute(constraint.attribute or "")
        where.append(f"{pattern.event_var}.{attribute} "
                     f"{'=' if constraint.op == '=' else constraint.op} "
                     f"{_value(constraint.value)}")
    start = window.start if window is not None else 0.0
    step = query.window_spec.step
    lines = [
        f"MATCH ({subject.variable}:{_NODE_LABELS[subject.entity_type]})"
        f"-[{pattern.event_var}:{rel_type}]->"
        f"({obj.variable}:{_NODE_LABELS[obj.entity_type]})",
    ]
    if where:
        lines.append("WHERE " + "\n  AND ".join(where))
    group_exprs = [f"{ref.variable}.{DEFAULT_ATTRIBUTE[_anomaly_type(query, ref)]}"
                   if ref.attribute is None and ref.variable != pattern.event_var
                   else str(ref) for ref in query.group_by]
    lines.append(
        f"WITH {', '.join(group_exprs) or '1 AS one'}, "
        f"toInteger(({pattern.event_var}.ts - {start}) / {step}) AS widx, "
        f"avg({pattern.event_var}.amount) AS amt")
    lines.append("RETURN * ORDER BY widx "
                 "// history comparison requires client-side post-processing")
    return "\n".join(lines)


def _anomaly_type(query: AnomalyQuery, ref: VarRef) -> str:
    pattern = query.patterns[0]
    if ref.variable == pattern.subject.variable:
        return pattern.subject.entity_type
    if ref.variable == pattern.object.variable:
        return pattern.object.entity_type
    raise TranslationError(f"unknown group-by variable {ref.variable!r}")
