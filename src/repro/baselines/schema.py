"""The flattened relational schema shared by the SQL baseline components.

The paper's comparison executes "semantically equivalent SQL queries" in
PostgreSQL; here the stand-in engine is stdlib SQLite over a conventional
flattened audit-event table (one row per event, entity attributes denormal-
ized into subject/object column groups, interned entity ids for joins).
"""

from __future__ import annotations

from repro.errors import TranslationError

EVENTS_TABLE = "events"

CREATE_EVENTS_SQL = """
CREATE TABLE events (
    id INTEGER PRIMARY KEY,
    ts REAL NOT NULL,
    agentid INTEGER NOT NULL,
    operation TEXT NOT NULL,
    etype TEXT NOT NULL,
    amount INTEGER NOT NULL DEFAULT 0,
    failcode INTEGER NOT NULL DEFAULT 0,
    subj_id INTEGER NOT NULL,
    subj_agentid INTEGER NOT NULL,
    subj_pid INTEGER NOT NULL,
    subj_exe TEXT NOT NULL,
    subj_user TEXT,
    subj_cmdline TEXT,
    subj_start_time REAL,
    obj_id INTEGER NOT NULL,
    obj_agentid INTEGER,
    obj_pid INTEGER,
    obj_exe TEXT,
    obj_user TEXT,
    obj_cmdline TEXT,
    obj_start_time REAL,
    obj_name TEXT,
    obj_owner TEXT,
    obj_src_ip TEXT,
    obj_src_port INTEGER,
    obj_dst_ip TEXT,
    obj_dst_port INTEGER,
    obj_protocol TEXT
)
"""

# The paper's optimized storage: composite spatial/temporal index plus
# per-attribute secondary indexes (the in-memory-index analogue).
OPTIMIZED_INDEX_SQL = (
    "CREATE INDEX idx_events_agent_ts ON events(agentid, ts)",
    "CREATE INDEX idx_events_ts ON events(ts)",
    "CREATE INDEX idx_events_op ON events(etype, operation)",
    "CREATE INDEX idx_events_subj_exe ON events(subj_exe)",
    "CREATE INDEX idx_events_obj_name ON events(obj_name)",
    "CREATE INDEX idx_events_obj_exe ON events(obj_exe)",
    "CREATE INDEX idx_events_obj_dst_ip ON events(obj_dst_ip)",
    "CREATE INDEX idx_events_subj_id ON events(subj_id)",
    "CREATE INDEX idx_events_obj_id ON events(obj_id)",
)

# AIQL entity attribute -> SQL column, per role and entity type.
_SUBJECT_COLUMNS = {
    "agentid": "subj_agentid",
    "pid": "subj_pid",
    "exe_name": "subj_exe",
    "user": "subj_user",
    "cmdline": "subj_cmdline",
    "start_time": "subj_start_time",
}

_OBJECT_COLUMNS = {
    "proc": {
        "agentid": "obj_agentid",
        "pid": "obj_pid",
        "exe_name": "obj_exe",
        "user": "obj_user",
        "cmdline": "obj_cmdline",
        "start_time": "obj_start_time",
    },
    "file": {
        "agentid": "obj_agentid",
        "name": "obj_name",
        "owner": "obj_owner",
    },
    "ip": {
        "agentid": "obj_agentid",
        "src_ip": "obj_src_ip",
        "src_port": "obj_src_port",
        "dst_ip": "obj_dst_ip",
        "dst_port": "obj_dst_port",
        "protocol": "obj_protocol",
    },
}

_EVENT_COLUMNS = {
    "id": "id",
    "ts": "ts",
    "agentid": "agentid",
    "operation": "operation",
    "amount": "amount",
    "failcode": "failcode",
}


def subject_column(attribute: str) -> str:
    try:
        return _SUBJECT_COLUMNS[attribute]
    except KeyError:
        raise TranslationError(
            f"no SQL column for subject attribute {attribute!r}") from None


def object_column(entity_type: str, attribute: str) -> str:
    try:
        return _OBJECT_COLUMNS[entity_type][attribute]
    except KeyError:
        raise TranslationError(
            f"no SQL column for {entity_type} attribute "
            f"{attribute!r}") from None


def event_column(attribute: str) -> str:
    try:
        return _EVENT_COLUMNS[attribute]
    except KeyError:
        raise TranslationError(
            f"no SQL column for event attribute {attribute!r}") from None


def identity_column(role: str) -> str:
    """The interned-entity id column used for shared-variable joins."""
    return "subj_id" if role == "subject" else "obj_id"


def sql_quote(value: object) -> str:
    """Render a literal for inline SQL (values come from parsed AIQL)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"
