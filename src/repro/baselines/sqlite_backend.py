"""The relational baseline: SQLite standing in for PostgreSQL.

Two roles live here.  :class:`SqliteEventStore` is a full
:class:`~repro.storage.backend.StorageBackend` implementation (the
``sqlite`` registry entry): an indexed events table that the *optimized
engine* drives through the candidates/estimate/select surface, letting the
scheduler's pruning-power ordering and binding propagation run on top of a
relational substrate.  :class:`RelationalBaseline` is the paper's
evaluation baseline, which instead executes the *monolithic* translated
SQL join query.

For the baseline, two storage configurations reproduce the paper's two
comparisons:

* ``optimized=True`` — "PostgreSQL w/ our optimized storage" (Figure 4):
  the events table gets the composite spatial/temporal index plus
  secondary indexes on the attributes AIQL indexes in memory, and the
  planner is fed ANALYZE statistics.
* ``optimized=False`` — "PostgreSQL w/o our optimized storage" (Figure 5):
  a flat heap table with no secondary indexes and SQLite's automatic
  transient indexes disabled, so every join degenerates the way the paper
  describes.

Either way the baseline executes the *monolithic* SQL join query produced
by :mod:`repro.baselines.sql_translator` — all joins and constraints woven
together, scheduling left to the SQL planner — which is precisely the
methodology of the paper's evaluation.
"""

from __future__ import annotations

import json
import math
import sqlite3
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.errors import StorageError, TranslationError
from repro.lang.ast import Query
from repro.model.entities import (Entity, FileEntity, NetworkEntity,
                                  ProcessEntity)
from repro.model.events import Event, validate_operation
from repro.model.timeutil import SECONDS_PER_DAY, SPAN_EPSILON, Window
from repro.baselines.schema import CREATE_EVENTS_SQL, OPTIMIZED_INDEX_SQL
from repro.baselines.sql_translator import translate
from repro.storage.backend import (AccessPathInfo, ScanSpec,
                                   StorageBackend, resolve_spec,
                                   select_via_candidates)
from repro.storage.dedup import EntityInterner
from repro.storage.scanstats import FrequencySketch
from repro.storage.serialize import entity_from_dict, entity_to_dict
from repro.storage.stats import PatternProfile

if TYPE_CHECKING:
    from repro.engine.filters import CompiledPredicate


@dataclass
class SqlRun:
    """One executed SQL statement with its timing and result rows."""

    sql: str
    columns: list[str]
    rows: list[tuple]
    elapsed: float


class RelationalBaseline:
    """An events table in SQLite, loadable from a store or event list."""

    def __init__(self, optimized: bool = True) -> None:
        self.optimized = optimized
        self._conn = sqlite3.connect(":memory:")
        self._conn.execute(CREATE_EVENTS_SQL)
        if not optimized:
            # Without the automatic transient indexes SQLite would quietly
            # build per-join indexes and mask the unoptimized storage.
            self._conn.execute("PRAGMA automatic_index = OFF")
        self._entity_ids: dict[tuple, int] = {}
        self._loaded = 0

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _entity_id(self, identity: tuple) -> int:
        existing = self._entity_ids.get(identity)
        if existing is not None:
            return existing
        assigned = len(self._entity_ids) + 1
        self._entity_ids[identity] = assigned
        return assigned

    def load_events(self, events) -> int:
        """Bulk-insert events (flattening entities into columns)."""
        rows = [self._flatten(event) for event in events]
        self._conn.executemany(
            "INSERT INTO events VALUES (" + ", ".join(["?"] * 28) + ")",
            rows)
        self._conn.commit()
        self._loaded += len(rows)
        return len(rows)

    def load_store(self, store: StorageBackend) -> int:
        return self.load_events(store.scan())

    def finalize(self) -> None:
        """Create indexes and statistics (optimized configuration only)."""
        if self.optimized:
            for statement in OPTIMIZED_INDEX_SQL:
                self._conn.execute(statement)
            self._conn.execute("ANALYZE")
        self._conn.commit()

    def _flatten(self, event: Event) -> tuple:
        subject = event.subject
        obj = event.object
        subj_id = self._entity_id(subject.identity)
        obj_id = self._entity_id(obj.identity)
        base = (event.id, event.ts, event.agentid, event.operation,
                obj.entity_type, event.amount, event.failcode,
                subj_id, subject.agentid, subject.pid, subject.exe_name,
                subject.user, subject.cmdline, subject.start_time, obj_id)
        if isinstance(obj, ProcessEntity):
            return base + (obj.agentid, obj.pid, obj.exe_name, obj.user,
                           obj.cmdline, obj.start_time, None, None,
                           None, None, None, None, None)
        if isinstance(obj, FileEntity):
            return base + (obj.agentid, None, None, None, None, None,
                           obj.name, obj.owner, None, None, None, None,
                           None)
        if isinstance(obj, NetworkEntity):
            return base + (obj.agentid, None, None, None, None, None,
                           None, None, obj.src_ip, obj.src_port,
                           obj.dst_ip, obj.dst_port, obj.protocol)
        raise TranslationError(f"unknown entity type {obj!r}")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_sql(self, sql: str) -> SqlRun:
        started = time.perf_counter()
        cursor = self._conn.execute(sql)
        rows = cursor.fetchall()
        elapsed = time.perf_counter() - started
        columns = [desc[0] for desc in cursor.description or ()]
        return SqlRun(sql=sql, columns=columns, rows=rows, elapsed=elapsed)

    def run_query(self, query: Query) -> SqlRun:
        """Translate an AIQL query and execute it."""
        return self.run_sql(translate(query))

    @property
    def event_count(self) -> int:
        return self._loaded

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RelationalBaseline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------------
# SqliteEventStore: the ``sqlite`` StorageBackend
# ---------------------------------------------------------------------------

_BACKEND_SCHEMA = """
CREATE TABLE IF NOT EXISTS backend_events (
    id INTEGER NOT NULL,
    ts REAL NOT NULL,
    agentid INTEGER NOT NULL,
    etype TEXT NOT NULL,
    op TEXT NOT NULL,
    subject_name TEXT NOT NULL,
    object_value TEXT,
    payload TEXT NOT NULL,
    subject_key TEXT NOT NULL DEFAULT '',
    object_key TEXT NOT NULL DEFAULT ''
)
"""

_BACKEND_COLUMNS = ("id", "ts", "agentid", "etype", "op", "subject_name",
                    "object_value", "payload", "subject_key", "object_key")


def _aiql_like(pattern: str, value: object) -> bool:
    """SQL-callable LIKE with the engine's exact (Unicode) semantics."""
    from repro.storage.indexes import like_to_regex
    return (isinstance(value, str)
            and like_to_regex(pattern).match(value) is not None)


def identity_key(identity: tuple) -> str:
    """Canonical text form of an entity identity tuple.

    Identity tuples are flat sequences of JSON scalars, so the compact
    JSON list is a stable, persistent key — the column the identity
    pushdown's ``IN (...)`` predicates compare against.  Numbers are
    normalized to float first: Python compares ``0 == 0.0`` (so the
    engine's identity joins and the ``admits`` fallback treat them as the
    same identity) but their JSON texts differ, and a textual mismatch
    here would silently drop true matches from the pushdown.
    """
    return json.dumps(
        [float(value)
         if isinstance(value, (int, float)) and not isinstance(value, bool)
         else value
         for value in identity],
        separators=(",", ":"))


_BACKEND_INDEXES = (
    "CREATE INDEX IF NOT EXISTS be_agent_ts ON backend_events(agentid, ts)",
    "CREATE INDEX IF NOT EXISTS be_ts ON backend_events(ts)",
    "CREATE INDEX IF NOT EXISTS be_type_op ON backend_events(etype, op)",
    "CREATE INDEX IF NOT EXISTS be_subject ON backend_events(subject_name)",
    "CREATE INDEX IF NOT EXISTS be_object "
    "ON backend_events(etype, object_value)",
    "CREATE INDEX IF NOT EXISTS be_subject_key "
    "ON backend_events(subject_key)",
    "CREATE INDEX IF NOT EXISTS be_object_key "
    "ON backend_events(object_key)",
)


class SqliteEventStore:
    """An indexed SQLite events table behind the StorageBackend surface.

    The index-visible parts of a pattern profile compile to a SQL
    ``WHERE`` clause (the relational analogue of the row store's
    best-access-path selection); the fused residual predicate then runs
    per candidate, exactly as for the row store.  Events round-trip
    through the JSONL wire format in a ``payload`` column, with entities
    re-interned on materialization so identity joins stay canonical.
    """

    backend_name = "sqlite"

    def __init__(self, bucket_seconds: float = SECONDS_PER_DAY,
                 path: str = ":memory:") -> None:
        if bucket_seconds <= 0:
            raise StorageError("bucket size must be positive")
        self._bucket_seconds = bucket_seconds
        # The parallel executor issues sub-queries from worker threads;
        # SQLite connections are not thread-safe, so serialize access.
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.Lock()
        with self._lock:
            self._conn.execute(_BACKEND_SCHEMA)
            self._migrate_identity_keys()
            for statement in _BACKEND_INDEXES:
                self._conn.execute(statement)
            # AIQL-LIKE with exact engine semantics (Unicode case folding),
            # so LIKE pushdown can never drop rows SQL LIKE would miss.
            self._conn.create_function(
                "aiql_like", 2, _aiql_like, deterministic=True)
        self._interner = EntityInterner()
        # Identity-key frequency sketches: built lazily on first use (a
        # reopened archive back-fills them with one key scan), updated
        # incrementally on insert.  They cap estimates for binding sets
        # too large to compile into an ``IN (...)`` predicate.
        self._sketches: tuple[FrequencySketch, FrequencySketch] | None = None
        # A persistent path may reopen an existing table: resume counters
        # from it so len()/span stay truthful and new ids never collide.
        row = self._conn.execute(
            "SELECT COUNT(*), MAX(id) FROM backend_events").fetchone()
        self._count = int(row[0])
        self._max_id = int(row[1]) if row[1] is not None else 0

    #: Bounded retry for write transactions that hit SQLITE_BUSY — a
    #: persistent archive can be shared with another process holding the
    #: write lock.  ``BUSY_BACKOFF`` seconds before the first retry,
    #: doubling each attempt; after ``BUSY_RETRIES`` retries the busy
    #: error surfaces as a :class:`~repro.errors.StorageError`.
    BUSY_RETRIES = 5
    BUSY_BACKOFF = 0.01

    @staticmethod
    def _is_busy(exc: sqlite3.OperationalError) -> bool:
        text = str(exc).lower()
        return "locked" in text or "busy" in text

    def _write_transaction(self, work, locked: bool = False) -> None:
        """Run ``work(conn)`` in one explicit immediate transaction.

        ``BEGIN IMMEDIATE`` takes the write lock up front, so a busy
        database fails here — before any statement ran — and the whole
        transaction retries with exponential backoff.  Either every
        statement ``work`` issues commits atomically or none do.
        ``locked=True`` means the caller already holds ``self._lock``
        (the constructor's migration path).
        """
        delay = self.BUSY_BACKOFF
        for attempt in range(self.BUSY_RETRIES + 1):
            with nullcontext() if locked else self._lock:
                try:
                    self._conn.execute("BEGIN IMMEDIATE")
                except sqlite3.OperationalError as exc:
                    if not self._is_busy(exc):
                        raise
                    if attempt == self.BUSY_RETRIES:
                        raise StorageError(
                            f"database busy after {attempt} retries: {exc}"
                            ) from exc
                else:
                    try:
                        work(self._conn)
                        self._conn.execute("COMMIT")
                        return
                    except sqlite3.OperationalError as exc:
                        if self._conn.in_transaction:
                            self._conn.execute("ROLLBACK")
                        if not self._is_busy(exc):
                            raise
                        if attempt == self.BUSY_RETRIES:
                            raise StorageError(
                                f"database busy after {attempt} retries: "
                                f"{exc}") from exc
            # Back off outside the lock so readers are not starved while
            # the other writer finishes.
            time.sleep(delay)
            delay *= 2

    def _migrate_identity_keys(self) -> None:
        """Upgrade a pre-pushdown persistent table in place.

        Databases written before the identity-key columns existed lack
        ``subject_key``/``object_key``; add them and backfill from the
        payload so ``IN (...)`` pushdown works against old archives too.
        Caller holds the lock.
        """
        columns = {row[1] for row in self._conn.execute(
            "PRAGMA table_info(backend_events)")}
        if "subject_key" in columns:
            return

        def migrate(conn: sqlite3.Connection) -> None:
            for name in ("subject_key", "object_key"):
                conn.execute(
                    f"ALTER TABLE backend_events "
                    f"ADD COLUMN {name} TEXT NOT NULL DEFAULT ''")
            # Backfill in bounded rowid-keyed chunks: a large archive
            # never pulls every payload into memory, and each SELECT
            # completes before its chunk's UPDATEs run.
            last_rowid = 0
            while True:
                rows = conn.execute(
                    "SELECT rowid, payload FROM backend_events "
                    "WHERE rowid > ? ORDER BY rowid LIMIT 10000",
                    (last_rowid,)).fetchall()
                if not rows:
                    break
                updates = []
                for rowid, payload_text in rows:
                    payload = json.loads(payload_text)
                    subject = entity_from_dict(payload["subject"])
                    obj = entity_from_dict(payload["object"])
                    updates.append((identity_key(subject.identity),
                                    identity_key(obj.identity), rowid))
                conn.executemany(
                    "UPDATE backend_events "
                    "SET subject_key = ?, object_key = ? "
                    "WHERE rowid = ?", updates)
                last_rowid = rows[-1][0]

        # One immediate transaction: a concurrent writer sees either the
        # pre-migration table or the fully backfilled one, never a torn
        # half-migrated schema.
        self._write_transaction(migrate, locked=True)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def record(self, ts: float, agentid: int, operation: str,
               subject: ProcessEntity, obj: Entity, amount: int = 0,
               failcode: int = 0) -> Event:
        subject = self._interner.intern(subject)
        obj = self._interner.intern(obj)
        operation = validate_operation(obj.entity_type, operation)
        event = Event(id=self._max_id + 1, ts=ts, agentid=agentid,
                      operation=operation, subject=subject, object=obj,
                      amount=amount, failcode=failcode)
        self._insert([event])
        return event

    def ingest(self, events: Iterable[Event],
               chunk_size: int = 1000) -> int:
        """Stream events into the table in bounded executemany chunks."""
        batch: list[Event] = []
        count = 0
        for event in events:
            subject = self._interner.intern(event.subject)
            obj = self._interner.intern(event.object)
            if subject is not event.subject or obj is not event.object:
                event = Event(id=event.id, ts=event.ts,
                              agentid=event.agentid,
                              operation=event.operation, subject=subject,
                              object=obj, amount=event.amount,
                              failcode=event.failcode)
            batch.append(event)
            if len(batch) >= chunk_size:
                self._insert(batch)
                count += len(batch)
                batch.clear()
        if batch:
            self._insert(batch)
            count += len(batch)
        return count

    def _insert(self, events: list[Event]) -> None:
        rows = [(event.id, event.ts, event.agentid, event.event_type,
                 event.operation, event.subject.exe_name,
                 event.object.default_attribute,
                 json.dumps(self._payload(event), separators=(",", ":")),
                 identity_key(event.subject.identity),
                 identity_key(event.object.identity))
                for event in events]
        columns = ", ".join(_BACKEND_COLUMNS)
        marks = ", ".join("?" for _ in _BACKEND_COLUMNS)
        self._write_transaction(lambda conn: conn.executemany(
            f"INSERT INTO backend_events ({columns}) VALUES ({marks})",
            rows))
        self._count += len(rows)
        if self._sketches is not None:
            subject_sketch, object_sketch = self._sketches
            for row in rows:
                subject_sketch.add(row[8])
                object_sketch.add(row[9])
        for event in events:
            if event.id > self._max_id:
                self._max_id = event.id

    @staticmethod
    def _payload(event: Event) -> dict:
        return {"amount": event.amount, "failcode": event.failcode,
                "subject": entity_to_dict(event.subject),
                "object": entity_to_dict(event.object)}

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _materialize(self, row: tuple) -> Event:
        eid, ts, agentid, operation, payload_text = row
        payload = json.loads(payload_text)
        subject = self._interner.intern(entity_from_dict(payload["subject"]))
        obj = self._interner.intern(entity_from_dict(payload["object"]))
        assert isinstance(subject, ProcessEntity)
        return Event(id=eid, ts=ts, agentid=agentid, operation=operation,
                     subject=subject, object=obj,
                     amount=payload.get("amount", 0),
                     failcode=payload.get("failcode", 0))

    @staticmethod
    def _bounds(window: Window | None, agentids: set[int] | None,
                ) -> tuple[list[str], list[object]]:
        clauses: list[str] = []
        params: list[object] = []
        if window is not None:
            clauses.append("ts >= ? AND ts < ?")
            params.extend((window.start, window.end))
        if agentids is not None:
            if not agentids:
                clauses.append("0")
            else:
                marks = ", ".join("?" for _ in agentids)
                clauses.append(f"agentid IN ({marks})")
                params.extend(sorted(agentids))
        return clauses, params

    @staticmethod
    def _profile_clauses(profile: PatternProfile,
                         ) -> tuple[list[str], list[object]]:
        clauses: list[str] = []
        params: list[object] = []
        if profile.event_type is not None:
            clauses.append("etype = ?")
            params.append(profile.event_type)
        if profile.operations:
            marks = ", ".join("?" for _ in profile.operations)
            clauses.append(f"op IN ({marks})")
            params.extend(sorted(profile.operations))
        # LIKE goes through the registered aiql_like() function, not SQL
        # LIKE: SQL LIKE is only ASCII case-insensitive while AIQL LIKE
        # folds full Unicode (on the data side too), and a narrower
        # pushdown would drop true matches from the candidate superset.
        if profile.subject_exact is not None:
            clauses.append("subject_name = ?")
            params.append(profile.subject_exact)
        elif profile.subject_like is not None:
            clauses.append("aiql_like(?, subject_name)")
            params.append(profile.subject_like)
        if profile.event_type is not None:
            if profile.object_exact is not None:
                clauses.append("object_value = ?")
                params.append(profile.object_exact)
            elif profile.object_like is not None:
                clauses.append("aiql_like(?, object_value)")
                params.append(profile.object_like)
        return clauses, params

    #: Combined host-parameter budget for the binding ``IN (...)`` lists
    #: of one statement.  SQLite caps host parameters (999 on builds
    #: before 3.32); a side that does not fit the remaining budget is
    #: dropped and the scheduler's exact post-filter takes over, which is
    #: always sound.
    MAX_BINDING_PARAMS = 500

    @classmethod
    def _binding_clauses(cls, bindings: "IdentityBindings | None",
                         ) -> tuple[list[str], list[object],
                                    list[tuple[str, frozenset]]]:
        """Compile identity bindings into indexed ``IN (...)`` predicates.

        Returns ``(clauses, params, dropped)`` where ``dropped`` lists
        the sides that blew the host-parameter budget — the scan falls
        back to the engine's exact post-filter for those, and ``estimate``
        caps their cardinality with the identity-key frequency sketches.
        """
        clauses: list[str] = []
        params: list[object] = []
        dropped: list[tuple[str, frozenset]] = []
        if bindings is None or not bindings:
            return clauses, params, dropped
        budget = cls.MAX_BINDING_PARAMS
        for column, identities in (("subject_key", bindings.subjects),
                                   ("object_key", bindings.objects)):
            if identities is None:
                continue
            if len(identities) > budget:
                dropped.append((column, identities))
                continue
            if not identities:
                clauses.append("0")
                continue
            keys = sorted(identity_key(identity) for identity in identities)
            marks = ", ".join("?" for _ in keys)
            clauses.append(f"{column} IN ({marks})")
            params.extend(keys)
            budget -= len(keys)
        return clauses, params, dropped

    @staticmethod
    def _bounds_clauses(bounds: "TemporalBounds | None",
                        ) -> tuple[list[str], list[object]]:
        """Compile temporal bounds into indexed ts predicates.

        An inclusive two-sided interval becomes ``ts BETWEEN ? AND ?``;
        strict sides fall back to plain comparisons.  Either shape drives
        the ``be_ts`` (or composite ``be_agent_ts``) index, so the
        narrowed interval is a range scan instead of a post-filter.
        """
        clauses: list[str] = []
        params: list[object] = []
        if bounds is None or not bounds:
            return clauses, params
        if bounds.unsatisfiable:
            return ["0"], []
        lo_finite = bounds.lo != -math.inf
        hi_finite = bounds.hi != math.inf
        if (lo_finite and hi_finite
                and not bounds.lo_strict and not bounds.hi_strict):
            clauses.append("ts BETWEEN ? AND ?")
            params.extend((bounds.lo, bounds.hi))
            return clauses, params
        if lo_finite:
            clauses.append("ts > ?" if bounds.lo_strict else "ts >= ?")
            params.append(bounds.lo)
        if hi_finite:
            clauses.append("ts < ?" if bounds.hi_strict else "ts <= ?")
            params.append(bounds.hi)
        return clauses, params

    def _fetch(self, sql: str, params: list[object]) -> list[tuple]:
        with self._lock:
            return self._conn.execute(sql, params).fetchall()

    def scan(self, window: Window | None = None,
             agentids: set[int] | None = None) -> list[Event]:
        clauses, params = self._bounds(window, agentids)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._fetch(
            "SELECT id, ts, agentid, op, payload FROM backend_events"
            + where + " ORDER BY ts, id", params)
        return [self._materialize(row) for row in rows]

    def candidates(self, profile: PatternProfile,
                   spec: ScanSpec | None = None) -> list[Event]:
        spec = resolve_spec(spec)
        if spec.unsatisfiable:
            return []
        clauses, params, _dropped = self._where_parts(profile, spec)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._fetch(
            "SELECT id, ts, agentid, op, payload FROM backend_events"
            + where, params)
        return [self._materialize(row) for row in rows]

    def select(self, profile: PatternProfile,
               predicate: "CompiledPredicate",
               spec: ScanSpec | None = None) -> tuple[list[Event], int]:
        spec = resolve_spec(spec)
        order, limit = spec.order, spec.effective_limit
        if order is not None and limit is not None:
            return self._select_ordered(profile, predicate, spec, order,
                                        limit)
        return select_via_candidates(self, profile, predicate, spec)

    #: Cursor page size for the ordered scan: small enough that stopping
    #: after the k-th survivor leaves most of an unselective table
    #: unread, large enough to amortize the fetchmany round-trip.
    ORDERED_FETCH = 256

    def _select_ordered(self, profile: PatternProfile,
                        predicate: "CompiledPredicate", spec: ScanSpec,
                        order: "ScanOrder", limit: int,
                        ) -> tuple[list[Event], int]:
        """Push ``ORDER BY`` into the compiled SQL, stop at ``limit``.

        ``ORDER BY ts, id`` (or ``ts DESC, id`` — equal timestamps keep
        ascending ids, the engine's descending tiebreak) makes the
        cursor yield candidates in exactly the requested comparator
        order, so the first ``limit`` *survivors* of the residual filter
        are the true first/last k.  No SQL ``LIMIT`` is emitted: the
        WHERE clause selects a candidate superset (the residual
        predicate and any binding side that blew the host-parameter
        budget still filter), and a SQL-level cap could starve true
        survivors behind non-matching rows.  Instead the cursor drains
        in :data:`ORDERED_FETCH` pages and stops early — an unselective
        table is mostly unread when the k-th survivor arrives.
        """
        if spec.unsatisfiable:
            return [], 0
        clauses, params, _dropped = self._where_parts(profile, spec)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        direction = "DESC" if order.descending else "ASC"
        sql = ("SELECT id, ts, agentid, op, payload FROM backend_events"
               + where + f" ORDER BY ts {direction}, id ASC")
        test = predicate.event_predicate
        admits = spec.admits
        survivors: list[Event] = []
        fetched = 0
        with self._lock:
            cursor = self._conn.execute(sql, params)
            while len(survivors) < limit:
                rows = cursor.fetchmany(self.ORDERED_FETCH)
                if not rows:
                    break
                fetched += len(rows)
                for row in rows:
                    event = self._materialize(row)
                    if admits(event) and test(event):
                        survivors.append(event)
                        if len(survivors) >= limit:
                            break
        return survivors, fetched

    def estimate(self, profile: PatternProfile,
                 spec: ScanSpec | None = None) -> int:
        spec = resolve_spec(spec)
        if spec.unsatisfiable:
            return 0
        clauses, params, dropped = self._where_parts(profile, spec)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._fetch(
            "SELECT COUNT(*) FROM backend_events" + where, params)
        count = int(rows[0][0])
        if count and dropped:
            # A binding side too large for SQL still bounds the result:
            # the frequency sketch answers in O(|keys|) without touching
            # the table, and never under-counts, so a zero stays sound.
            subject_sketch, object_sketch = self._frequency_sketches()
            for column, identities in dropped:
                sketch = (subject_sketch if column == "subject_key"
                          else object_sketch)
                count = min(count, sketch.estimate_total(
                    identity_key(identity) for identity in identities))
        return count

    def access_path(self, profile: PatternProfile,
                    spec: ScanSpec | None = None) -> AccessPathInfo:
        """Describe the indexed SQL predicate the scan compiles to."""
        spec = resolve_spec(spec)
        if spec.unsatisfiable:
            return AccessPathInfo("unsatisfiable", 0)
        tags: list[str] = []
        if spec.window is not None:
            tags.append("ts")
        if spec.bounds is not None and spec.bounds:
            tags.append("ts-bounds")
        if spec.agentids is not None:
            tags.append("agent")
        if profile.event_type is not None or profile.operations:
            tags.append("etype+op")
        if profile.subject_exact is not None:
            tags.append("subject")
        elif profile.subject_like is not None:
            tags.append("subject-like")
        if profile.event_type is not None:
            if profile.object_exact is not None:
                tags.append("object")
            elif profile.object_like is not None:
                tags.append("object-like")
        bindings = spec.bindings
        if bindings is not None and bindings:
            _clauses, _params, dropped = self._binding_clauses(bindings)
            dropped_columns = {column for column, _ids in dropped}
            if (bindings.subjects is not None
                    and "subject_key" not in dropped_columns):
                tags.append("subject-key")
            if (bindings.objects is not None
                    and "object_key" not in dropped_columns):
                tags.append("object-key")
        name = f"sql-index({','.join(tags)})" if tags else "sql-scan"
        rows = self.estimate(profile, spec)
        return AccessPathInfo(name=name, rows=rows,
                              considered=(("sql-scan", len(self)),
                                          (name, rows)))

    def _frequency_sketches(self) -> tuple[FrequencySketch, FrequencySketch]:
        if self._sketches is None:
            subject_sketch, object_sketch = FrequencySketch(), \
                FrequencySketch()
            rows = self._fetch(
                "SELECT subject_key, object_key FROM backend_events", [])
            for subject_key, object_key in rows:
                subject_sketch.add(subject_key)
                object_sketch.add(object_key)
            self._sketches = (subject_sketch, object_sketch)
        return self._sketches

    def _where_parts(self, profile: PatternProfile, spec: ScanSpec,
                     ) -> tuple[list[str], list[object],
                                list[tuple[str, frozenset]]]:
        """One WHERE compilation shared by ``candidates`` and ``estimate``
        — parity by construction: the count the scheduler orders on is the
        count of exactly the rows the scan would return."""
        clauses, params = self._bounds(spec.window, spec.agentids)
        binding_clauses, binding_params, dropped = self._binding_clauses(
            spec.bindings)
        for extra_clauses, extra_params in (
                self._profile_clauses(profile),
                (binding_clauses, binding_params),
                self._bounds_clauses(spec.bounds)):
            clauses += extra_clauses
            params += extra_params
        return clauses, params, dropped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def span(self) -> Window | None:
        rows = self._fetch(
            "SELECT MIN(ts), MAX(ts) FROM backend_events", [])
        low, high = rows[0]
        if low is None:
            return None
        return Window(low, high + SPAN_EPSILON)

    @property
    def agentids(self) -> set[int]:
        rows = self._fetch(
            "SELECT DISTINCT agentid FROM backend_events", [])
        return {row[0] for row in rows}

    @property
    def entity_count(self) -> int:
        return len(self._interner)

    @property
    def dedup_ratio(self) -> float:
        return self._interner.dedup_ratio

    @property
    def partition_count(self) -> int:
        # CAST truncates toward zero; the correction term makes it floor
        # division so negative timestamps bucket exactly like the row and
        # columnar hypertables (int(ts // bucket)).
        bucket = ("CAST(ts / :b AS INTEGER) "
                  "- (ts / :b < CAST(ts / :b AS INTEGER))")
        rows = self._fetch(
            f"SELECT COUNT(*) FROM (SELECT DISTINCT agentid, {bucket} "
            "FROM backend_events)", {"b": self._bucket_seconds})
        return int(rows[0][0])

    @property
    def bucket_seconds(self) -> float:
        return self._bucket_seconds

    def __len__(self) -> int:
        return self._count

    def close(self) -> None:
        with self._lock:
            self._conn.close()
