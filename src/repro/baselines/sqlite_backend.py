"""The relational baseline: SQLite standing in for PostgreSQL.

Two storage configurations reproduce the paper's two comparisons:

* ``optimized=True`` — "PostgreSQL w/ our optimized storage" (Figure 4):
  the events table gets the composite spatial/temporal index plus
  secondary indexes on the attributes AIQL indexes in memory, and the
  planner is fed ANALYZE statistics.
* ``optimized=False`` — "PostgreSQL w/o our optimized storage" (Figure 5):
  a flat heap table with no secondary indexes and SQLite's automatic
  transient indexes disabled, so every join degenerates the way the paper
  describes.

Either way the baseline executes the *monolithic* SQL join query produced
by :mod:`repro.baselines.sql_translator` — all joins and constraints woven
together, scheduling left to the SQL planner — which is precisely the
methodology of the paper's evaluation.
"""

from __future__ import annotations

import sqlite3
import time
from dataclasses import dataclass

from repro.errors import TranslationError
from repro.lang.ast import Query
from repro.model.entities import (FileEntity, NetworkEntity, ProcessEntity)
from repro.model.events import Event
from repro.baselines.schema import CREATE_EVENTS_SQL, OPTIMIZED_INDEX_SQL
from repro.baselines.sql_translator import translate
from repro.storage.store import EventStore


@dataclass
class SqlRun:
    """One executed SQL statement with its timing and result rows."""

    sql: str
    columns: list[str]
    rows: list[tuple]
    elapsed: float


class RelationalBaseline:
    """An events table in SQLite, loadable from a store or event list."""

    def __init__(self, optimized: bool = True) -> None:
        self.optimized = optimized
        self._conn = sqlite3.connect(":memory:")
        self._conn.execute(CREATE_EVENTS_SQL)
        if not optimized:
            # Without the automatic transient indexes SQLite would quietly
            # build per-join indexes and mask the unoptimized storage.
            self._conn.execute("PRAGMA automatic_index = OFF")
        self._entity_ids: dict[tuple, int] = {}
        self._loaded = 0

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _entity_id(self, identity: tuple) -> int:
        existing = self._entity_ids.get(identity)
        if existing is not None:
            return existing
        assigned = len(self._entity_ids) + 1
        self._entity_ids[identity] = assigned
        return assigned

    def load_events(self, events) -> int:
        """Bulk-insert events (flattening entities into columns)."""
        rows = [self._flatten(event) for event in events]
        self._conn.executemany(
            "INSERT INTO events VALUES (" + ", ".join(["?"] * 28) + ")",
            rows)
        self._conn.commit()
        self._loaded += len(rows)
        return len(rows)

    def load_store(self, store: EventStore) -> int:
        return self.load_events(store.scan())

    def finalize(self) -> None:
        """Create indexes and statistics (optimized configuration only)."""
        if self.optimized:
            for statement in OPTIMIZED_INDEX_SQL:
                self._conn.execute(statement)
            self._conn.execute("ANALYZE")
        self._conn.commit()

    def _flatten(self, event: Event) -> tuple:
        subject = event.subject
        obj = event.object
        subj_id = self._entity_id(subject.identity)
        obj_id = self._entity_id(obj.identity)
        base = (event.id, event.ts, event.agentid, event.operation,
                obj.entity_type, event.amount, event.failcode,
                subj_id, subject.agentid, subject.pid, subject.exe_name,
                subject.user, subject.cmdline, subject.start_time, obj_id)
        if isinstance(obj, ProcessEntity):
            return base + (obj.agentid, obj.pid, obj.exe_name, obj.user,
                           obj.cmdline, obj.start_time, None, None,
                           None, None, None, None, None)
        if isinstance(obj, FileEntity):
            return base + (obj.agentid, None, None, None, None, None,
                           obj.name, obj.owner, None, None, None, None,
                           None)
        if isinstance(obj, NetworkEntity):
            return base + (obj.agentid, None, None, None, None, None,
                           None, None, obj.src_ip, obj.src_port,
                           obj.dst_ip, obj.dst_port, obj.protocol)
        raise TranslationError(f"unknown entity type {obj!r}")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_sql(self, sql: str) -> SqlRun:
        started = time.perf_counter()
        cursor = self._conn.execute(sql)
        rows = cursor.fetchall()
        elapsed = time.perf_counter() - started
        columns = [desc[0] for desc in cursor.description or ()]
        return SqlRun(sql=sql, columns=columns, rows=rows, elapsed=elapsed)

    def run_query(self, query: Query) -> SqlRun:
        """Translate an AIQL query and execute it."""
        return self.run_sql(translate(query))

    @property
    def event_count(self) -> int:
        return self._loaded

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RelationalBaseline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
