"""Diagnostics: what the semantic analyzer reports and how it renders.

A :class:`Diagnostic` is one finding — severity, a stable machine-readable
code, a message, and (when the query was parsed with spans) the exact
token range it points at.  Errors describe queries that cannot mean what
was written (an unknown attribute, an unsatisfiable temporal cycle);
warnings describe queries that are legal but almost certainly not what
the analyst intended (a pattern that never constrains the result, a
filter no event can pass).

:class:`AiqlAnalysisError` is the hard-failure surface: a
:class:`~repro.errors.SemanticError` carrying the full diagnostic list,
raised by the session facade before execution when any error-severity
diagnostic is present.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SemanticError
from repro.lang.highlight import render_span
from repro.lang.spans import Span

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One analyzer finding, anchored at a source span when known."""

    severity: str          # ERROR | WARNING
    code: str              # stable kebab-case defect class
    message: str
    span: Span | None = None

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def render(self, source: str | None = None) -> str:
        """Human-readable diagnostic, with a caret snippet when possible."""
        location = f" at {self.span}" if self.span is not None else ""
        head = f"{self.severity}[{self.code}]{location}: {self.message}"
        if source is None or self.span is None:
            return head
        snippet = render_span(source, self.span.line, self.span.col,
                              self.span.length)
        return f"{head}\n{snippet}"


def render_all(diagnostics: list[Diagnostic],
               source: str | None = None) -> str:
    return "\n".join(d.render(source) for d in diagnostics)


class AiqlAnalysisError(SemanticError):
    """A query rejected by the semantic analyzer before execution."""

    def __init__(self, source: str,
                 diagnostics: list[Diagnostic]) -> None:
        self.source = source
        self.diagnostics = diagnostics
        errors = [d for d in diagnostics if d.is_error]
        super().__init__(render_all(errors, source))
