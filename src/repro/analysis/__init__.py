"""Static analysis for AIQL queries and execution plans.

``repro.analysis`` is the façade over the two static layers this package
grew in front of the engine:

* the query semantic analyzer (:func:`analyze` / :func:`analyze_query`,
  implemented in :mod:`repro.lang.semantics`), which lints a query
  against the event/entity schema before it is planned, and
* the diagnostic vocabulary (:class:`Diagnostic`, severities, the
  :class:`AiqlAnalysisError` raised when errors are present).

The plan-soundness verifier lives with the engine
(:mod:`repro.engine.verify`) because it checks scheduler output, not
source text.
"""

from repro.analysis.diagnostics import (ERROR, WARNING, AiqlAnalysisError,
                                        Diagnostic, render_all)
from repro.lang.spans import SourceMap, Span


def __getattr__(name: str):
    # Lazy: semantics imports this package's diagnostics module, so a
    # top-level import here would be circular when an import starts from
    # repro.lang.semantics itself.
    if name in ("analyze", "analyze_query"):
        from repro.lang import semantics
        return getattr(semantics, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ERROR",
    "WARNING",
    "AiqlAnalysisError",
    "Diagnostic",
    "SourceMap",
    "Span",
    "analyze",
    "analyze_query",
    "render_all",
]
