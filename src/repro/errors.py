"""Shared exception hierarchy for the AIQL reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch a single base class at API boundaries while still being
able to distinguish the layer that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class DataModelError(ReproError):
    """Invalid entity, event, or attribute construction."""


class StorageError(ReproError):
    """Errors raised by the storage substrate (ingest, partitions, indexes)."""


class QueryError(ReproError):
    """Base class for query-related errors (parsing or execution)."""


class ParseError(QueryError):
    """Syntactic or lexical error in an AIQL query.

    Subclassed by :class:`repro.lang.errors.AiqlSyntaxError`, which carries
    source positions and renders caret diagnostics.
    """


class SemanticError(QueryError):
    """The query parsed but is not meaningful.

    Examples: a temporal relationship referring to an undeclared event
    variable, an aggregate used in a multievent query, or a history access
    (``amt[1]``) outside a ``having`` clause.
    """


class ExecutionError(QueryError):
    """The engine failed while executing a valid query."""


class TranslationError(QueryError):
    """A baseline translator could not express the query (SQL/Cypher)."""
