"""System events: the SVO (subject, operation, object) records.

A system event is an interaction between two system entities observed at the
kernel level: the *subject* is always a process; the *object* is a file,
process, or network connection (§2.1).  Events are categorized into file
events, process events, and network events by the type of their object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DataModelError
from repro.model.entities import (FILE, NETWORK, PROCESS, Entity,
                                  ProcessEntity)

# Operations grouped by the event type they belong to.  The vocabulary covers
# the demo paper's queries (start, read, write, connect, ...) plus the usual
# audit-framework operations a collection agent reports.
FILE_OPERATIONS = frozenset(
    {"read", "write", "create", "delete", "rename", "execute", "chmod"})
PROCESS_OPERATIONS = frozenset({"start", "end", "connect", "inject"})
NETWORK_OPERATIONS = frozenset(
    {"read", "write", "connect", "accept", "send", "recv"})

OPERATIONS_BY_TYPE = {
    FILE: FILE_OPERATIONS,
    PROCESS: PROCESS_OPERATIONS,
    NETWORK: NETWORK_OPERATIONS,
}

ALL_OPERATIONS = FILE_OPERATIONS | PROCESS_OPERATIONS | NETWORK_OPERATIONS

# Event-level attributes addressable in AIQL (e.g. ``evt.amount``).
EVENT_ATTRIBUTES = ("id", "ts", "agentid", "operation", "amount", "failcode")

_EVENT_ATTRIBUTE_ALIASES = {
    "time": "ts",
    "timestamp": "ts",
    "starttime": "ts",
    "op": "operation",
    "size": "amount",
    "bytes": "amount",
}


def canonical_event_attribute(name: str) -> str:
    """Resolve an event attribute name or alias (``evt.amount`` etc.)."""
    lowered = name.lower()
    resolved = _EVENT_ATTRIBUTE_ALIASES.get(lowered, lowered)
    if resolved not in EVENT_ATTRIBUTES:
        raise DataModelError(
            f"events have no attribute {name!r} "
            f"(known: {', '.join(EVENT_ATTRIBUTES)})")
    return resolved


@dataclass(frozen=True, slots=True)
class Event:
    """One system event: ``<subject, operation, object>`` at a time, on a host.

    ``amount`` is the data size in bytes for read/write/send/recv events (the
    attribute the paper's anomaly query aggregates); it is zero for
    operations without a payload.
    """

    id: int
    ts: float
    agentid: int
    operation: str
    subject: ProcessEntity
    object: Entity
    amount: int = 0
    failcode: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.subject, ProcessEntity):
            raise DataModelError("event subjects must be processes")
        allowed = OPERATIONS_BY_TYPE[self.object.entity_type]
        if self.operation not in allowed:
            raise DataModelError(
                f"operation {self.operation!r} is not valid for "
                f"{self.object.entity_type} events")

    @property
    def event_type(self) -> str:
        """``file``, ``proc``, or ``ip`` — the object's entity type."""
        return self.object.entity_type

    def attribute(self, name: str) -> object:
        """Event-level attribute access with alias resolution."""
        return getattr(self, canonical_event_attribute(name))

    def __str__(self) -> str:
        return (f"evt#{self.id}@{self.ts:.3f} agent={self.agentid} "
                f"{self.subject.exe_name} {self.operation} {self.object}")


def validate_operation(entity_type: str, operation: str) -> str:
    """Check an operation against an object entity type; returns it lowered."""
    lowered = operation.lower()
    allowed = OPERATIONS_BY_TYPE.get(entity_type)
    if allowed is None:
        raise DataModelError(f"unknown entity type: {entity_type!r}")
    if lowered not in allowed:
        raise DataModelError(
            f"operation {operation!r} is not valid for {entity_type} events "
            f"(valid: {', '.join(sorted(allowed))})")
    return lowered
