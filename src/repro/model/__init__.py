"""Domain data model: system entities, SVO events, attributes, and time.

This is the data model of §2.1 of the paper: system monitoring data records
interactions among system entities (processes, files, network connections)
as timestamped system events occurring on a particular host (agent).
"""

from repro.model.entities import (ENTITY_TYPES, FILE, NETWORK, PROCESS,
                                  DEFAULT_ATTRIBUTE, Entity, FileEntity,
                                  NetworkEntity, ProcessEntity,
                                  canonical_attribute, entity_attributes)
from repro.model.events import (ALL_OPERATIONS, EVENT_ATTRIBUTES,
                                FILE_OPERATIONS, NETWORK_OPERATIONS,
                                OPERATIONS_BY_TYPE, PROCESS_OPERATIONS, Event,
                                canonical_event_attribute, validate_operation)
from repro.model.timeutil import (Window, format_duration, format_timestamp,
                                  parse_duration, parse_timestamp,
                                  sliding_windows)

__all__ = [
    "ENTITY_TYPES", "FILE", "NETWORK", "PROCESS", "DEFAULT_ATTRIBUTE",
    "Entity", "FileEntity", "NetworkEntity", "ProcessEntity",
    "canonical_attribute", "entity_attributes",
    "ALL_OPERATIONS", "EVENT_ATTRIBUTES", "FILE_OPERATIONS",
    "NETWORK_OPERATIONS", "OPERATIONS_BY_TYPE", "PROCESS_OPERATIONS",
    "Event", "canonical_event_attribute", "validate_operation",
    "Window", "format_duration", "format_timestamp", "parse_duration",
    "parse_timestamp", "sliding_windows",
]
