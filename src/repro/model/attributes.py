"""Attribute resolution shared by the parser, engine, and translators.

This module implements the *context-aware syntax shortcuts* of §2.2.1: in a
``return`` clause, a bare entity variable stands for its default attribute
(``p1`` -> ``p1.exe_name``, ``f1`` -> ``f1.name``, ``i1`` -> ``i1.dst_ip``),
and attribute names may be written using common aliases (``dstip``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SemanticError
from repro.model.entities import (DEFAULT_ATTRIBUTE, canonical_attribute,
                                  entity_attributes)
from repro.model.events import canonical_event_attribute

__all__ = [
    "AttributeRef",
    "resolve_entity_attribute",
    "resolve_event_attribute",
    "default_attribute",
]


@dataclass(frozen=True, slots=True)
class AttributeRef:
    """A resolved reference ``variable.attribute``.

    ``kind`` is ``"entity"`` or ``"event"`` depending on whether the variable
    names an entity (``p1``) or an event pattern (``evt1``).
    """

    variable: str
    attribute: str
    kind: str

    def __str__(self) -> str:
        return f"{self.variable}.{self.attribute}"


def default_attribute(entity_type: str) -> str:
    """The attribute a bare variable of this type abbreviates."""
    try:
        return DEFAULT_ATTRIBUTE[entity_type]
    except KeyError:
        raise SemanticError(f"unknown entity type: {entity_type!r}") from None


def resolve_entity_attribute(variable: str, entity_type: str,
                             attribute: str | None) -> AttributeRef:
    """Resolve ``var.attr`` (or a bare ``var``) against an entity type."""
    if attribute is None:
        return AttributeRef(variable, default_attribute(entity_type), "entity")
    try:
        resolved = canonical_attribute(entity_type, attribute)
    except Exception as exc:
        raise SemanticError(str(exc)) from None
    return AttributeRef(variable, resolved, "entity")


def resolve_event_attribute(variable: str, attribute: str) -> AttributeRef:
    """Resolve ``evt.attr`` against the event attribute registry."""
    try:
        resolved = canonical_event_attribute(attribute)
    except Exception as exc:
        raise SemanticError(str(exc)) from None
    return AttributeRef(variable, resolved, "event")


def attributes_for(entity_type: str) -> tuple[str, ...]:
    """All canonical attributes of an entity type (for UI autocomplete)."""
    return entity_attributes(entity_type)
