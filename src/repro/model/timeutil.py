"""Time utilities: timestamps, durations, and time windows.

System monitoring data is bitemporal in a weak sense — every event carries a
wall-clock timestamp and queries constrain a time window (``(at
"mm/dd/2018")`` in AIQL).  This module centralizes parsing and arithmetic so
the parser, engine, and storage all agree on the semantics.

Timestamps are plain ``float`` seconds since the Unix epoch (UTC).  Windows
are half-open intervals ``[start, end)``.
"""

from __future__ import annotations

import datetime as _dt
import re
from dataclasses import dataclass

from repro.errors import DataModelError

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0

#: Padding a store's closed data span gets when expressed as a half-open
#: window (``span.end = max_ts + SPAN_EPSILON`` keeps the final event
#: inside).  One constant shared by every backend *and* the streaming
#: runtime — anomaly pane anchoring relies on all of them agreeing.
SPAN_EPSILON = 0.001

_DURATION_RE = re.compile(
    r"^\s*(\d+(?:\.\d+)?)\s*(ms|msec|millisecond|s|sec|second|m|min|minute|"
    r"h|hr|hour|d|day)s?\s*$",
    re.IGNORECASE,
)

_UNIT_SECONDS = {
    "ms": 0.001,
    "msec": 0.001,
    "millisecond": 0.001,
    "s": 1.0,
    "sec": 1.0,
    "second": 1.0,
    "m": SECONDS_PER_MINUTE,
    "min": SECONDS_PER_MINUTE,
    "minute": SECONDS_PER_MINUTE,
    "h": SECONDS_PER_HOUR,
    "hr": SECONDS_PER_HOUR,
    "hour": SECONDS_PER_HOUR,
    "d": SECONDS_PER_DAY,
    "day": SECONDS_PER_DAY,
}

_DATE_FORMATS = (
    "%m/%d/%Y %H:%M:%S",
    "%m/%d/%Y %H:%M",
    "%m/%d/%Y",
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%d %H:%M",
    "%Y-%m-%d",
)


def parse_duration(text: str) -> float:
    """Parse a human duration such as ``"1 min"`` or ``"10 sec"`` to seconds.

    >>> parse_duration("1 min")
    60.0
    >>> parse_duration("10 sec")
    10.0
    """
    match = _DURATION_RE.match(text)
    if match is None:
        raise DataModelError(f"unparseable duration: {text!r}")
    value, unit = match.groups()
    return float(value) * _UNIT_SECONDS[unit.lower()]


def format_duration(seconds: float) -> str:
    """Render seconds back to the most natural AIQL duration literal."""
    if seconds < 0:
        raise DataModelError("durations must be non-negative")
    for unit, name in ((SECONDS_PER_DAY, "day"), (SECONDS_PER_HOUR, "hour"),
                       (SECONDS_PER_MINUTE, "min")):
        if seconds >= unit and seconds % unit == 0:
            return f"{int(seconds // unit)} {name}"
    if seconds == int(seconds):
        return f"{int(seconds)} sec"
    return f"{seconds} sec"


def parse_timestamp(text: str) -> float:
    """Parse a date/datetime literal to epoch seconds (UTC).

    Accepts the paper's ``mm/dd/yyyy`` style plus ISO dates, with optional
    time-of-day.
    """
    stripped = text.strip()
    for fmt in _DATE_FORMATS:
        try:
            parsed = _dt.datetime.strptime(stripped, fmt)
        except ValueError:
            continue
        return parsed.replace(tzinfo=_dt.timezone.utc).timestamp()
    raise DataModelError(f"unparseable date: {text!r}")


def format_timestamp(ts: float) -> str:
    """Render epoch seconds as an ISO datetime string (UTC)."""
    return _dt.datetime.fromtimestamp(ts, tz=_dt.timezone.utc).strftime(
        "%Y-%m-%d %H:%M:%S")


@dataclass(frozen=True, slots=True)
class Window:
    """A half-open time interval ``[start, end)`` in epoch seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise DataModelError(
                f"window end {self.end} precedes start {self.start}")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def contains(self, ts: float) -> bool:
        return self.start <= ts < self.end

    def overlaps(self, other: "Window") -> bool:
        return self.start < other.end and other.start < self.end

    def intersect(self, other: "Window") -> "Window | None":
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return Window(start, end)

    def shift(self, delta: float) -> "Window":
        return Window(self.start + delta, self.end + delta)

    def split(self, bucket_seconds: float) -> list["Window"]:
        """Split into bucket-aligned sub-windows covering the interval."""
        if bucket_seconds <= 0:
            raise DataModelError("bucket size must be positive")
        windows = []
        cursor = self.start
        while cursor < self.end:
            upper = min(self.end, cursor + bucket_seconds)
            windows.append(Window(cursor, upper))
            cursor = upper
        return windows

    @classmethod
    def for_day(cls, date_text: str) -> "Window":
        """The paper's ``(at "mm/dd/yyyy")`` clause: one whole day."""
        start = parse_timestamp(date_text)
        return cls(start, start + SECONDS_PER_DAY)

    @classmethod
    def between(cls, start_text: str, end_text: str) -> "Window":
        """The ``(from "..." to "...")`` clause."""
        return cls(parse_timestamp(start_text), parse_timestamp(end_text))

    def __str__(self) -> str:
        return f"[{format_timestamp(self.start)} .. {format_timestamp(self.end)})"


def sliding_windows(span: Window, width: float, step: float) -> list[Window]:
    """Enumerate sliding windows of ``width`` advancing by ``step``.

    Windows are anchored at ``span.start`` and enumerated while the window
    start lies inside the span; the final windows may extend past
    ``span.end`` — callers clip membership by event timestamp, matching the
    anomaly-engine semantics of §2.2.3.
    """
    if width <= 0 or step <= 0:
        raise DataModelError("window width and step must be positive")
    windows = []
    cursor = span.start
    while cursor < span.end:
        windows.append(Window(cursor, cursor + width))
        cursor += step
    return windows
