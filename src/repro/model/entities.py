"""System entities: processes, files, and network connections.

The AIQL data model (§2.1 of the paper) treats system monitoring data as
interactions among three kinds of system entities.  Each entity carries the
critical security-related attributes the collection agents record (file
name, process executable name, IPs, ports, ...).

Entities are value-like and hashable on their *identity key* — the attribute
tuple that the storage layer uses for deduplication (interning).  Two
occurrences of the same process in different events intern to one entity
record, which is one of the paper's storage optimizations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DataModelError

PROCESS = "proc"
FILE = "file"
NETWORK = "ip"

ENTITY_TYPES = (PROCESS, FILE, NETWORK)


@dataclass(frozen=True, slots=True)
class ProcessEntity:
    """A process, identified per host by pid + start time.

    ``exe_name`` is the executable image name (e.g. ``cmd.exe``); it is the
    *default attribute* used by bare string constraints such as
    ``proc p1["%cmd.exe"]``.
    """

    agentid: int
    pid: int
    exe_name: str
    user: str = "system"
    cmdline: str = ""
    start_time: float = 0.0

    entity_type = PROCESS

    @property
    def identity(self) -> tuple:
        return (PROCESS, self.agentid, self.pid, self.start_time)

    @property
    def default_attribute(self) -> str:
        return self.exe_name

    def attribute(self, name: str) -> object:
        return _attribute(self, name)

    def __str__(self) -> str:
        return f"proc({self.exe_name}, pid={self.pid}, agent={self.agentid})"


@dataclass(frozen=True, slots=True)
class FileEntity:
    """A file, identified per host by its full path (``name``)."""

    agentid: int
    name: str
    owner: str = "root"

    entity_type = FILE

    @property
    def identity(self) -> tuple:
        return (FILE, self.agentid, self.name)

    @property
    def default_attribute(self) -> str:
        return self.name

    def attribute(self, name: str) -> object:
        return _attribute(self, name)

    def __str__(self) -> str:
        return f"file({self.name}, agent={self.agentid})"


@dataclass(frozen=True, slots=True)
class NetworkEntity:
    """A network connection, identified by its flow 5-tuple."""

    agentid: int
    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    protocol: str = "tcp"

    entity_type = NETWORK

    @property
    def identity(self) -> tuple:
        return (NETWORK, self.agentid, self.src_ip, self.src_port,
                self.dst_ip, self.dst_port, self.protocol)

    @property
    def default_attribute(self) -> str:
        return self.dst_ip

    def attribute(self, name: str) -> object:
        return _attribute(self, name)

    def __str__(self) -> str:
        return (f"ip({self.src_ip}:{self.src_port} -> "
                f"{self.dst_ip}:{self.dst_port})")


Entity = ProcessEntity | FileEntity | NetworkEntity

# Attribute aliases accepted in AIQL constraint/return position, per entity
# type.  The paper's queries write ``dstip`` and rely on context-aware
# shortcuts, so aliases are part of the language surface.
_ALIASES: dict[str, dict[str, str]] = {
    PROCESS: {
        "name": "exe_name",
        "exe": "exe_name",
        "exename": "exe_name",
        "image": "exe_name",
        "starttime": "start_time",
    },
    FILE: {
        "path": "name",
        "filename": "name",
    },
    NETWORK: {
        "dstip": "dst_ip",
        "srcip": "src_ip",
        "dstport": "dst_port",
        "srcport": "src_port",
        "dip": "dst_ip",
        "sip": "src_ip",
        "proto": "protocol",
    },
}

_FIELDS: dict[str, tuple[str, ...]] = {
    PROCESS: ("agentid", "pid", "exe_name", "user", "cmdline", "start_time"),
    FILE: ("agentid", "name", "owner"),
    NETWORK: ("agentid", "src_ip", "src_port", "dst_ip", "dst_port",
              "protocol"),
}

DEFAULT_ATTRIBUTE: dict[str, str] = {
    PROCESS: "exe_name",
    FILE: "name",
    NETWORK: "dst_ip",
}


def canonical_attribute(entity_type: str, name: str) -> str:
    """Resolve an attribute name (or alias) for an entity type.

    Raises :class:`DataModelError` when the attribute does not exist; the
    parser surfaces this as a semantic error with the query position.
    """
    if entity_type not in _FIELDS:
        raise DataModelError(f"unknown entity type: {entity_type!r}")
    lowered = name.lower()
    resolved = _ALIASES[entity_type].get(lowered, lowered)
    if resolved not in _FIELDS[entity_type]:
        raise DataModelError(
            f"entity type {entity_type!r} has no attribute {name!r} "
            f"(known: {', '.join(_FIELDS[entity_type])})")
    return resolved


def entity_attributes(entity_type: str) -> tuple[str, ...]:
    """The canonical attribute names of an entity type."""
    if entity_type not in _FIELDS:
        raise DataModelError(f"unknown entity type: {entity_type!r}")
    return _FIELDS[entity_type]


def _attribute(entity: Entity, name: str) -> object:
    resolved = canonical_attribute(entity.entity_type, name)
    return getattr(entity, resolved)
