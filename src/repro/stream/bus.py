"""The event bus: batched, backpressured publish with an async ingest path.

The batch engine investigates *after the fact*; real deployments watch
monitoring events as they arrive.  The bus is the seam between the two: a
publisher (collection agent, telemetry generator, replay harness) pushes
events in, and the bus delivers them — in batches, in publish order — to

* any number of *subscribers* (the continuous-query runtime), and
* any number of attached :class:`~repro.storage.backend.StorageBackend`
  stores, through the batch-commit :class:`~repro.storage.ingest.IngestPipeline`
  (the ROADMAP's async ingest path: the same events that feed standing
  queries also land in a queryable store).

Delivery is synchronous by default — ``publish`` returns once the batch
has been handed to every consumer, which keeps tests deterministic.
Calling :meth:`EventBus.start` moves delivery onto a worker thread behind
a *bounded* queue: publishers block once ``max_pending`` batches are
waiting (backpressure), so a slow store or subscriber throttles ingest
instead of growing memory without bound.

The bus also carries the stream's *watermark*: the highest event
timestamp delivered so far minus the configured ``lateness`` allowance.
Consumers use it to close window panes and evict matcher state; events
arriving with timestamps at or below the watermark may be matched late or
missed, which is the standard trade a lateness bound buys.
"""

from __future__ import annotations

import math
import queue
import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.errors import StorageError
from repro.model.events import Event
from repro.obs.metrics import REGISTRY
from repro.storage.backend import StorageBackend
from repro.storage.ingest import IngestPipeline, ProgressCallback

#: A subscriber receives each delivered batch plus the watermark after it.
BatchConsumer = Callable[[Sequence[Event], float], None]

_STOP = object()

# Bus telemetry (process-global: one stream pipeline per process in
# practice, and the names stay stable for `repro stats`).
_PUBLISHED = REGISTRY.counter("stream.bus.published")
_BATCHES = REGISTRY.counter("stream.bus.batches")
_QUEUE_DEPTH = REGISTRY.gauge("stream.bus.queue_depth")


@dataclass
class BusStats:
    """Counters over one bus's lifetime."""

    published: int = 0
    batches: int = 0
    max_pending: int = 0     # deepest the delivery queue ever got


class EventBus:
    """Batched, ordered fan-out of a live event feed.

    ``batch_size`` bounds delivery granularity (a partial batch is
    delivered on :meth:`flush`/:meth:`close`), ``max_pending`` bounds the
    threaded mode's queue depth (the backpressure knob), and ``lateness``
    is subtracted from the maximum seen timestamp to form the watermark.
    """

    def __init__(self, batch_size: int = 256, max_pending: int = 64,
                 lateness: float = 0.0) -> None:
        if batch_size <= 0:
            raise StorageError("bus batch size must be positive")
        if max_pending <= 0:
            raise StorageError("bus max_pending must be positive")
        if lateness < 0:
            raise StorageError("bus lateness must be non-negative")
        self._batch_size = batch_size
        self._max_pending = max_pending
        self._lateness = lateness
        self._buffer: list[Event] = []
        self._subscribers: list[BatchConsumer] = []
        self._pipelines: list[IngestPipeline] = []
        self._max_ts = -math.inf
        self._queue: queue.Queue | None = None
        self._worker: threading.Thread | None = None
        self._error: BaseException | None = None
        self._closed = False
        self.stats = BusStats()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_store(self, store: StorageBackend,
                     chunk_size: int | None = None,
                     merge_window: float | None = None,
                     progress: ProgressCallback | None = None,
                     ) -> IngestPipeline:
        """Append every published event to ``store`` (batch-committed).

        Sharded stores parallelize this for free: each committed batch
        reaches :meth:`~repro.storage.sharded.ShardedStore.ingest`,
        which splits it by agent hash and pipelines one sub-batch RPC
        per shard worker, so stream ingest fans out across processes
        without the bus knowing.  (Sharded workers must be spawned, not
        forked, precisely because this bus may already run its delivery
        thread — ``tools/check_invariants.py`` pins that down.)
        """
        pipeline = IngestPipeline(
            store, batch_size=chunk_size or self._batch_size,
            merge_window=merge_window, progress=progress)
        self._pipelines.append(pipeline)
        return pipeline

    def subscribe(self, consumer: BatchConsumer) -> None:
        """Deliver every published batch (plus watermark) to ``consumer``."""
        self._subscribers.append(consumer)

    def start(self) -> "EventBus":
        """Switch to threaded delivery behind the bounded queue."""
        if self._worker is not None:
            return self
        self._queue = queue.Queue(maxsize=self._max_pending)
        self._worker = threading.Thread(target=self._drain, daemon=True,
                                        name="event-bus")
        self._worker.start()
        return self

    # ------------------------------------------------------------------
    # Publish path
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> float:
        """No event at or below this timestamp is still expected."""
        return self._max_ts - self._lateness

    def publish(self, event: Event) -> None:
        """Accept one event; blocks when the delivery queue is full."""
        self._check()
        self._buffer.append(event)
        self.stats.published += 1
        if len(self._buffer) >= self._batch_size:
            self._emit()

    def publish_many(self, events: Iterable[Event]) -> None:
        for event in events:
            self._check()
            self._buffer.append(event)
            self.stats.published += 1
            if len(self._buffer) >= self._batch_size:
                self._emit()

    def flush(self) -> None:
        """Deliver buffered events and wait until consumers have seen them.

        Attached stores are committed up to the merge horizon; events a
        merge window still holds back are only released by :meth:`close`.
        """
        self._check()
        if self._buffer:
            self._emit()
        if self._queue is not None:
            self._queue.join()
            self._check()
        for pipeline in self._pipelines:
            pipeline.flush()

    def close(self) -> BusStats:
        """Flush, stop the worker, and finalize attached stores."""
        if self._closed:
            return self.stats
        if self._buffer:
            try:
                self._emit()
            except BaseException as exc:
                if self._error is None:
                    self._error = exc
        if self._queue is not None:
            self._queue.put(_STOP)
            assert self._worker is not None
            self._worker.join()
            self._queue = None
            self._worker = None
        for pipeline in self._pipelines:
            pipeline.close()
        self._closed = True
        if self._error is not None:
            error, self._error = self._error, None
            raise error
        return self.stats

    def __enter__(self) -> "EventBus":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _check(self) -> None:
        if self._closed:
            raise StorageError("event bus is closed")
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    def _emit(self) -> None:
        batch, self._buffer = self._buffer, []
        self.stats.batches += 1
        _BATCHES.inc()
        _PUBLISHED.inc(len(batch))
        if self._queue is not None:
            self._queue.put(batch)   # blocks at max_pending: backpressure
            depth = self._queue.qsize()
            _QUEUE_DEPTH.set(depth)
            if depth > self.stats.max_pending:
                self.stats.max_pending = depth
        else:
            self._deliver(batch)

    def _drain(self) -> None:
        assert self._queue is not None
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.task_done()
                return
            try:
                # Deliver even after an earlier failure: publish() already
                # accepted these batches, and a broken subscriber must not
                # cost the attached stores their events.  Only the first
                # error is kept for the publisher.
                self._deliver(item)
            except BaseException as exc:  # surfaced on next publish/close
                if self._error is None:
                    self._error = exc
            finally:
                self._queue.task_done()

    def _deliver(self, batch: list[Event]) -> None:
        max_ts = self._max_ts
        for event in batch:
            if event.ts > max_ts:
                max_ts = event.ts
        self._max_ts = max_ts
        for pipeline in self._pipelines:
            pipeline.add_batch(batch)
        watermark = max_ts - self._lateness
        for consumer in self._subscribers:
            consumer(batch, watermark)
