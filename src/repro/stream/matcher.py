"""Incremental multievent matching: one standing query's join state.

The batch engine answers a multievent query by scanning a store once per
pattern and joining the candidate lists.  A *standing* query cannot
re-scan — events arrive once — so the matcher maintains, per pattern, a
ring buffer of the events that matched it, indexed by the identities of
the pattern's subject/object variables, and completes joins
*incrementally*: when a new event matches pattern i, it is joined against
the already-buffered events of every other pattern (a backtracking probe
over the identity indexes, with temporal-bounds pruning), and only then
inserted into its own buffer.  Each complete match is therefore emitted
exactly once — by the last of its events to arrive.

State is bounded by watermarks.  The plan's temporal closure (shortest
``within`` totals over the ``before`` graph, §2.3) gives each pattern a
*retention*: an event of pattern i can only ever pair with a pattern-j
event within ``d_ij`` seconds after it (finite closure edge), at any
later time (unbounded edge — retention infinite), or strictly before it
(reverse edge — retention zero, because on a watermark-ordered feed the
pairing event must already have arrived once the watermark passes).  When
the watermark passes an event's timestamp plus its pattern's retention,
no future arrival can complete a match through it and it is evicted.
Fully ``within``-chained queries thus hold provably bounded state;
unbounded ``before`` edges honestly pin the patterns they reach
(exactness requires it).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.engine.joiner import Binding, TemporalCheck
from repro.engine.planner import DataQuery, QueryPlan
from repro.model.events import Event

#: Compact an index once this many evicted events linger in its lists.
_COMPACT_DEAD = 64


class PatternBuffer:
    """Ring of one pattern's matched events, indexed for identity joins."""

    __slots__ = ("entries", "by_subject", "by_object", "by_pair", "alive",
                 "dead")

    def __init__(self) -> None:
        self.entries: deque[Event] = deque()
        self.by_subject: dict[tuple, list[Event]] = {}
        self.by_object: dict[tuple, list[Event]] = {}
        self.by_pair: dict[tuple, list[Event]] = {}
        self.alive: set[int] = set()
        self.dead = 0

    def add(self, event: Event) -> None:
        self.entries.append(event)
        self.alive.add(event.id)
        self._index(event)

    def _index(self, event: Event) -> None:
        subject = event.subject.identity
        obj = event.object.identity
        self.by_subject.setdefault(subject, []).append(event)
        self.by_object.setdefault(obj, []).append(event)
        self.by_pair.setdefault((subject, obj), []).append(event)

    def probe(self, subject: tuple | None, object_: tuple | None):
        """Buffered events matching the bound identities (None = free)."""
        if subject is not None and object_ is not None:
            candidates = self.by_pair.get((subject, object_), ())
        elif subject is not None:
            candidates = self.by_subject.get(subject, ())
        elif object_ is not None:
            candidates = self.by_object.get(object_, ())
        else:
            return list(self.entries)   # entries hold only live events
        if not self.dead:
            return candidates
        alive = self.alive
        return [event for event in candidates if event.id in alive]

    def evict_until(self, cutoff: float) -> int:
        """Drop events with ``ts <= cutoff`` (in arrival order)."""
        entries = self.entries
        dropped = 0
        while entries and entries[0].ts <= cutoff:
            event = entries.popleft()
            self.alive.discard(event.id)
            dropped += 1
        if dropped:
            self.dead += dropped
            if self.dead >= _COMPACT_DEAD and self.dead > len(entries):
                self._compact()
        return dropped

    def _compact(self) -> None:
        self.by_subject.clear()
        self.by_object.clear()
        self.by_pair.clear()
        for event in self.entries:
            self._index(event)
        self.dead = 0

    def __len__(self) -> int:
        return len(self.entries)


@dataclass(frozen=True, slots=True)
class _ProbeStep:
    """One backtracking step of a completing pattern's join order."""

    dq: DataQuery
    #: checks (temporal + attribute relations) decidable once this step's
    #: variables are bound — each appears in exactly one step.
    checks: tuple = ()
    #: pruning bounds on this pattern's event ts, as (partner event var,
    #: kind, delta): "after" admits (partner.ts, partner.ts + delta],
    #: "before" admits [partner.ts - delta, partner.ts).  Pruning keeps
    #: boundary candidates; the exact checks decide the edges.
    bounds: tuple[tuple[str, str, float], ...] = ()


class MultieventMatcher:
    """Incremental join state for one planned multievent query."""

    def __init__(self, plan: QueryPlan) -> None:
        self.plan = plan
        self.data_queries = plan.data_queries
        self._closure = plan.temporal_closure()
        self._checks = (
            tuple(TemporalCheck(rel.left, rel.right, rel.within)
                  for rel in plan.temporal)
            + tuple(plan.relations))
        self.retention = tuple(
            self._retention(dq) for dq in self.data_queries)
        self.buffers = tuple(PatternBuffer() for _ in self.data_queries)
        self._initial_checks: list[tuple] = []
        self._probe_plans: list[tuple[_ProbeStep, ...]] = []
        for dq in self.data_queries:
            initial, steps = self._probe_plan(dq)
            self._initial_checks.append(initial)
            self._probe_plans.append(steps)
        self.evicted = 0

    # ------------------------------------------------------------------
    # Static analysis
    # ------------------------------------------------------------------
    def _retention(self, dq: DataQuery) -> float:
        """Seconds an event of this pattern stays completable."""
        var = dq.event_var
        worst = 0.0
        for other in self.data_queries:
            if other.index == dq.index:
                continue
            forward = self._closure.get((var, other.event_var))
            if forward is not None:
                worst = max(worst, forward)       # may be math.inf
            elif (other.event_var, var) not in self._closure:
                return math.inf                   # unconstrained partner
        return worst

    def _probe_plan(self, completing: DataQuery,
                    ) -> tuple[tuple, tuple[_ProbeStep, ...]]:
        """Join order for matches completed by ``completing``'s event.

        Greedy most-connected-first: always extend through a pattern
        sharing an already-bound entity variable when one exists, so
        probes stay index lookups instead of buffer scans.  Returns the
        checks decidable from the completing pattern alone plus the
        ordered probe steps.
        """
        bound = {completing.event_var, *completing.variables}
        assigned: set[int] = set()
        initial = []
        for position, check in enumerate(self._checks):
            if self._check_vars(check) <= bound:
                assigned.add(position)
                initial.append(check)
        initial = tuple(initial)
        remaining = [dq for dq in self.data_queries
                     if dq.index != completing.index]
        bound_entities = set(completing.variables)
        steps: list[_ProbeStep] = []
        bound_events = [completing.event_var]
        while remaining:
            remaining.sort(key=lambda dq: (
                -len(bound_entities & set(dq.variables)), dq.index))
            dq = remaining.pop(0)
            bound_entities.update(dq.variables)
            bound.update((dq.event_var, *dq.variables))
            ready = []
            for position, check in enumerate(self._checks):
                if position in assigned:
                    continue
                if self._check_vars(check) <= bound:
                    assigned.add(position)
                    ready.append(check)
            var = dq.event_var
            bounds = []
            for partner in bound_events:
                delta = self._closure.get((partner, var))
                if delta is not None:
                    bounds.append((partner, "after", delta))
                delta = self._closure.get((var, partner))
                if delta is not None:
                    bounds.append((partner, "before", delta))
            bound_events.append(var)
            steps.append(_ProbeStep(dq=dq, checks=tuple(ready),
                                    bounds=tuple(bounds)))
        return initial, tuple(steps)

    @staticmethod
    def _check_vars(check) -> set[str]:
        if isinstance(check, TemporalCheck):
            return {check.left, check.right}
        return {check.left_var, check.right_var}

    # ------------------------------------------------------------------
    # Event path
    # ------------------------------------------------------------------
    def push(self, index: int, event: Event) -> list[Binding]:
        """One event matched pattern ``index``: emit completed matches,
        then buffer the event for future completions."""
        dq = self.data_queries[index]
        binding: Binding = {dq.event_var: event,
                            dq.subject_var: event.subject,
                            dq.object_var: event.object}
        for check in self._initial_checks[index]:
            if not check.holds(binding):
                return []
        if len(self.data_queries) == 1:
            return [binding]
        out: list[Binding] = []
        self._extend(self._probe_plans[index], 0, binding, out)
        # Buffered even at retention zero: within the lateness window an
        # out-of-order predecessor may still arrive and probe back.
        self.buffers[index].add(event)
        return out

    def _extend(self, steps: tuple[_ProbeStep, ...], depth: int,
                binding: Binding, out: list[Binding]) -> None:
        if depth == len(steps):
            out.append(dict(binding))
            return
        step = steps[depth]
        dq = step.dq
        subject_entity = binding.get(dq.subject_var)
        object_entity = binding.get(dq.object_var)
        lo, hi = -math.inf, math.inf
        for partner, kind, delta in step.bounds:
            partner_ts = binding[partner].ts       # type: ignore[union-attr]
            if kind == "after":
                if partner_ts > lo:
                    lo = partner_ts
                if delta != math.inf and partner_ts + delta < hi:
                    hi = partner_ts + delta
            else:
                if partner_ts < hi:
                    hi = partner_ts
                if delta != math.inf and partner_ts - delta > lo:
                    lo = partner_ts - delta
        candidates = self.buffers[dq.index].probe(
            subject_entity.identity if subject_entity is not None else None,
            object_entity.identity if object_entity is not None else None)
        saved = (binding.get(dq.event_var), binding.get(dq.subject_var),
                 binding.get(dq.object_var))
        for candidate in candidates:
            ts = candidate.ts
            if ts < lo or ts > hi:
                continue
            binding[dq.event_var] = candidate
            binding[dq.subject_var] = candidate.subject
            binding[dq.object_var] = candidate.object
            if all(check.holds(binding) for check in step.checks):
                self._extend(steps, depth + 1, binding, out)
        for var, value in zip((dq.event_var, dq.subject_var, dq.object_var),
                              saved):
            if value is None:
                binding.pop(var, None)
            else:
                binding[var] = value

    def evict(self, watermark: float) -> int:
        """Drop buffered events no future arrival can pair with.

        Strictly below ``watermark - retention``: a future event may
        still carry ``ts == watermark``, and the inclusive ``within``
        edge admits partners exactly at ``ts + retention``.
        """
        if watermark == -math.inf:
            return 0
        dropped = 0
        for buffer, retention in zip(self.buffers, self.retention):
            if retention == math.inf or not buffer.entries:
                continue
            cutoff = math.nextafter(watermark - retention, -math.inf)
            dropped += buffer.evict_until(cutoff)
        self.evicted += dropped
        return dropped

    def state_size(self) -> int:
        """Buffered events across all patterns (the bounded quantity)."""
        return sum(len(buffer) for buffer in self.buffers)
