"""Persistent alert log: standing-query matches with replay/ack cursors.

A standing query's matches are only as durable as whatever the callback
did with them — a crashed tailing process loses every alert it had not
yet acted on.  The alert log closes that gap: every match/alert emitted
by a :class:`~repro.stream.session.StreamSession` is appended to an
on-disk log (the same CRC-framed record format as the ingest WAL, so a
torn tail never corrupts earlier alerts), and consumers read it through
*cursors*:

* :meth:`AlertLog.replay` yields, in emission order, every alert a
  consumer has not yet acknowledged — after a crash, exactly the alerts
  it may have missed;
* :meth:`AlertLog.ack` durably advances that consumer's cursor, so
  acknowledged alerts are never redelivered.

Cursors are per-consumer sidecar files swapped atomically, which makes
``replay -> handle -> ack`` an at-least-once delivery loop with crash
safety on both sides: a consumer that dies before acking sees the alert
again, one that dies after acking does not.

Rows round-trip with entity fidelity: entity cells are serialized
through the archive wire format and rebuilt on replay, scalar cells
pass through JSON, anything else degrades to its string form.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import StorageError
from repro.model.entities import FileEntity, NetworkEntity, ProcessEntity
from repro.storage.serialize import entity_from_dict, entity_to_dict
from repro.storage.wal import RT_ALERT, WriteAheadLog, fsync_directory

_CONSUMER_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")

_ENTITY_TYPES = (ProcessEntity, FileEntity, NetworkEntity)
_SCALAR_TYPES = (str, int, float, bool, type(None))


def _encode_cell(cell: object) -> object:
    if isinstance(cell, _ENTITY_TYPES):
        return {"$e": entity_to_dict(cell)}
    if isinstance(cell, _SCALAR_TYPES):
        return cell
    return {"$s": str(cell)}


def _decode_cell(cell: object) -> object:
    if isinstance(cell, dict):
        if "$e" in cell:
            return entity_from_dict(cell["$e"])
        if "$s" in cell:
            return cell["$s"]
    return cell


@dataclass(frozen=True, slots=True)
class AlertRecord:
    """One logged alert: its sequence number, source query, and row."""

    seq: int
    query: str
    row: tuple


class AlertLog:
    """Append-only alert journal with durable per-consumer ack cursors.

    ``path`` is the log file; cursor sidecars live next to it as
    ``<name>.<consumer>.cursor``.  ``sync`` is the WAL fsync policy
    (``always`` makes every appended alert survive an OS crash before
    ``append`` returns).
    """

    def __init__(self, path: str | Path, sync: str = "always") -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Resume numbering: seq is the 1-based record position, so a
        # reopened log keeps appending where it left off.
        self._next_seq = 1 + sum(
            1 for _record in WriteAheadLog.replay(self.path))
        self._wal = WriteAheadLog(self.path, sync=sync)

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def append(self, query: str, row: tuple) -> int:
        """Durably log one alert; returns its sequence number."""
        payload = json.dumps(
            {"q": query, "row": [_encode_cell(cell) for cell in row]},
            separators=(",", ":")).encode("utf-8")
        self._wal.append(RT_ALERT, payload)
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def close(self) -> None:
        self._wal.close()

    def __enter__(self) -> "AlertLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __len__(self) -> int:
        """Alerts appended over the log's lifetime (all sessions)."""
        return self._next_seq - 1

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def _cursor_path(self, consumer: str) -> Path:
        if not _CONSUMER_RE.match(consumer):
            raise StorageError(
                f"invalid alert consumer name {consumer!r} "
                f"(alphanumerics, dot, dash, underscore; max 64 chars)")
        return self.path.with_name(f"{self.path.name}.{consumer}.cursor")

    def acked(self, consumer: str = "default") -> int:
        """The consumer's durable cursor (0: nothing acknowledged)."""
        cursor = self._cursor_path(consumer)
        if not cursor.exists():
            return 0
        try:
            return int(json.loads(
                cursor.read_text(encoding="utf-8"))["acked"])
        except (OSError, ValueError, KeyError) as exc:
            raise StorageError(f"{cursor}: unreadable ack cursor: {exc}"
                               ) from None

    def ack(self, seq: int, consumer: str = "default") -> None:
        """Durably acknowledge every alert up to and including ``seq``.

        Cursors only move forward: acking below the current cursor is a
        no-op, so replay/ack loops are idempotent under retries.
        """
        cursor = self._cursor_path(consumer)
        if seq <= self.acked(consumer):
            return
        tmp = cursor.with_name(cursor.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"acked": seq}, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, cursor)
        fsync_directory(cursor.parent)

    def replay(self, consumer: str = "default") -> Iterator[AlertRecord]:
        """Yield every alert past the consumer's cursor, in order."""
        after = self.acked(consumer)
        # Read through the open writer's view so alerts appended this
        # session are visible without reopening.
        seq = 0
        for record in self._wal.records():
            if record.rtype != RT_ALERT:
                continue
            seq += 1
            if seq <= after:
                continue
            try:
                data = json.loads(record.payload)
                row = tuple(_decode_cell(cell) for cell in data["row"])
                yield AlertRecord(seq=seq, query=data["q"], row=row)
            except (ValueError, KeyError, TypeError) as exc:
                raise StorageError(
                    f"{self.path}: undecodable alert #{seq}: {exc}"
                    ) from None

    def pending(self, consumer: str = "default") -> int:
        """How many alerts the consumer has not yet acknowledged."""
        return max(0, len(self) - self.acked(consumer))
