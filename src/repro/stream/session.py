"""StreamSession: one live feed wired to a store and standing queries.

The composition layer the public APIs hand out: an
:class:`~repro.stream.bus.EventBus` whose batches append to the owning
session's :class:`~repro.storage.backend.StorageBackend` (the async
ingest path) *and* feed a :class:`~repro.stream.continuous.ContinuousRuntime`
evaluating registered standing queries.  Everything published here is
therefore immediately matchable live and eventually queryable in batch —
and for a timestamp-ordered finite stream the two agree exactly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.lang.ast import Query
from repro.model.events import Event
from repro.storage.backend import StorageBackend
from repro.storage.ingest import ProgressCallback
from repro.stream.alertlog import AlertLog
from repro.stream.bus import BusStats, EventBus
from repro.stream.continuous import (ContinuousQuery, ContinuousRuntime,
                                     MatchCallback)


class StreamSession:
    """Publish side, store side, and standing queries of one live feed.

    ``alert_log`` (an :class:`~repro.stream.alertlog.AlertLog`, or a path
    one is created at) makes matches durable: every row any standing
    query emits is appended to the log *before* the user callback runs,
    so a consumer that crashes mid-handling finds the alert again via
    the log's replay/ack cursors.
    """

    def __init__(self, store: StorageBackend | None = None, *,
                 batch_size: int = 256, max_pending: int = 64,
                 lateness: float = 0.0, merge_window: float | None = None,
                 threaded: bool = False,
                 progress: ProgressCallback | None = None,
                 alert_log: AlertLog | str | Path | None = None) -> None:
        self.bus = EventBus(batch_size=batch_size, max_pending=max_pending,
                            lateness=lateness)
        self.store = store
        if store is not None:
            self.bus.attach_store(store, merge_window=merge_window,
                                  progress=progress)
        if alert_log is not None and not isinstance(alert_log, AlertLog):
            alert_log = AlertLog(alert_log)
        self.alert_log = alert_log
        self.runtime = ContinuousRuntime()
        self.bus.subscribe(self.runtime.on_batch)
        if threaded:
            self.bus.start()
        self.closed = False

    # ------------------------------------------------------------------
    # Standing queries
    # ------------------------------------------------------------------
    def register(self, query: Query, callback: MatchCallback | None = None,
                 name: str | None = None,
                 retain_results: bool = True) -> ContinuousQuery:
        """Register a parsed query; it sees every event published later.

        Register before publishing (or after a :meth:`flush`) — a
        threaded bus delivers on its worker, and a query registered
        mid-batch would see a torn prefix of the stream.
        ``retain_results=False`` makes the handle callback-only (bounded
        memory for unbounded tailing).
        """
        if self.alert_log is not None:
            log = self.alert_log
            user_callback = callback

            def callback(cq: ContinuousQuery, row: tuple) -> None:
                # Log before handling: a consumer crash mid-callback
                # still finds the alert on replay.
                log.append(cq.name, row)
                if user_callback is not None:
                    user_callback(cq, row)

        return self.runtime.register(query, callback=callback, name=name,
                                     retain_results=retain_results)

    # ------------------------------------------------------------------
    # Publish path
    # ------------------------------------------------------------------
    def publish(self, event: Event) -> None:
        self.bus.publish(event)

    def publish_many(self, events: Iterable[Event]) -> None:
        self.bus.publish_many(events)

    def flush(self) -> None:
        """Drain published events to the store and the standing queries."""
        self.bus.flush()

    def close(self) -> BusStats:
        """Flush, finalize the store, and close every open window pane.

        A deferred consumer error surfaces here — but the session still
        finishes closing first (panes scored, ``closed`` set), so the
        owning :class:`~repro.core.session.AiqlSession` can hand out a
        fresh stream afterwards instead of a zombie.
        """
        if self.closed:
            return self.bus.stats
        try:
            return self.bus.close()
        finally:
            self.runtime.finish()
            if self.alert_log is not None:
                self.alert_log.close()
            self.closed = True

    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def watermark(self) -> float:
        return self.bus.watermark

    @property
    def stats(self) -> BusStats:
        return self.bus.stats
