"""Standing AIQL queries evaluated incrementally over a live feed.

A :class:`ContinuousRuntime` subscribes to an
:class:`~repro.stream.bus.EventBus` and routes every delivered event to
the *standing queries* registered with it.  All three AIQL query classes
are supported, compiled through the same planner and predicate pipeline
the batch engine uses:

* **multievent** — each pattern's residual predicate
  (:class:`~repro.engine.filters.CompiledPredicate`) gates events into an
  incremental :class:`~repro.stream.matcher.MultieventMatcher`; completed
  joins surface immediately as matches;
* **dependency** — rewritten to a multievent query first (§2.3), exactly
  as the batch executor does;
* **anomaly** — matched events fall into sliding window panes; a pane is
  scored by the *same* :class:`~repro.engine.anomaly.AnomalyWindowEvaluator`
  the batch engine drives, the moment the watermark closes it.

The equivalence guarantee: replaying a finite, timestamp-ordered stream
through the runtime and then asking the batch engine the same query on
the fully-ingested store yields byte-identical result rows — the
differential suite asserts this per storage backend for both paper
catalogs.  Live emission (the ``callback``) additionally surfaces each
match/alert as it happens, with ``distinct`` applied incrementally.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.core.results import QueryResult
from repro.engine.anomaly import AnomalyWindowEvaluator
from repro.engine.dependency import rewrite_dependency
from repro.engine.executor import _compile_projection, project_bindings
from repro.engine.joiner import Binding
from repro.engine.planner import plan_multievent
from repro.errors import SemanticError
from repro.lang.ast import (AnomalyQuery, DependencyQuery, MultieventQuery,
                            Query, ReturnItem, VarRef)
from repro.model.events import Event
from repro.model.timeutil import SPAN_EPSILON, Window
from repro.obs.clock import monotonic
from repro.obs.metrics import REGISTRY
from repro.storage.dedup import EntityInterner

#: A match callback receives the standing query and one emitted row.
MatchCallback = Callable[["ContinuousQuery", tuple], None]

# Stream-tier telemetry.  Match latency is per *batch* (the unit the bus
# delivers and the unit a follower's alert lag is measured in); watermark
# lag is how far completed-pane time trails event time, i.e. the
# lateness allowance actually being paid.
_MATCH_SECONDS = REGISTRY.histogram("stream.match.seconds")
_WATERMARK_LAG = REGISTRY.gauge("stream.watermark.lag")


class ContinuousAnomaly:
    """Watermark-driven sliding-window evaluation of one anomaly query.

    Matched events are buffered in ``(ts, id)`` order; whenever the
    watermark passes a pane's end, the pane is scored through the shared
    :class:`AnomalyWindowEvaluator` and its events below the next pane's
    start are evicted.  Panes are anchored exactly like the batch engine:
    at the header window's start when the query carries one, otherwise at
    the earliest timestamp the stream has produced (the store span's
    start for an ordered replay).
    """

    def __init__(self, query: AnomalyQuery) -> None:
        self.query = query
        self.evaluator = AnomalyWindowEvaluator(query)
        pattern = query.patterns[0]
        wrapper = MultieventQuery(
            header=query.header, patterns=query.patterns, temporal=(),
            return_items=(ReturnItem(VarRef(pattern.event_var)),))
        self.plan = plan_multievent(wrapper)
        self.width = query.window_spec.width
        self.step = query.window_spec.step
        self.span = query.header.window    # None: anchored on first event
        self._cursor: float | None = (self.span.start
                                      if self.span is not None else None)
        self._keys: list[tuple] = []       # (ts, id), sorted
        self._events: list[Event] = []
        self.evicted = 0

    def accept(self, event: Event) -> None:
        key = (event.ts, event.id)
        position = bisect.bisect_left(self._keys, key)
        self._keys.insert(position, key)
        self._events.insert(position, event)

    def advance(self, watermark: float, first_ts: float | None) -> list[tuple]:
        """Score every pane the watermark has fully closed."""
        if self._cursor is None:
            # Anchor only once the watermark has passed the earliest
            # timestamp seen: until then an in-allowance straggler could
            # still lower the span start and shift every pane.
            if first_ts is None or watermark < first_ts:
                return []
            self._cursor = first_ts
        limit = self.span.end if self.span is not None else math.inf
        rows: list[tuple] = []
        while self._cursor < limit and self._cursor + self.width <= watermark:
            rows.extend(self._score_pane())
        return rows

    def finish(self, stream_span: Window | None) -> list[tuple]:
        """Score the remaining panes of the final span (end of stream)."""
        span = self.span if self.span is not None else stream_span
        if span is None:
            return []
        if self._cursor is None:
            self._cursor = span.start
        rows: list[tuple] = []
        while self._cursor < span.end:
            rows.extend(self._score_pane())
        return rows

    def _score_pane(self) -> list[tuple]:
        assert self._cursor is not None
        window = Window(self._cursor, self._cursor + self.width)
        lo = bisect.bisect_left(self._keys, (window.start,))
        hi = bisect.bisect_left(self._keys, (window.end,))
        rows = self.evaluator.evaluate(window, self._events[lo:hi])
        self._cursor += self.step
        drop = bisect.bisect_left(self._keys, (self._cursor,))
        if drop:
            del self._keys[:drop]
            del self._events[:drop]
            self.evicted += drop
        return rows

    def state_size(self) -> int:
        return len(self._events)


@dataclass(slots=True)
class _DispatchEntry:
    """One (standing query, pattern) route in the runtime's event fan-out."""

    start: float
    end: float
    agents: frozenset[int] | None
    predicate: Callable[[Event], bool]
    query: "ContinuousQuery"
    index: int


class ContinuousQuery:
    """One registered standing query: its compiled state and its results.

    ``retain_results=False`` turns the handle into a pure alert tap: every
    match still reaches the callback, but nothing is accumulated for
    :meth:`result` — the mode unbounded tailing (``repro stream
    --follow``) needs, since result accumulation is O(total matches) and
    only matcher state is watermark-bounded.
    """

    def __init__(self, query: Query, callback: MatchCallback | None = None,
                 name: str | None = None,
                 retain_results: bool = True) -> None:
        self.query = query
        self.callback = callback
        self.retain_results = retain_results
        self.anomaly: ContinuousAnomaly | None = None
        self.matcher = None
        if isinstance(query, AnomalyQuery):
            self.kind = "anomaly"
            self.anomaly = ContinuousAnomaly(query)
            self.plan = self.anomaly.plan
            self._exec_query: MultieventQuery | None = None
            self._projectors = ()
        elif isinstance(query, (MultieventQuery, DependencyQuery)):
            from repro.stream.matcher import MultieventMatcher
            if isinstance(query, DependencyQuery):
                self.kind = "dependency"
                self._exec_query = rewrite_dependency(query)
            else:
                self.kind = "multievent"
                self._exec_query = query
            self.plan = plan_multievent(self._exec_query)
            self.matcher = MultieventMatcher(self.plan)
            self._projectors = tuple(
                _compile_projection(item, self.plan)
                for item in self._exec_query.return_items)
        else:
            raise SemanticError(
                f"cannot register {type(query).__name__} as a standing query")
        self.name = name or self.kind
        # Cached handles: per-query state/eviction telemetry, labelled by
        # the standing query's name (last-write wins on a name collision).
        self._matches_counter = REGISTRY.counter(
            f"stream.matches[query={self.name}]")
        self._state_gauge = REGISTRY.gauge(
            f"stream.state_size[query={self.name}]")
        self._evicted_gauge = REGISTRY.gauge(
            f"stream.evicted[query={self.name}]")
        self.bindings: list[Binding] = []   # multievent/dependency matches
        self.rows: list[tuple] = []         # anomaly alert rows, in order
        self.events_matched = 0
        self.matches = 0
        self.emitted = 0
        self.closed = False
        self._seen_rows: set[tuple] = set()

    # ------------------------------------------------------------------
    # Runtime-facing path
    # ------------------------------------------------------------------
    def on_pattern_event(self, index: int, event: Event) -> None:
        self.events_matched += 1
        if self.anomaly is not None:
            self.anomaly.accept(event)
            return
        assert self.matcher is not None
        for binding in self.matcher.push(index, event):
            self.matches += 1
            self._matches_counter.inc()
            if self.retain_results:
                self.bindings.append(binding)
            self._emit_match(binding)

    def advance(self, watermark: float, first_ts: float | None) -> None:
        if self.anomaly is not None:
            self._emit_alerts(self.anomaly.advance(watermark, first_ts))
        else:
            assert self.matcher is not None
            self.matcher.evict(watermark)

    def finish(self, stream_span: Window | None) -> None:
        if self.closed:
            return
        if self.anomaly is not None:
            self._emit_alerts(self.anomaly.finish(stream_span))
        self.closed = True

    def _emit_match(self, binding: Binding) -> None:
        row = tuple(project(binding) for project in self._projectors)
        assert self._exec_query is not None
        # Live ``distinct`` needs an ever-growing seen-set, so the
        # callback-only (bounded-memory) mode emits raw matches instead.
        if self._exec_query.distinct and self.retain_results:
            if row in self._seen_rows:
                return
            self._seen_rows.add(row)
        self.emitted += 1
        if self.callback is not None:
            self.callback(self, row)

    def _emit_alerts(self, rows: list[tuple]) -> None:
        for row in rows:
            self.matches += 1
            self._matches_counter.inc()
            if self.retain_results:
                self.rows.append(row)
            self.emitted += 1
            if self.callback is not None:
                self.callback(self, row)

    # ------------------------------------------------------------------
    # Results and introspection
    # ------------------------------------------------------------------

    def state_size(self) -> int:
        if self.anomaly is not None:
            return self.anomaly.state_size()
        assert self.matcher is not None
        return self.matcher.state_size()

    @property
    def evicted(self) -> int:
        if self.anomaly is not None:
            return self.anomaly.evicted
        assert self.matcher is not None
        return self.matcher.evicted

    def result(self) -> QueryResult:
        """The accumulated result, shaped exactly like the batch engine's.

        After the stream is closed this is byte-identical (columns and
        rows) to executing the same query on a store holding the full
        stream; before that it reflects the matches and closed panes so
        far.
        """
        report = (f"continuous: {self.events_matched} pattern events, "
                  f"{self.matches} matches, state={self.state_size()}, "
                  f"evicted={self.evicted}")
        if not self.retain_results:
            report += " (callback-only: results not retained)"
        if self.anomaly is not None:
            return QueryResult(columns=list(self.anomaly.evaluator.columns),
                               rows=list(self.rows), elapsed=0.0,
                               kind="anomaly", report=report)
        assert self._exec_query is not None
        columns, rows = project_bindings(self.plan, self._exec_query,
                                         self.bindings)
        return QueryResult(columns=columns, rows=rows, elapsed=0.0,
                           kind=self.kind, report=report)


class ContinuousRuntime:
    """Routes bus batches to standing queries and drives watermarks.

    Entity instances are interned first-wins across the stream (the same
    convention every store's write path applies), so attribute
    projections agree with the batch engine even when equal-identity
    entities arrive as distinct instances.
    """

    def __init__(self) -> None:
        self.queries: list[ContinuousQuery] = []
        self._dispatch: dict[tuple[str, str], list[_DispatchEntry]] = {}
        self._interner = EntityInterner()
        self._min_ts = math.inf
        self._max_ts = -math.inf
        self.events_seen = 0
        self.watermark = -math.inf
        self._finished = False

    def register(self, query: Query, callback: MatchCallback | None = None,
                 name: str | None = None,
                 retain_results: bool = True) -> ContinuousQuery:
        """Add a standing query; it sees every event published later."""
        standing = ContinuousQuery(query, callback=callback, name=name,
                                   retain_results=retain_results)
        self.queries.append(standing)
        for dq in standing.plan.data_queries:
            window = standing.plan.window
            entry = _DispatchEntry(
                start=window.start if window is not None else -math.inf,
                end=window.end if window is not None else math.inf,
                agents=dq.agentids,
                predicate=dq.compiled.event_predicate,
                query=standing, index=dq.index)
            for operation in dq.operations:
                self._dispatch.setdefault(
                    (dq.event_type, operation), []).append(entry)
        return standing

    def on_batch(self, events: Sequence[Event], watermark: float) -> None:
        """Bus-facing consumer: match a batch, then advance watermarks."""
        started = monotonic()
        dispatch = self._dispatch
        min_ts, max_ts = self._min_ts, self._max_ts
        for event in events:
            ts = event.ts
            if ts < min_ts:
                min_ts = ts
            if ts > max_ts:
                max_ts = ts
            if not dispatch:
                # Pure ingest (no standing queries): only span tracking.
                continue
            # Every event interns — not just dispatched ones — so the
            # first-wins instance is the same one the store's own write
            # path keeps, whatever pattern later projects it.
            event = self._intern(event)
            entries = dispatch.get((event.object.entity_type,
                                    event.operation))
            if not entries:
                continue
            for entry in entries:
                if ts < entry.start or ts >= entry.end:
                    continue
                if (entry.agents is not None
                        and event.agentid not in entry.agents):
                    continue
                if entry.predicate(event):
                    entry.query.on_pattern_event(entry.index, event)
        self._min_ts, self._max_ts = min_ts, max_ts
        self.events_seen += len(events)
        self.watermark = watermark
        first_ts = min_ts if min_ts != math.inf else None
        for standing in self.queries:
            standing.advance(watermark, first_ts)
            standing._state_gauge.set(standing.state_size())
            standing._evicted_gauge.set(standing.evicted)
        if max_ts != -math.inf and watermark != -math.inf:
            _WATERMARK_LAG.set(max_ts - watermark)
        _MATCH_SECONDS.observe(monotonic() - started)

    def finish(self) -> None:
        """End of stream: close every pane the final span still owes."""
        if self._finished:
            return
        span = (Window(self._min_ts, self._max_ts + SPAN_EPSILON)
                if self.events_seen else None)
        for standing in self.queries:
            standing.finish(span)
        self._finished = True

    def _intern(self, event: Event) -> Event:
        subject = self._interner.intern(event.subject)
        obj = self._interner.intern(event.object)
        if subject is event.subject and obj is event.object:
            return event
        return replace(event, subject=subject, object=obj)
