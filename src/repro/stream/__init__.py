"""Continuous queries: standing AIQL queries over a live event ingest.

The streaming counterpart of the batch engine: an :class:`EventBus`
carries agent events (batched, backpressured, watermark-stamped) into any
registered storage backend *and* into a :class:`ContinuousRuntime` that
evaluates registered standing queries incrementally — per-pattern
matchers with watermark-evicted join state for multievent/dependency
queries, watermark-closed sliding panes for anomaly queries.  Replaying a
finite timestamp-ordered stream yields exactly the rows the batch engine
returns on the final store.
"""

from repro.stream.alertlog import AlertLog, AlertRecord
from repro.stream.bus import BusStats, EventBus
from repro.stream.continuous import (ContinuousAnomaly, ContinuousQuery,
                                     ContinuousRuntime)
from repro.stream.matcher import MultieventMatcher, PatternBuffer
from repro.stream.session import StreamSession

__all__ = [
    "AlertLog", "AlertRecord",
    "BusStats", "EventBus", "ContinuousAnomaly", "ContinuousQuery",
    "ContinuousRuntime", "MultieventMatcher", "PatternBuffer",
    "StreamSession",
]
