"""Structured experiment reports: the paper's series as data + markdown.

The benchmark harness prints Figure 4/5-style tables; this module is the
library form — it runs a catalog against any set of backends, collects
per-query timings, and renders the log10 series, totals, and speedups the
paper reports.  Useful for notebooks and for regenerating EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.investigate.catalog import Catalog, CatalogEntry

Runner = Callable[[CatalogEntry], float]


@dataclass
class SystemSeries:
    """Per-query execution times for one system."""

    name: str
    seconds_by_query: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds_by_query.values())

    def log10_ms(self, query_id: str) -> float | None:
        seconds = self.seconds_by_query.get(query_id)
        if seconds is None:
            return None
        return math.log10(max(seconds * 1000.0, 0.001))


@dataclass
class ExperimentReport:
    """One figure's full comparison: a catalog run on several systems."""

    title: str
    catalog: Catalog
    systems: list[SystemSeries]

    def speedup(self, baseline: str) -> float:
        """Total-time ratio of a named baseline over the first system."""
        reference = self.systems[0].total_seconds
        other = self._system(baseline).total_seconds
        if reference <= 0:
            return float("inf")
        return other / reference

    def _system(self, name: str) -> SystemSeries:
        for series in self.systems:
            if series.name == name:
                return series
        raise KeyError(f"no system named {name!r} "
                       f"(have: {[s.name for s in self.systems]})")

    def wins(self, name: str) -> int:
        """Queries on which the named system is strictly fastest."""
        target = self._system(name)
        count = 0
        for entry in self.catalog:
            mine = target.seconds_by_query.get(entry.id)
            if mine is None:
                continue
            others = [series.seconds_by_query.get(entry.id)
                      for series in self.systems if series is not target]
            if all(other is None or mine < other for other in others):
                count += 1
        return count

    def to_markdown(self) -> str:
        """The per-query log10(ms) series as a markdown table."""
        names = [series.name for series in self.systems]
        lines = [f"### {self.title}", "",
                 "| query | " + " | ".join(names) + " |",
                 "|---" * (len(names) + 1) + "|"]
        for entry in self.catalog:
            cells = []
            for series in self.systems:
                value = series.log10_ms(entry.id)
                cells.append("n/a" if value is None else f"{value:.2f}")
            lines.append(f"| {entry.id} | " + " | ".join(cells) + " |")
        totals = " | ".join(f"{series.total_seconds:.3f}"
                            for series in self.systems)
        lines.append(f"| **total (s)** | {totals} |")
        for series in self.systems[1:]:
            lines.append(
                f"\nspeedup {self.systems[0].name} vs {series.name}: "
                f"**{self.speedup(series.name):.1f}x**")
        return "\n".join(lines)


def run_experiment(title: str, catalog: Catalog,
                   runners: dict[str, Runner]) -> ExperimentReport:
    """Execute every catalog query on every system and collect timings.

    ``runners`` maps a system name to a callable that executes one catalog
    entry and returns elapsed seconds.  The first mapping entry is treated
    as the reference system for speedups.
    """
    systems = []
    for name, runner in runners.items():
        series = SystemSeries(name=name)
        for entry in catalog:
            series.seconds_by_query[entry.id] = runner(entry)
        systems.append(series)
    return ExperimentReport(title=title, catalog=catalog, systems=systems)
