"""Query catalog plumbing shared by the Figure 4 and Figure 5 sets."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError


@dataclass(frozen=True, slots=True)
class CatalogEntry:
    """One investigation query: its figure label, intent, and AIQL text."""

    id: str          # e.g. "a2-2" or "c5-7"
    step: str        # attack step being investigated, e.g. "a2"
    title: str       # analyst's question
    aiql: str        # the query text

    @property
    def kind(self) -> str:
        """multievent / dependency / anomaly, inferred from the text."""
        stripped = "\n".join(
            line for line in self.aiql.splitlines()
            if line.strip() and not line.strip().startswith("//"))
        lowered = stripped.lower()
        if "forward:" in lowered or "backward:" in lowered:
            return "dependency"
        if "window =" in lowered or "window=" in lowered:
            return "anomaly"
        return "multievent"


class Catalog:
    """An ordered set of catalog entries with id lookup."""

    def __init__(self, name: str, entries: list[CatalogEntry]) -> None:
        ids = [entry.id for entry in entries]
        if len(ids) != len(set(ids)):
            raise QueryError(f"duplicate query ids in catalog {name!r}")
        self.name = name
        self.entries = list(entries)
        self._by_id = {entry.id: entry for entry in entries}

    def __iter__(self):
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def get(self, query_id: str) -> CatalogEntry:
        try:
            return self._by_id[query_id]
        except KeyError:
            raise QueryError(
                f"catalog {self.name!r} has no query {query_id!r} "
                f"(ids: {', '.join(sorted(self._by_id))})") from None

    def by_step(self, step: str) -> list[CatalogEntry]:
        return [entry for entry in self.entries if entry.step == step]

    @property
    def ids(self) -> list[str]:
        return [entry.id for entry in self.entries]
