"""Query conciseness metrics (the §3 comparison).

"For the query conciseness, SQL queries contain at least 3.0x more
constraints, 3.5x more words, and 5.2x more characters (excluding spaces)
than AIQL queries."  This module computes the same three metrics over any
query text and counts semantic constraints from the parsed AIQL AST and
from the generated SQL/Cypher.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.lang.ast import (AnomalyQuery, DependencyQuery, MultieventQuery,
                            Query)
from repro.lang.parser import parse


@dataclass(frozen=True, slots=True)
class QueryMetrics:
    """The three §3 conciseness metrics for one query text."""

    constraints: int
    words: int
    characters: int  # excluding whitespace

    def ratio_to(self, other: "QueryMetrics") -> tuple[float, float, float]:
        """(constraints, words, characters) ratios of self over other."""
        return (
            self.constraints / other.constraints if other.constraints else 0.0,
            self.words / other.words if other.words else 0.0,
            self.characters / other.characters if other.characters else 0.0,
        )


def _strip_comments(text: str) -> str:
    return "\n".join(re.sub(r"//.*$", "", line)
                     for line in text.splitlines())


def text_metrics(text: str, constraints: int) -> QueryMetrics:
    stripped = _strip_comments(text)
    words = len(stripped.split())
    characters = sum(1 for ch in stripped if not ch.isspace())
    return QueryMetrics(constraints=constraints, words=words,
                        characters=characters)


def count_aiql_constraints(query: Query) -> int:
    """Semantic constraints in an AIQL query.

    Counts: global header constraints + the time window, bracket
    constraints, one per temporal relation, and the operation restriction
    of each pattern/edge.
    """
    count = len(query.header.constraints)
    if query.header.window is not None:
        count += 1
    if isinstance(query, (MultieventQuery, AnomalyQuery)):
        for pattern in query.patterns:
            count += 1  # the operation restriction
            count += len(pattern.subject.constraints)
            count += len(pattern.object.constraints)
    if isinstance(query, MultieventQuery):
        count += len(query.temporal)
        count += len(query.relations)
    if isinstance(query, DependencyQuery):
        for node in query.nodes:
            count += len(node.constraints)
        count += len(query.edges)  # operation + implied temporal order
    if isinstance(query, AnomalyQuery) and query.having is not None:
        count += 1
    return count


def count_sql_constraints(sql: str) -> int:
    """Conjuncts in the WHERE clause(s) of generated SQL."""
    count = 0
    for clause in re.findall(r"WHERE(.*?)(?:GROUP BY|ORDER BY|$)", sql,
                             re.IGNORECASE | re.DOTALL):
        count += len(re.findall(r"\bAND\b", clause, re.IGNORECASE)) + 1
    # JOIN ... ON conditions count too.
    count += len(re.findall(r"\bON\b", sql, re.IGNORECASE))
    return count


def count_cypher_constraints(cypher: str) -> int:
    """WHERE conjuncts plus one structural constraint per MATCH element."""
    count = 0
    where = re.search(r"WHERE(.*?)(?:RETURN|WITH|$)", cypher,
                      re.IGNORECASE | re.DOTALL)
    if where is not None:
        count += len(re.findall(r"\bAND\b", where.group(1),
                                re.IGNORECASE)) + 1
    count += cypher.count("]->")
    return count


def aiql_metrics(aiql_text: str) -> QueryMetrics:
    query = parse(aiql_text)
    return text_metrics(aiql_text, count_aiql_constraints(query))


def sql_metrics(sql_text: str) -> QueryMetrics:
    return text_metrics(sql_text, count_sql_constraints(sql_text))


def cypher_metrics(cypher_text: str) -> QueryMetrics:
    return text_metrics(cypher_text, count_cypher_constraints(cypher_text))


@dataclass
class ConcisenessComparison:
    """Aggregated AIQL-vs-baseline conciseness over a query catalog."""

    aiql: QueryMetrics
    sql: QueryMetrics
    cypher: QueryMetrics

    @property
    def sql_ratios(self) -> tuple[float, float, float]:
        return self.sql.ratio_to(self.aiql)

    @property
    def cypher_ratios(self) -> tuple[float, float, float]:
        return self.cypher.ratio_to(self.aiql)


def compare_catalog(entries) -> ConcisenessComparison:
    """Sum metrics across a catalog and compare the three languages."""
    from repro.baselines.cypher_translator import translate_cypher
    from repro.baselines.sql_translator import translate

    totals = {"aiql": [0, 0, 0], "sql": [0, 0, 0], "cypher": [0, 0, 0]}

    def accumulate(key: str, metrics: QueryMetrics) -> None:
        totals[key][0] += metrics.constraints
        totals[key][1] += metrics.words
        totals[key][2] += metrics.characters

    for entry in entries:
        query = parse(entry.aiql)
        accumulate("aiql", text_metrics(entry.aiql,
                                        count_aiql_constraints(query)))
        accumulate("sql", sql_metrics(translate(query)))
        accumulate("cypher", cypher_metrics(translate_cypher(query)))
    return ConcisenessComparison(
        aiql=QueryMetrics(*totals["aiql"]),
        sql=QueryMetrics(*totals["sql"]),
        cypher=QueryMetrics(*totals["cypher"]))
