"""The Figure 5 investigation: the 26 queries of the second APT case study.

"In another case study of APT attack [9], we evaluated the performance of
Aiql against PostgreSQL w/o our optimizations and Neo4j" — 26 queries
labelled c1-1 .. c5-7 in the figure.  The workload is the phishing-
initiated intrusion of :mod:`repro.telemetry.apt_case2`.
"""

from __future__ import annotations

from repro.investigate.catalog import Catalog, CatalogEntry
from repro.telemetry.apt_case2 import C2_IP, DROPZONE_IP
from repro.telemetry.collector import SCENARIO_DATE

_AT = f'(at "{SCENARIO_DATE}")'

FIGURE5_QUERIES = Catalog("figure5", [
    # ------------------------------------------------------------------
    # c1: initial compromise (phishing attachment)
    # ------------------------------------------------------------------
    CatalogEntry(
        "c1-1", "c1",
        "Did the mail client drop an executable that was then launched "
        "and read back its own image?",
        f'''{_AT}
agentid = 1
proc p1["%outlook.exe%"] write file f1["%invoice%"] as e1
proc p2["%explorer.exe%"] start proc p3["%invoice%"] as e2
proc p3 read file f1 as e3
with e1 before e2, e2 before e3
return distinct p1, f1, p3'''),
    # ------------------------------------------------------------------
    # c2: command & control + reconnaissance
    # ------------------------------------------------------------------
    CatalogEntry(
        "c2-1", "c2",
        "Did the dropper talk to an external C2 address?",
        f'''{_AT}
agentid = 1
proc p["%invoice%"] connect ip i[dstip = "{C2_IP}"] as e1
return distinct p, i'''),
    CatalogEntry(
        "c2-2", "c2",
        "Stager download: payload pulled from the C2 and written to disk.",
        f'''{_AT}
agentid = 1
proc p["%invoice%"] read ip i[dstip = "{C2_IP}"] as e1
proc p write file f["%winupd.exe%"] as e2
with e1 before e2
return distinct p, f'''),
    CatalogEntry(
        "c2-3", "c2",
        "Was the downloaded stager executed?",
        f'''{_AT}
agentid = 1
proc p1["%invoice%"] start proc p2["%winupd%"] as e1
return distinct p1, p2'''),
    CatalogEntry(
        "c2-4", "c2",
        "Does the stager maintain its own C2 channel?",
        f'''{_AT}
agentid = 1
proc p["%winupd%"] connect || write ip i[dstip = "{C2_IP}"] as e1
return distinct p, i'''),
    CatalogEntry(
        "c2-5", "c2",
        "Did the stager open a command shell?",
        f'''{_AT}
agentid = 1
proc p1["%winupd%"] start proc p2["%cmd.exe%"] as e1
return distinct p1, p2'''),
    CatalogEntry(
        "c2-6", "c2",
        "Which recon tools did that shell run?",
        f'''{_AT}
agentid = 1
proc p1["%cmd.exe%"] start proc p2[exe_name in ("whoami.exe",
    "ipconfig.exe", "net.exe", "tasklist.exe")] as e1
return distinct p1, p2'''),
    CatalogEntry(
        "c2-7", "c2",
        "Where did the recon output go?",
        f'''{_AT}
agentid = 1
proc p write file f["%recon.txt%"] as e1
return distinct p, f'''),
    CatalogEntry(
        "c2-8", "c2",
        "Full C2 setup chain: dropper beacons out, drops the stager, "
        "launches it, stager beacons out.",
        f'''{_AT}
agentid = 1
proc p1["%invoice%"] connect ip i1[dstip = "{C2_IP}"] as e1
proc p1 write file f1["%winupd.exe%"] as e2
proc p1 start proc p2["%winupd%"] as e3
proc p2 connect ip i2[dstip = "{C2_IP}"] as e4
with e1 before e2, e2 before e3, e3 before e4
return distinct p1, f1, p2, i2'''),
    # ------------------------------------------------------------------
    # c3: lateral movement
    # ------------------------------------------------------------------
    CatalogEntry(
        "c3-1", "c3",
        "Did the stager pivot into the web server?",
        f'''{_AT}
proc p1["%winupd%", agentid = 1] connect proc p2["%sshd%", agentid = 2] as e1
return distinct p1, p2'''),
    CatalogEntry(
        "c3-2", "c3",
        "Implant installation on the web server (forward tracking).",
        f'''{_AT}
forward: proc sh["%bash%", agentid = 2] ->[write] file b["%/tmp/.x/beacon%"]
<-[execute] proc bc["%beacon%"]
return distinct sh, b, bc'''),
    # ------------------------------------------------------------------
    # c4: data harvesting
    # ------------------------------------------------------------------
    CatalogEntry(
        "c4-1", "c4",
        "Did the implant read the shadow password file?",
        f'''{_AT}
agentid = 2
proc p["%beacon%"] read file f["%/etc/shadow%"] as e1
return distinct p, f'''),
    CatalogEntry(
        "c4-2", "c4",
        "Did it sweep both local credential files?",
        f'''{_AT}
agentid = 2
proc p["%beacon%"] read file f1["%/etc/passwd%"] as e1
proc p read file f2["%/etc/shadow%"] as e2
with e1 before e2
return distinct p, f1, f2'''),
    CatalogEntry(
        "c4-3", "c4",
        "Did the implant dump the database?",
        f'''{_AT}
agentid = 2
proc p1["%beacon%"] start proc p2["%mysqldump%"] as e1
return distinct p1, p2'''),
    CatalogEntry(
        "c4-4", "c4",
        "How large was the database dump?",
        f'''{_AT}
agentid = 2
proc p["%mysqldump%"] write file f["%db_dump.sql%"] as e1
return distinct p, f, e1.amount'''),
    CatalogEntry(
        "c4-5", "c4",
        "Was the dump staged into an archive?",
        f'''{_AT}
agentid = 2
proc p["%tar%"] read file f1["%db_dump.sql%"] as e1
proc p write file f2["%stage.tar.gz%"] as e2
with e1 before e2
return distinct p, f1, f2'''),
    CatalogEntry(
        "c4-6", "c4",
        "Dump-to-archive provenance (forward tracking).",
        f'''{_AT}
forward: proc md["%mysqldump%", agentid = 2] ->[write] file d["%db_dump.sql%"]
<-[read] proc t["%tar%"]
->[write] file s["%stage.tar.gz%"]
return distinct md, d, t, s'''),
    CatalogEntry(
        "c4-7", "c4",
        "Did the client stager harvest browser credentials?",
        f'''{_AT}
agentid = 1
proc p["%winupd%"] read file f["%Login Data%"] as e1
return distinct p, f'''),
    CatalogEntry(
        "c4-8", "c4",
        "Client staging: documents read and packed into an archive.",
        f'''{_AT}
agentid = 1
proc p["%winupd%"] read file f1["%Documents%"] as e1
proc p write file f2["%stage.zip%"] as e2
with e1 before e2
return distinct p, f1, f2'''),
    # ------------------------------------------------------------------
    # c5: exfiltration + cleanup
    # ------------------------------------------------------------------
    CatalogEntry(
        "c5-1", "c5",
        "Did the implant contact the drop zone?",
        f'''{_AT}
agentid = 2
proc p["%beacon%"] connect ip i[dstip = "{DROPZONE_IP}"] as e1
return distinct p, i'''),
    CatalogEntry(
        "c5-2", "c5",
        "Server-side exfiltration: archive read, then pushed to the "
        "drop zone.",
        f'''{_AT}
agentid = 2
proc p["%beacon%"] read file f["%stage.tar.gz%"] as e1
proc p write ip i[dstip = "{DROPZONE_IP}"] as e2
with e1 before e2
return distinct p, f, i'''),
    CatalogEntry(
        "c5-3", "c5",
        "Client-side exfiltration: staged archive pushed out.",
        f'''{_AT}
agentid = 1
proc p["%winupd%"] read file f["%stage.zip%"] as e1
proc p write ip i[dstip = "{DROPZONE_IP}"] as e2
with e1 before e2
return distinct p, f, i'''),
    CatalogEntry(
        "c5-4", "c5",
        "What did the attackers delete to cover their tracks?",
        f'''{_AT}
proc p delete file f as e1
return distinct p, f'''),
    CatalogEntry(
        "c5-5", "c5",
        "Who terminated the implant?",
        f'''{_AT}
agentid = 2
proc p1 end proc p2["%beacon%"] as e1
return distinct p1, p2'''),
    CatalogEntry(
        "c5-6", "c5",
        "Archive-to-dropzone provenance (forward tracking).",
        f'''{_AT}
forward: proc t["%tar%", agentid = 2] ->[write] file s["%stage.tar.gz%"]
<-[read] proc b["%beacon%"]
->[write] ip i[dstip = "{DROPZONE_IP}"]
return distinct t, s, b, i'''),
    CatalogEntry(
        "c5-7", "c5",
        "Coordinated exfiltration from both hosts to the same drop zone.",
        f'''{_AT}
proc p1["%beacon%", agentid = 2] write ip i1[dstip = "{DROPZONE_IP}"] as e1
proc p2["%winupd%", agentid = 1] write ip i2[dstip = "{DROPZONE_IP}"] as e2
return distinct p1, p2'''),
])
