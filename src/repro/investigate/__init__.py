"""Investigation assets: the paper's query catalogs and conciseness metrics."""

from repro.investigate.catalog import Catalog, CatalogEntry
from repro.investigate.conciseness import (ConcisenessComparison,
                                           QueryMetrics, aiql_metrics,
                                           compare_catalog, cypher_metrics,
                                           sql_metrics)
from repro.investigate.figure4_queries import FIGURE4_QUERIES
from repro.investigate.figure5_queries import FIGURE5_QUERIES
from repro.investigate.report import (ExperimentReport, SystemSeries,
                                      run_experiment)

__all__ = [
    "Catalog", "CatalogEntry", "ConcisenessComparison", "QueryMetrics",
    "aiql_metrics", "compare_catalog", "cypher_metrics", "sql_metrics",
    "FIGURE4_QUERIES", "FIGURE5_QUERIES",
    "ExperimentReport", "SystemSeries", "run_experiment",
]
