"""The Figure 4 investigation: 19 multievent queries + 1 anomaly query.

"Our investigation used 19 multievent queries and 1 anomaly query" (§3).
These are the queries a security analyst iteratively constructs while
investigating the demo's five-step APT attack; each is phrased against the
artifacts :mod:`repro.telemetry.apt` injects, using the demo enterprise's
agent ids (1 = Windows client, 2 = web server, 3 = DB server, 4 = DC).

Labels follow the paper's figure (a1-1 .. a5-*); the anomaly query is
a5-1, matching the live-investigation narrative, which *starts* the a5
investigation with an anomaly query and then drills down with multievent
queries.
"""

from __future__ import annotations

from repro.investigate.catalog import Catalog, CatalogEntry
from repro.telemetry.collector import SCENARIO_DATE
from repro.telemetry.enterprise import ATTACKER_IP

_AT = f'(at "{SCENARIO_DATE}")'

FIGURE4_QUERIES = Catalog("figure4", [
    # ------------------------------------------------------------------
    # a1: initial compromise of the web server
    # ------------------------------------------------------------------
    CatalogEntry(
        "a1-1", "a1",
        "Which web-server processes accepted connections from the "
        "suspicious external IP?",
        f'''{_AT}
agentid = 2
proc p accept ip i[srcip = "{ATTACKER_IP}"] as e1
return distinct p, i.src_ip'''),
    CatalogEntry(
        "a1-2", "a1",
        "Did the IRC daemon spawn a shell?",
        f'''{_AT}
agentid = 2
proc p1["%unrealircd%"] start proc p2 as e1
return distinct p1, p2'''),
    CatalogEntry(
        "a1-3", "a1",
        "Did any shell open a back-connection to the attacker?",
        f'''{_AT}
agentid = 2
proc p["%/bin/sh%"] connect || write ip i[dstip = "{ATTACKER_IP}"] as e1
return distinct p, i, i.dst_port'''),
    CatalogEntry(
        "a1-4", "a1",
        "Full exploitation chain: inbound exploit, shell spawn, "
        "back-connect — in temporal order.",
        f'''{_AT}
agentid = 2
proc p1["%unrealircd%"] accept ip i1[srcip = "{ATTACKER_IP}"] as e1
proc p1 start proc p2["%/bin/sh%"] as e2
proc p2 connect ip i2[dstip = "{ATTACKER_IP}"] as e3
with e1 before e2, e2 before e3
return distinct p1, p2, i2'''),
    # ------------------------------------------------------------------
    # a2: malware infection
    # ------------------------------------------------------------------
    CatalogEntry(
        "a2-1", "a2",
        "What files did the compromised shell write?",
        f'''{_AT}
agentid = 2
proc p["%/bin/sh%"] write file f as e1
return distinct p, f'''),
    CatalogEntry(
        "a2-2", "a2",
        "Malware drop chain: shell pulls payload from the attacker, "
        "writes the dropper, launches it, and the malware reaches "
        "another host.",
        f'''{_AT}
proc p1["%/bin/sh%", agentid = 2] read ip i1[dstip = "{ATTACKER_IP}"] as e1
proc p1 write file f1["%rcbot%"] as e2
proc p1 start proc p2["%rcbot%"] as e3
proc p2 connect proc p3 as e4
with e1 before e2, e2 before e3, e3 before e4
return distinct p1, f1, p2, p3'''),
    CatalogEntry(
        "a2-3", "a2",
        "Infection on the Windows client: who wrote and launched the "
        "implant?",
        f'''{_AT}
agentid = 1
proc p1 write file f1["%svchost_upd.exe%"] as e1
proc p1 start proc p2["%svchost_upd%"] as e2
with e1 before e2
return distinct p1, f1, p2'''),
    # ------------------------------------------------------------------
    # a3: privilege escalation + memory dumping
    # ------------------------------------------------------------------
    CatalogEntry(
        "a3-1", "a3",
        "Who launched the memory-dumping tools?",
        f'''{_AT}
agentid = 1
proc p1 start proc p2["%mimikatz.exe%"] as e1
return distinct p1, p2'''),
    CatalogEntry(
        "a3-2", "a3",
        "Did both dumping tools touch the same LSASS dump?",
        f'''{_AT}
agentid = 1
proc p1["%mimikatz.exe%"] write file f1["%lsass.dmp%"] as e1
proc p2["%kiwi.exe%"] read file f1 as e2
with e1 before e2
return distinct p1, f1, p2'''),
    CatalogEntry(
        "a3-3", "a3",
        "Ramification of the implant: track forward from the implant to "
        "the harvested credentials.",
        f'''{_AT}
forward: proc m["%svchost_upd%", agentid = 1] ->[start] proc t["%mimikatz%"]
->[write] file c["%creds.txt%"]
return distinct m, t, c'''),
    # ------------------------------------------------------------------
    # a4: domain controller penetration + password dumping
    # ------------------------------------------------------------------
    CatalogEntry(
        "a4-1", "a4",
        "Which client process connected into the domain controller?",
        f'''{_AT}
proc p1[agentid = 1] connect proc p2[agentid = 4] as e1
return distinct p1, p2'''),
    CatalogEntry(
        "a4-2", "a4",
        "Were password dumpers started on the DC, and by whom?",
        f'''{_AT}
agentid = 4
proc p1["%cmd.exe%"] start proc p2["%PwDump7%"] as e1
proc p1 start proc p3["%WCE%"] as e2
with e1 before e2
return distinct p1, p2, p3'''),
    CatalogEntry(
        "a4-3", "a4",
        "Did PwDump7 read the AD database and write a dump?",
        f'''{_AT}
agentid = 4
proc p1["%PwDump7%"] read file f1["%ntds.dit%"] as e1
proc p1 write file f2["%pwdump_all%"] as e2
with e1 before e2
return distinct p1, f1, f2'''),
    CatalogEntry(
        "a4-4", "a4",
        "Full WCE chain: launch, SAM read, credential file write.",
        f'''{_AT}
agentid = 4
proc p1["%cmd.exe%"] start proc p2["%WCE%"] as e1
proc p2 read file f1["%config\\\\SAM%"] as e2
proc p2 write file f2["%wce_creds%"] as e3
with e1 before e2, e2 before e3
return distinct p1, p2, f1, f2'''),
    # ------------------------------------------------------------------
    # a5: data exfiltration from the database server
    # ------------------------------------------------------------------
    CatalogEntry(
        "a5-1", "a5",
        "Anomaly: processes transferring unusually large volumes to the "
        "suspicious IP (moving-average spike).",
        f'''{_AT}
agentid = 3
window = 1 min, step = 10 sec
proc p write ip i[dstip = "{ATTACKER_IP}"] as evt
return p, avg(evt.amount) as amt
group by p
having (amt > 2 * (amt + amt[1] + amt[2]) / 3)'''),
    CatalogEntry(
        "a5-2", "a5",
        "Which DB-server processes sent data to the attacker at all?",
        f'''{_AT}
agentid = 3
proc p write ip i[dstip = "{ATTACKER_IP}"] as e1
return distinct p, i'''),
    CatalogEntry(
        "a5-3", "a5",
        "What files did powershell.exe read before its transfers?",
        f'''{_AT}
agentid = 3
proc p["%powershell.exe%"] read file f as e1
proc p write ip i[dstip = "{ATTACKER_IP}"] as e2
with e1 before e2
return distinct p, f'''),
    CatalogEntry(
        "a5-4", "a5",
        "Which process created the database dump file?",
        f'''{_AT}
agentid = 3
proc p write file f["%db.bak%"] as e1
return distinct p, f'''),
    CatalogEntry(
        "a5-5", "a5",
        "The paper's Query 1: OSQL-driven dump exfiltrated by the "
        "sbblv.exe malware.",
        f'''{_AT}
agentid = 3
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
proc p4 read || write ip i1[dstip = "{ATTACKER_IP}"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, p2, p3, f1, p4, i1'''),
    CatalogEntry(
        "a5-6", "a5",
        "Confirm the C2 connection was established before the transfer.",
        f'''{_AT}
agentid = 3
proc p["%powershell.exe%"] connect ip i[dstip = "{ATTACKER_IP}"] as e1
proc p write ip i as e2
with e1 before e2
return distinct p, i'''),
])
