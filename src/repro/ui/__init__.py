"""User interfaces: terminal REPL and the demo web UI."""

from repro.ui.cli import Repl
from repro.ui.render import render_status, render_table
from repro.ui.webapp import WebApi, make_server, serve_background

__all__ = ["Repl", "render_status", "render_table", "WebApi",
           "make_server", "serve_background"]
