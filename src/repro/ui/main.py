"""The ``repro`` command line: simulate, query, investigate, serve.

Usage (also via ``python -m repro``):

    repro simulate --scenario demo --events-per-host 1000 --out day.jsonl
    repro query day.jsonl 'proc p["%sbblv%"] write ip i as e1 return p, i'
    repro query day.jsonl --backend columnar 'proc p write file f as e1 return f'
    repro explain day.jsonl "$(cat query.aiql)"
    repro check 'proc p[ start proc c as e1 return c'
    repro repl day.jsonl
    repro serve day.jsonl --port 8080
    repro investigate day.jsonl --catalog figure4

Every data-loading command accepts ``--backend`` to pick the storage
substrate the engine runs on — a single-node builtin (``row``,
``columnar``, ``sqlite``; default: row) or the multi-process
scatter-gather tier (``sharded``, ``sharded(columnar)``, ... with
``--shards N`` setting the worker fan-out) — and ``--workers N`` to pin
the sub-query thread pool (default: sized to the machine's CPU count).

Event files are the JSONL archive format of
:mod:`repro.storage.serialize` (``.gz`` compressed transparently).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.session import AiqlSession
from repro.errors import ReproError
from repro.lang.errors import AiqlSyntaxError
from repro.storage.backend import BUILTIN_BACKENDS, SHARDED_BACKENDS
from repro.storage.serialize import load_store, write_events
from repro.storage.wal import SYNC_POLICIES
from repro.ui.render import render_table

#: ``--backend`` choices: the single-node builtins plus the sharded
#: scatter-gather family (``--shards`` sets the worker fan-out).
BACKEND_CHOICES = BUILTIN_BACKENDS + SHARDED_BACKENDS


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AIQL: investigate attack behaviors over system "
                    "monitoring data")
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="generate a monitored enterprise day (JSONL)")
    simulate.add_argument("--scenario", choices=("demo", "case2"),
                          default="demo")
    simulate.add_argument("--events-per-host", type=int, default=1000)
    simulate.add_argument("--seed", type=int, default=None)
    simulate.add_argument("--out", required=True)

    query = commands.add_parser("query", help="run one AIQL query")
    query.add_argument("data", help="JSONL event file")
    query.add_argument("aiql", help="query text (or @file)")
    query.add_argument("--max-rows", type=int, default=50)
    query.add_argument("--explain", action="store_true",
                       help="print the plan (chosen access path, "
                            "statistics-based estimate) and the per-pattern "
                            "execution report (actual rows) with the result")
    query.add_argument("--analyze", action="store_true",
                       help="EXPLAIN ANALYZE: run the query and print, per "
                            "pattern, the planner's estimate next to the "
                            "actual rows and elapsed time, with the "
                            "estimate-error ratio flagged when it is far off")
    query.add_argument("--trace-out", metavar="FILE", default=None,
                       help="record a hierarchical span trace of the query "
                            "(parse/analyze/plan/schedule/scan/join/project) "
                            "and write it as Chrome trace_event JSON, "
                            "loadable in chrome://tracing or Perfetto")

    explain = commands.add_parser("explain", help="show the query plan")
    explain.add_argument("data")
    explain.add_argument("aiql")

    check = commands.add_parser("check", help="syntax-check a query")
    check.add_argument("aiql")

    lint = commands.add_parser(
        "lint", help="run the semantic analyzer on a query")
    lint.add_argument("aiql", nargs="+", help="query text (each may be @file)")
    lint.add_argument("--strict", action="store_true",
                      help="exit non-zero on warnings too")

    repl = commands.add_parser("repl", help="interactive console")
    repl.add_argument("data")

    serve = commands.add_parser("serve", help="start the web UI")
    serve.add_argument("data")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)

    investigate = commands.add_parser(
        "investigate", help="replay a paper query catalog")
    investigate.add_argument("data")
    investigate.add_argument("--catalog", choices=("figure4", "figure5"),
                             default="figure4")

    stream = commands.add_parser(
        "stream", help="evaluate standing queries over a live event stream")
    stream.add_argument("aiql", nargs="+",
                        help="standing queries (each may be @file)")
    stream.add_argument("--scenario", choices=("demo", "case2"),
                        default="demo",
                        help="telemetry generator to tail")
    stream.add_argument("--events-per-host", type=int, default=500)
    stream.add_argument("--seed", type=int, default=None)
    stream.add_argument("--batch-size", type=_positive_int, default=256,
                        help="bus delivery batch size")
    stream.add_argument("--follow", action="store_true",
                        help="pace the replay in (scaled) real time and "
                             "keep printing matches until interrupted")
    stream.add_argument("--rate", type=float, default=5000.0, metavar="EPS",
                        help="events/sec pacing for --follow")
    stream.add_argument("--max-rows", type=int, default=20,
                        help="result rows per query printed at the end")
    stream.add_argument("--backend", choices=BACKEND_CHOICES, default="row",
                        help="storage substrate the stream ingests into")
    stream.add_argument("--shards", type=_positive_int, default=None,
                        metavar="N",
                        help="worker-process fan-out for the sharded "
                             "backends (stream batches route per shard)")
    stream.add_argument("--durable", metavar="DIR", default=None,
                        help="write-ahead-log the ingest (and standing-query "
                             "alerts) into DIR; crash-recoverable with "
                             "'repro recover DIR'")
    stream.add_argument("--sync", choices=SYNC_POLICIES, default="always",
                        help="WAL fsync policy for --durable "
                             "(default: always)")

    stats = commands.add_parser(
        "stats", help="dump the metrics snapshot a durable stream writes")
    stats.add_argument("dir", help="durable directory (--durable DIR); "
                                   "reads DIR/metrics.json")
    stats.add_argument("--json", action="store_true",
                       help="raw snapshot JSON instead of the rendered form")
    stats.add_argument("--follow", action="store_true",
                       help="re-read and re-print the snapshot every second "
                            "until interrupted (pairs with a live "
                            "'repro stream --durable DIR --follow')")

    recover = commands.add_parser(
        "recover", help="rebuild a crashed durable session from its "
                        "WAL + checkpoint")
    recover.add_argument("dir", help="durable directory (--durable DIR)")
    recover.add_argument("--aiql", action="append", default=[],
                         metavar="QUERY",
                         help="run a query on the recovered store "
                              "(repeatable; each may be @file)")
    recover.add_argument("--checkpoint", action="store_true",
                         help="checkpoint after recovery (snapshots the "
                              "store and truncates the replayed WAL)")
    recover.add_argument("--max-rows", type=int, default=20)
    recover.add_argument("--backend", choices=BUILTIN_BACKENDS, default="row",
                         help="backend to rebuild into (used only if the "
                              "directory's manifest does not name one)")
    recover.add_argument("--workers", type=_positive_int, default=None,
                         metavar="N")

    alerts = commands.add_parser(
        "alerts", help="replay or acknowledge a durable session's alert log")
    alerts.add_argument("dir", help="durable directory (--durable DIR)")
    alerts.add_argument("--consumer", default="default",
                        help="named ack cursor to read through")
    alerts.add_argument("--ack", action="store_true",
                        help="acknowledge everything printed (the next "
                             "replay starts after it)")

    for loader in (query, explain, repl, serve, investigate):
        loader.add_argument("--backend", choices=BACKEND_CHOICES,
                            default="row",
                            help="storage substrate to load events into")
        loader.add_argument("--workers", type=_positive_int, default=None,
                            metavar="N",
                            help="sub-query thread-pool size (default: "
                                 "sized to the machine's CPU count)")
        loader.add_argument("--shards", type=_positive_int, default=None,
                            metavar="N",
                            help="worker-process fan-out for the sharded "
                                 "backends (default: 2)")
    return parser


def _query_text(argument: str) -> str:
    if argument.startswith("@"):
        with open(argument[1:], "r", encoding="utf-8") as handle:
            return handle.read()
    return argument


def _load_session(path: str, backend: str = "row",
                  workers: int | None = None,
                  shards: int | None = None) -> AiqlSession:
    session = AiqlSession(backend=backend, max_workers=workers,
                          shards=shards)
    load_store(path, session.store)
    return session


def main(argv: list[str] | None = None, stdout=None) -> int:
    stdout = stdout if stdout is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args, stdout)
    except AiqlSyntaxError as exc:
        print(exc.render(), file=stdout)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=stdout)
        return 1


def _build_scenario(args: argparse.Namespace):
    """Shared scenario assembly for ``simulate`` and ``stream``."""
    from repro.telemetry import build_case2_scenario, build_demo_scenario
    builders = {"demo": build_demo_scenario, "case2": build_case2_scenario}
    kwargs = {"events_per_host": args.events_per_host}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    return builders[args.scenario](**kwargs)


def _dispatch(args: argparse.Namespace, stdout) -> int:
    if args.command == "simulate":
        count = write_events(_build_scenario(args).events(), args.out)
        print(f"wrote {count} events to {args.out}", file=stdout)
        return 0

    if args.command == "check":
        from repro.lang.errors import check_syntax
        error = check_syntax(_query_text(args.aiql))
        if error is None:
            print("syntax OK", file=stdout)
            return 0
        print(error.render(), file=stdout)
        return 2

    if args.command == "lint":
        return _run_lint(args, stdout)

    if args.command == "query":
        session = _load_session(args.data, args.backend, args.workers,
                                args.shards)
        text = _query_text(args.aiql)
        tracing = args.trace_out is not None
        if not (args.explain or args.analyze or tracing):
            result = session.query(text)
            print(render_table(result, max_rows=args.max_rows), file=stdout)
            return 0
        from dataclasses import replace
        options = session.options
        if args.explain or args.analyze:
            print(session.explain(text), file=stdout)
            options = replace(options, explain=True)
        result = session.query(text, options, trace=args.analyze or tracing)
        if args.analyze:
            print(_render_analyze(result), file=stdout)
        elif args.explain and result.report:
            print("execution:", file=stdout)
            print(result.report, file=stdout)
        if tracing:
            tracer = session.last_trace()
            assert tracer is not None
            with open(args.trace_out, "w", encoding="utf-8") as handle:
                handle.write(tracer.to_json())
            print(f"trace written to {args.trace_out} "
                  f"({len(tracer.spans())} spans; open in chrome://tracing "
                  f"or https://ui.perfetto.dev)", file=stdout)
        print(render_table(result, max_rows=args.max_rows), file=stdout)
        return 0

    if args.command == "stats":
        return _run_stats(args, stdout)

    if args.command == "explain":
        session = _load_session(args.data, args.backend, args.workers,
                                args.shards)
        print(session.explain(_query_text(args.aiql)), file=stdout)
        return 0

    if args.command == "repl":
        from repro.ui.cli import run
        session = _load_session(args.data, args.backend, args.workers,
                                args.shards)
        print(session.describe(), file=stdout)
        run(session, stdout=stdout)
        return 0

    if args.command == "serve":
        from repro.ui.webapp import make_server
        session = _load_session(args.data, args.backend, args.workers,
                                args.shards)
        server = make_server(session, args.host, args.port)
        host, port = server.server_address
        print(f"AIQL web UI on http://{host}:{port}/ — Ctrl-C to stop",
              file=stdout)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            server.shutdown()
        return 0

    if args.command == "stream":
        return _run_stream(args, stdout)

    if args.command == "recover":
        return _run_recover(args, stdout)

    if args.command == "alerts":
        return _run_alerts(args, stdout)

    if args.command == "investigate":
        from repro.investigate import FIGURE4_QUERIES, FIGURE5_QUERIES
        catalog = (FIGURE4_QUERIES if args.catalog == "figure4"
                   else FIGURE5_QUERIES)
        session = _load_session(args.data, args.backend, args.workers,
                                args.shards)
        print(session.describe(), file=stdout)
        total = 0.0
        for entry in catalog:
            result = session.query(entry.aiql)
            total += result.elapsed
            print(f"[{entry.id}] {entry.title}", file=stdout)
            print(render_table(result, max_rows=5), file=stdout)
            print(file=stdout)
        print(f"{len(catalog)} queries in {total * 1000:.0f} ms",
              file=stdout)
        return 0

    raise ReproError(f"unknown command {args.command!r}")


def _render_analyze(result) -> str:
    """EXPLAIN ANALYZE body: planner estimates against measured reality.

    One line per pattern (partition reports aggregated), the actual rows
    the scan matched and the time it took next to the statistics-based
    estimate the scheduler ordered by (the estimator predicts *matched*
    rows — fetched shows what the access path had to hydrate to get
    there).  The estimate-error ratio (actual / estimated) is printed
    for every pattern and flagged when off by 4x either way — the signal
    that the per-bucket statistics have gone stale or a predicate
    defeated them.
    """
    execution = result.execution
    if execution is None:
        return result.report or "(no execution report)"
    lines = ["EXPLAIN ANALYZE",
             f"pattern order: {' -> '.join(execution.order) or '(none)'}"]
    for trace in execution.aggregated():
        if trace.estimate > 0:
            ratio = trace.matched / trace.estimate
            error = f"est-error=x{ratio:.2f}"
            if ratio >= 4.0 or ratio <= 0.25:
                error += "  <-- estimate off"
        elif trace.matched == 0:
            error = "est-error=exact"
        else:
            error = "est-error=xinf  <-- estimate off"
        path = f" path={trace.path}" if trace.path else ""
        lines.append(f"  {trace.event_var}:{path} estimate={trace.estimate} "
                     f"actual={trace.matched} fetched={trace.fetched} "
                     f"time={trace.elapsed * 1000:.1f}ms  {error}")
    if execution.short_circuited:
        lines.append("  short-circuited: a pattern had no matches")
    lines.append(f"joined rows: {execution.joined_rows}")
    lines.append(f"total: {execution.elapsed * 1000:.1f} ms")
    return "\n".join(lines)


def _render_metrics(snapshot) -> str:
    """Human-readable form of one metrics snapshot."""
    lines = []
    if snapshot.counters:
        lines.append("counters:")
        for name in sorted(snapshot.counters):
            lines.append(f"  {name} = {snapshot.counters[name]}")
    if snapshot.gauges:
        lines.append("gauges:")
        for name in sorted(snapshot.gauges):
            lines.append(f"  {name} = {snapshot.gauges[name]:g}")
    if snapshot.histograms:
        lines.append("histograms:")
        for name in sorted(snapshot.histograms):
            hist = snapshot.histograms[name]
            mean = hist.total / hist.count if hist.count else 0.0
            lines.append(
                f"  {name}: count={hist.count} mean={mean:.6g} "
                f"p50={hist.percentile(0.50):.6g} "
                f"p95={hist.percentile(0.95):.6g} "
                f"p99={hist.percentile(0.99):.6g} max={hist.vmax:.6g}")
    return "\n".join(lines) if lines else "(empty snapshot)"


def _run_stats(args: argparse.Namespace, stdout) -> int:
    """``repro stats``: print the snapshot a durable stream keeps on disk.

    ``repro stream --durable DIR`` rewrites ``DIR/metrics.json``
    atomically (write + rename) as it runs and on close, so this command
    can watch a live stream's counters without any RPC surface.
    """
    import os as _os
    import time as _time

    from repro.obs.metrics import MetricsSnapshot

    path = _os.path.join(args.dir, "metrics.json")
    while True:
        if not _os.path.exists(path):
            raise ReproError(f"{path}: no metrics snapshot (was the stream "
                             f"run with --durable {args.dir}?)")
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        if args.json:
            print(text, file=stdout)
        else:
            print(_render_metrics(MetricsSnapshot.from_json(text)),
                  file=stdout)
        if not args.follow:
            return 0
        print(file=stdout)
        try:
            _time.sleep(1.0)
        except KeyboardInterrupt:
            return 0


def _run_lint(args: argparse.Namespace, stdout) -> int:
    """``repro lint``: static analysis without loading any data.

    Exit codes: 0 when every query is clean (or carries only warnings
    without ``--strict``), 1 when warnings are present under
    ``--strict``, 2 when any query has errors.
    """
    from repro.analysis import analyze, render_all

    errors = warnings = 0
    for position, text in enumerate(args.aiql, start=1):
        source = _query_text(text)
        label = (text[1:] if text.startswith("@")
                 else f"query {position}")
        diagnostics = analyze(source)
        if not diagnostics:
            continue
        print(f"{label}:", file=stdout)
        print(render_all(diagnostics, source), file=stdout)
        errors += sum(1 for d in diagnostics if d.is_error)
        warnings += sum(1 for d in diagnostics if not d.is_error)
    checked = len(args.aiql)
    summary = (f"{checked} quer{'y' if checked == 1 else 'ies'} checked: "
               f"{errors} error(s), {warnings} warning(s)")
    print(summary, file=stdout)
    if errors:
        return 2
    if warnings and args.strict:
        return 1
    return 0


def _run_recover(args: argparse.Namespace, stdout) -> int:
    """``repro recover``: rebuild store state after a crash.

    Prints the recovery tally (checkpoint + WAL replay + dedup counts)
    and the recovered store summary; ``--aiql`` then runs investigation
    queries directly on the recovered state.
    """
    session = AiqlSession.recover(args.dir, backend=args.backend,
                                  max_workers=args.workers)
    print(session.store.recovery.describe(), file=stdout)
    print(session.describe(), file=stdout)
    for text in args.aiql:
        result = session.query(_query_text(text))
        print(render_table(result, max_rows=args.max_rows), file=stdout)
    if args.checkpoint:
        number = session.checkpoint()
        print(f"checkpoint #{number} written ({session.event_count} "
              f"events); WAL truncated", file=stdout)
    session.store.close()
    return 0


def _run_alerts(args: argparse.Namespace, stdout) -> int:
    """``repro alerts``: at-least-once consumption of the alert log."""
    import os

    from repro.stream.alertlog import AlertLog

    path = os.path.join(args.dir, "alerts.log")
    if not os.path.exists(path):
        raise ReproError(f"{path}: no alert log (was the stream run with "
                         f"--durable {args.dir}?)")
    with AlertLog(path) as log:
        last = 0
        count = 0
        for record in log.replay(args.consumer):
            cells = ", ".join(str(cell) for cell in record.row)
            print(f"#{record.seq} [{record.query}] {cells}", file=stdout)
            last = record.seq
            count = count + 1
        print(f"{count} pending alert(s) for consumer "
              f"{args.consumer!r}", file=stdout)
        if args.ack and last:
            log.ack(last, args.consumer)
            print(f"acknowledged through #{last}", file=stdout)
    return 0


def _write_metrics_snapshot(session: AiqlSession, directory: str) -> str:
    """Atomically rewrite DIR/metrics.json (what ``repro stats`` reads)."""
    import os as _os

    path = _os.path.join(directory, "metrics.json")
    temp = path + ".tmp"
    with open(temp, "w", encoding="utf-8") as handle:
        handle.write(session.metrics().to_json())
    _os.replace(temp, path)   # a follower never sees a torn snapshot
    return path


def _run_stream(args: argparse.Namespace, stdout) -> int:
    """``repro stream``: tail a telemetry generator with standing queries.

    Matches and anomaly alerts print live as the stream produces them;
    the final section shows each standing query's accumulated result —
    exactly what a batch query over the fully-ingested store returns.

    With ``--durable DIR`` every delivered batch is WAL-appended before
    it reaches the store and every alert lands in ``DIR/alerts.log``, so
    a crash (or kill) mid-stream loses at most the in-flight batch and
    ``repro recover DIR`` rebuilds the rest.  ``--follow`` shuts down
    gracefully on SIGINT/SIGTERM: pending bus batches are flushed,
    window panes finalized, and the WAL closed cleanly (exit 0).
    """
    import os as _os
    import time as _time

    events = _build_scenario(args).events()

    stream_kwargs = {"batch_size": args.batch_size}
    if args.durable is not None:
        if args.backend.startswith("sharded") or args.shards is not None:
            # WAL-backed shard recovery is the ROADMAP follow-up; until
            # then refuse rather than silently lose a shard on crash.
            raise ReproError("--durable does not support the sharded "
                             "backends yet (shard workers restart empty)")
        session = AiqlSession(backend=args.backend, durable_dir=args.durable,
                              sync=args.sync)
        stream_kwargs["alert_log"] = _os.path.join(args.durable, "alerts.log")
    else:
        session = AiqlSession(backend=args.backend, shards=args.shards)

    def on_match(standing, row) -> None:
        cells = ", ".join(str(cell) for cell in row)
        print(f"[{standing.name}] {cells}", file=stdout)

    # The stream must exist (with the requested batch size) before the
    # first register() lazily creates one with defaults.
    stream = session.stream(**stream_kwargs)
    queries = []
    for position, text in enumerate(args.aiql, start=1):
        source = _query_text(text)
        # Tailing mode runs unbounded: surface matches through the
        # callback only instead of accumulating them for result().
        queries.append(session.register(source, callback=on_match,
                                        name=f"q{position}",
                                        retain_results=not args.follow))
    print(f"streaming {len(events)} events ({args.scenario} scenario) "
          f"against {len(queries)} standing queries "
          f"[backend={session.backend_name}]", file=stdout)

    started = _time.perf_counter()
    if args.follow:
        if args.rate <= 0:
            raise ReproError("--rate must be positive with --follow")
        # Graceful shutdown: SIGINT/SIGTERM set a flag the pacing loop
        # checks between chunks, so interruption never tears a batch —
        # pending bus batches flush, panes finalize, the WAL closes
        # cleanly, and the command exits 0.
        import signal as _signal

        stopping = []

        def _request_stop(signum, frame) -> None:
            stopping.append(_signal.Signals(signum).name)

        previous = {
            sig: _signal.signal(sig, _request_stop)
            for sig in (_signal.SIGINT, _signal.SIGTERM)
        }
        try:
            published = 0
            last_snapshot = started
            for start in range(0, len(events), args.batch_size):
                if stopping:
                    print(f"{stopping[0]} — flushing and closing stream",
                          file=stdout)
                    break
                chunk = events[start:start + args.batch_size]
                stream.publish_many(chunk)
                stream.flush()
                published += len(chunk)
                # Keep the on-disk metrics snapshot fresh (~1 Hz) so a
                # concurrent `repro stats DIR --follow` tails live
                # counters (match latency, watermark lag, queue depth).
                now = _time.perf_counter()
                if args.durable is not None and now - last_snapshot >= 1.0:
                    _write_metrics_snapshot(session, args.durable)
                    last_snapshot = now
                # Deadline-based pacing: sleep toward the schedule instead
                # of a full per-chunk budget, so publish/flush time does
                # not erode the requested rate.
                deadline = started + published / args.rate
                remaining = deadline - _time.perf_counter()
                if remaining > 0:
                    _time.sleep(remaining)
        finally:
            for sig, handler in previous.items():
                _signal.signal(sig, handler)
    else:
        try:
            stream.publish_many(events)
        except KeyboardInterrupt:
            print("interrupted — closing stream", file=stdout)
    stream.close()
    elapsed = _time.perf_counter() - started

    print(file=stdout)
    for standing in queries:
        print(f"== {standing.name} ({standing.kind}): "
              f"{standing.matches} matches, state={standing.state_size()}, "
              f"evicted={standing.evicted}", file=stdout)
        if not args.follow:
            print(render_table(standing.result(), max_rows=args.max_rows),
                  file=stdout)
    rate = len(events) / elapsed if elapsed > 0 else 0.0
    print(f"{len(events)} events in {elapsed:.2f}s ({rate:,.0f} events/sec); "
          f"store now holds {session.event_count} events", file=stdout)
    if args.durable is not None:
        metrics_path = _write_metrics_snapshot(session, args.durable)
        wal_size = session.store.wal_size
        session.store.close()
        print(f"durable: {args.durable} (wal {wal_size} bytes; "
              f"'repro recover {args.durable}' rebuilds this store; "
              f"'repro stats {args.durable}' reads {metrics_path})",
              file=stdout)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
