"""Interactive AIQL REPL.

A terminal counterpart to the demo's web UI: multi-line query entry
(terminated by a blank line), syntax highlighting, diagnostics with
carets, ``.explain`` plans, and result tables.  Usable programmatically for
tests via :meth:`Repl.handle`.
"""

from __future__ import annotations

import sys

from repro.core.session import AiqlSession
from repro.errors import ReproError
from repro.lang.errors import AiqlSyntaxError
from repro.lang.highlight import highlight_ansi
from repro.ui.render import render_table

BANNER = """AIQL investigation console — type a query, finish with an
empty line.  Commands: .help  .describe  .backend  .explain <query>  \
.lint <query>  .quit"""

HELP = """Commands:
  .help              this message
  .describe          store summary (events, entities, partitions, agents)
  .backend           active storage backend (and the available ones)
  .explain <query>   show the execution plan without running
  .lint <query>      run the semantic analyzer without running the query
  .quit              exit
Any other input is executed as an AIQL query (end with a blank line)."""


class Repl:
    """Stateful command handler; the interactive loop is a thin wrapper."""

    def __init__(self, session: AiqlSession) -> None:
        self.session = session
        self.done = False

    def handle(self, text: str) -> str:
        """Process one complete input; returns the text to display."""
        stripped = text.strip()
        if not stripped:
            return ""
        if stripped == ".quit":
            self.done = True
            return "bye"
        if stripped == ".help":
            return HELP
        if stripped == ".describe":
            return self.session.describe()
        if stripped == ".backend":
            from repro.storage.backend import available_backends
            return (f"backend: {self.session.backend_name} "
                    f"(available: {', '.join(available_backends())})")
        if stripped.startswith(".lint"):
            query_text = stripped[len(".lint"):].strip()
            if not query_text:
                return "usage: .lint <query>"
            from repro.analysis import analyze, render_all
            diagnostics = analyze(query_text)
            if not diagnostics:
                return "query is clean"
            return render_all(diagnostics, query_text)
        if stripped.startswith(".explain"):
            query_text = stripped[len(".explain"):].strip()
            if not query_text:
                return "usage: .explain <query>"
            try:
                return self.session.explain(query_text)
            except ReproError as exc:
                return f"error: {exc}"
        try:
            result = self.session.query(stripped)
        except AiqlSyntaxError as exc:
            return exc.render()
        except ReproError as exc:
            return f"error: {exc}"
        return render_table(result)


def run(session: AiqlSession, stdin=None, stdout=None) -> None:
    """The interactive loop (blank line submits the pending query)."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    repl = Repl(session)
    print(BANNER, file=stdout)
    pending: list[str] = []
    for line in stdin:
        line = line.rstrip("\n")
        if line.strip() and not pending and line.strip().startswith("."):
            print(repl.handle(line), file=stdout)
            if repl.done:
                return
            continue
        if line.strip():
            pending.append(line)
            continue
        if pending:
            query = "\n".join(pending)
            pending.clear()
            print(highlight_ansi(query), file=stdout)
            print(repl.handle(query), file=stdout)
            if repl.done:
                return
