"""Text rendering of query results (shared by the CLI and tests)."""

from __future__ import annotations

from repro.core.results import QueryResult

MAX_CELL_WIDTH = 48


def _cell(value: object) -> str:
    text = "" if value is None else str(value)
    if len(text) > MAX_CELL_WIDTH:
        return text[:MAX_CELL_WIDTH - 1] + "…"
    return text


def render_table(result: QueryResult, max_rows: int = 50) -> str:
    """An aligned ASCII table of the result, truncated to ``max_rows``."""
    header = [_cell(column) for column in result.columns]
    body = [[_cell(value) for value in row]
            for row in result.rows[:max_rows]]
    widths = [len(text) for text in header]
    for row in body:
        for index, text in enumerate(row):
            widths[index] = max(widths[index], len(text))

    def line(cells: list[str]) -> str:
        return " | ".join(text.ljust(width)
                          for text, width in zip(cells, widths))

    rule = "-+-".join("-" * width for width in widths)
    out = [line(header), rule]
    out.extend(line(row) for row in body)
    if len(result.rows) > max_rows:
        out.append(f"... {len(result.rows) - max_rows} more rows")
    out.append(f"({len(result.rows)} rows, {result.elapsed * 1000:.1f} ms)")
    return "\n".join(out)


def render_status(result: QueryResult) -> str:
    """The execution-status line the web UI shows above the table."""
    return (f"{result.kind} query: {len(result.rows)} rows in "
            f"{result.elapsed * 1000:.1f} ms")
