"""The web UI (§3, Figure 3) on the stdlib HTTP server.

Reproduces the demo's three UI elements — a query input box, an execution
status area, and an interactive result table — plus the query-editing and
result-analysis features: server-side syntax highlighting, syntax checking
(``/api/check``), and sorting/searching over results (client-side on the
rendered table, server-side via query parameters on ``/api/query``).

The handler logic is separated from the socket server so tests can drive
it without binding a port.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.session import AiqlSession
from repro.errors import ReproError
from repro.lang.errors import AiqlSyntaxError
from repro.lang.highlight import highlight_html

INDEX_HTML = """<!DOCTYPE html>
<html><head><title>AIQL Investigation Console</title>
<style>
body { font-family: sans-serif; margin: 2em; background: #fafafa; }
textarea { width: 100%; height: 10em; font-family: monospace; }
#status { margin: 1em 0; color: #444; }
table { border-collapse: collapse; }
td, th { border: 1px solid #999; padding: 4px 8px; font-family: monospace; }
th { cursor: pointer; background: #eee; }
.aiql-kw { color: #00f; font-weight: bold; }
.aiql-entity { color: #909; font-weight: bold; }
.aiql-str { color: #080; }
.aiql-num { color: #088; }
.aiql-op { color: #a60; }
.aiql-comment { color: #888; }
pre.hl { background: #fff; border: 1px solid #ddd; padding: 8px; }
</style></head>
<body>
<h1>AIQL Investigation Console</h1>
<textarea id="q" placeholder="Enter an AIQL query..."></textarea><br>
<button onclick="run()">Execute</button>
<button onclick="check()">Check syntax</button>
<input id="search" placeholder="search results"
       oninput="filterRows(this.value)">
<div id="status"></div>
<pre class="hl" id="hl"></pre>
<div id="results"></div>
<script>
async function run() {
  const q = document.getElementById('q').value;
  const res = await fetch('/api/query', {method: 'POST', body: q});
  const data = await res.json();
  document.getElementById('status').textContent = data.status;
  document.getElementById('hl').innerHTML = data.highlighted || '';
  const div = document.getElementById('results');
  if (!data.ok) { div.innerHTML = '<pre>' + data.error + '</pre>'; return; }
  let html = '<table><tr>';
  data.columns.forEach((c, i) =>
    html += `<th onclick="sortBy(${i})">${c}</th>`);
  html += '</tr>';
  data.rows.forEach(r => {
    html += '<tr>' + r.map(v => `<td>${v}</td>`).join('') + '</tr>';
  });
  div.innerHTML = html + '</table>';
}
async function check() {
  const q = document.getElementById('q').value;
  const res = await fetch('/api/check', {method: 'POST', body: q});
  const data = await res.json();
  document.getElementById('status').textContent =
    data.ok ? 'syntax OK' : data.error;
}
function sortBy(i) {
  const table = document.querySelector('#results table');
  const rows = Array.from(table.rows).slice(1);
  rows.sort((a, b) => a.cells[i].textContent.localeCompare(
    b.cells[i].textContent, undefined, {numeric: true}));
  rows.forEach(r => table.appendChild(r));
}
function filterRows(text) {
  const table = document.querySelector('#results table');
  if (!table) return;
  Array.from(table.rows).slice(1).forEach(r => {
    r.style.display =
      r.textContent.toLowerCase().includes(text.toLowerCase()) ? '' : 'none';
  });
}
</script>
</body></html>
"""


class WebApi:
    """HTTP-free request handling (unit-testable)."""

    def __init__(self, session: AiqlSession) -> None:
        self.session = session

    def index(self) -> tuple[int, str, str]:
        return 200, "text/html", INDEX_HTML

    def query(self, body: str, sort: str | None = None,
              search: str | None = None) -> tuple[int, str, str]:
        """POST /api/query — execute AIQL, return a JSON result table."""
        try:
            result = self.session.query(body)
        except AiqlSyntaxError as exc:
            payload = {"ok": False, "error": exc.render(),
                       "status": "syntax error",
                       "highlighted": highlight_html(body)}
            return 400, "application/json", json.dumps(payload)
        except ReproError as exc:
            payload = {"ok": False, "error": str(exc),
                       "status": "execution error",
                       "highlighted": highlight_html(body)}
            return 400, "application/json", json.dumps(payload)
        if search:
            result = result.search(search)
        if sort:
            result = result.sorted_by(sort)
        payload = {
            "ok": True,
            "status": (f"{result.kind} query: {len(result.rows)} rows in "
                       f"{result.elapsed * 1000:.1f} ms"),
            "columns": result.columns,
            "rows": [[_json_cell(v) for v in row] for row in result.rows],
            "report": result.report,
            "highlighted": highlight_html(body),
        }
        return 200, "application/json", json.dumps(payload)

    def check(self, body: str) -> tuple[int, str, str]:
        """POST /api/check — syntax checking for query debugging."""
        error = self.session.check(body)
        if error is None:
            payload = {"ok": True}
        else:
            payload = {"ok": False, "error": error.render(),
                       "line": error.line, "col": error.col}
        return 200, "application/json", json.dumps(payload)

    def describe(self) -> tuple[int, str, str]:
        """GET /api/describe — store summary."""
        return 200, "application/json", json.dumps(
            {"ok": True, "summary": self.session.describe()})

    def catalog(self, name: str) -> tuple[int, str, str]:
        """GET /api/catalog?name=figure4 — the paper's query catalogs.

        Lets the audience issue the investigation queries with one click,
        matching the guided-demo flow of §3.
        """
        from repro.investigate import FIGURE4_QUERIES, FIGURE5_QUERIES
        catalogs = {"figure4": FIGURE4_QUERIES, "figure5": FIGURE5_QUERIES}
        catalog = catalogs.get(name)
        if catalog is None:
            return 404, "application/json", json.dumps(
                {"ok": False,
                 "error": f"unknown catalog {name!r} "
                          f"(have: {', '.join(sorted(catalogs))})"})
        entries = [{"id": entry.id, "step": entry.step,
                    "title": entry.title, "kind": entry.kind,
                    "aiql": entry.aiql,
                    "highlighted": highlight_html(entry.aiql)}
                   for entry in catalog]
        return 200, "application/json", json.dumps(
            {"ok": True, "name": name, "queries": entries})


def _json_cell(value: object) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def make_server(session: AiqlSession, host: str = "127.0.0.1",
                port: int = 0) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server; port 0 picks a free port."""
    api = WebApi(session)

    class Handler(BaseHTTPRequestHandler):
        def log_message(self, fmt, *args):  # quiet by default
            pass

        def _send(self, status: int, content_type: str, body: str) -> None:
            data = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type",
                             f"{content_type}; charset=utf-8")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self) -> None:
            parsed = urllib.parse.urlparse(self.path)
            if parsed.path in ("/", "/index.html"):
                self._send(*api.index())
            elif parsed.path == "/api/describe":
                self._send(*api.describe())
            elif parsed.path == "/api/catalog":
                params = urllib.parse.parse_qs(parsed.query)
                name = (params.get("name") or ["figure4"])[0]
                self._send(*api.catalog(name))
            else:
                self._send(404, "text/plain", "not found")

        def do_POST(self) -> None:
            parsed = urllib.parse.urlparse(self.path)
            length = int(self.headers.get("Content-Length", "0"))
            body = self.rfile.read(length).decode("utf-8")
            params = urllib.parse.parse_qs(parsed.query)
            if parsed.path == "/api/query":
                self._send(*api.query(
                    body,
                    sort=(params.get("sort") or [None])[0],
                    search=(params.get("search") or [None])[0]))
            elif parsed.path == "/api/check":
                self._send(*api.check(body))
            else:
                self._send(404, "text/plain", "not found")

    return ThreadingHTTPServer((host, port), Handler)


def serve_background(session: AiqlSession, host: str = "127.0.0.1",
                     port: int = 0) -> tuple[ThreadingHTTPServer,
                                             threading.Thread]:
    """Start the UI server on a daemon thread; returns (server, thread)."""
    server = make_server(session, host, port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread
