"""Columnar event store: struct-of-arrays partitions + batch predicate scans.

The second first-class implementation of the
:class:`~repro.storage.backend.StorageBackend` protocol.  Where the row
store answers data queries through per-partition posting indexes and then
filters surviving :class:`~repro.model.events.Event` objects one at a time,
the columnar store keeps each ``(agentid, time bucket)`` partition as
struct-of-arrays columns —

    ids | ts | op codes | event-type codes | subject codes | object codes
        | amounts | failcodes

— with entities, operations, and event types dictionary-encoded against
store-level vocabularies.  A pattern's residual predicate (the
:class:`~repro.engine.filters.CompiledPredicate` atom conjunction) is
evaluated *column-at-a-time*:

1. atoms over dictionary-encoded columns are evaluated once per **distinct
   value** (the audit-data vocabulary is tiny relative to event volume),
   yielding allowed-code sets;
2. per-partition zone maps (ts and amount min/max, codes present) prune
   partitions that cannot match;
3. a code-generated fused row loop — plain integer set-membership plus the
   few residual numeric tests — selects matching row indexes;
4. only survivors are materialized back into :class:`Event` objects.

Both evaluation modes build their value tests from
:func:`repro.engine.filters.value_test`, so batch results agree exactly
with the row store's per-event evaluation.
"""

from __future__ import annotations

import bisect
import heapq
import threading
from array import array
from collections import Counter
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.errors import StorageError
from repro.model.entities import (DEFAULT_ATTRIBUTE, ENTITY_TYPES, Entity,
                                  ProcessEntity)
from repro.model.events import Event, validate_operation
from repro.model.timeutil import SECONDS_PER_DAY, SPAN_EPSILON, Window
from repro.obs.clock import monotonic
from repro.storage.dedup import EntityInterner
from repro.storage.indexes import like_to_regex
from repro.storage.backend import record_scan
from repro.storage.backend import resolve_spec as _resolved
from repro.storage.scanstats import PartitionStatistics
from repro.storage.stats import PatternProfile, _binding_bound
from repro.engine.filters import Atom, CompiledPredicate

if TYPE_CHECKING:
    from repro.storage.backend import (AccessPathInfo, ColumnBatch,
                                       IdentityBindings, ScanSpec)

_ETYPE_CODE: dict[str, int] = {name: code
                               for code, name in enumerate(ENTITY_TYPES)}
_ETYPE_NAME: tuple[str, ...] = tuple(ENTITY_TYPES)
_MISSING = object()

# Event-level numeric/scalar attributes stored as plain columns; the
# remaining event atoms (operation, event_type, agentid) are dictionary- or
# partition-encoded and handled separately.
_EVENT_COLUMN = {"id": "ids", "ts": "ts", "amount": "amounts",
                 "failcode": "failcodes"}


class ColumnarPartition:
    """One agent/bucket's events as parallel columns, lazily time-sorted."""

    __slots__ = ("agentid", "bucket", "ids", "ts", "ops", "etypes",
                 "subjects", "objects", "amounts", "failcodes", "_sorted",
                 "_sort_lock", "min_ts", "max_ts", "min_amount",
                 "max_amount", "type_op", "by_type", "by_op",
                 "by_subject", "by_object",
                 "subject_name", "object_value", "materialized", "stats")

    def __init__(self, agentid: int, bucket: int) -> None:
        self.agentid = agentid
        self.bucket = bucket
        # Lazily built equi-depth timestamp histograms per dictionary-code
        # group, feeding the skew-aware windowed estimates.
        self.stats = PartitionStatistics()
        # Survivor cache: event id -> materialized Event.  Keyed by id (not
        # row) so the lazy time-sort never invalidates it; repeated queries
        # over hot rows skip re-materialization.
        self.materialized: dict[int, Event] = {}
        # The parallel executor reads partitions from worker threads; the
        # lazy resort must not run twice concurrently.
        self._sort_lock = threading.Lock()
        self.ids = array("q")
        self.ts = array("d")
        self.ops = array("i")
        self.etypes = array("b")
        self.subjects = array("q")
        self.objects = array("q")
        self.amounts = array("q")
        self.failcodes = array("q")
        self._sorted = True
        self.min_ts = float("inf")
        self.max_ts = float("-inf")
        self.min_amount = 0
        self.max_amount = 0
        # Zone statistics: per-value cardinalities for pruning-power
        # estimation (the columnar analogue of posting-list sizes).
        self.type_op: Counter = Counter()
        self.by_type: Counter = Counter()
        self.by_op: Counter = Counter()
        # Per-entity-code cardinalities: estimation and zone pruning for
        # identity-binding pushdown (codes present <=> key in counter).
        self.by_subject: Counter = Counter()
        self.by_object: Counter = Counter()
        self.subject_name: Counter = Counter()
        self.object_value: Counter = Counter()

    def append(self, eid: int, ts: float, op_code: int, etype_code: int,
               subject_code: int, object_code: int, amount: int,
               failcode: int, subject_name: str,
               object_value: object) -> None:
        # The lazy sort key is (ts, id): an equal-ts append with an
        # out-of-order id breaks it too (the ordered first/last-k scans
        # rely on exact tie order, not just timestamp order).
        if self.ts and (ts < self.ts[-1]
                        or (ts == self.ts[-1] and eid < self.ids[-1])):
            self._sorted = False
        self.ids.append(eid)
        self.ts.append(ts)
        self.ops.append(op_code)
        self.etypes.append(etype_code)
        self.subjects.append(subject_code)
        self.objects.append(object_code)
        self.amounts.append(amount)
        self.failcodes.append(failcode)
        if ts < self.min_ts:
            self.min_ts = ts
        if ts > self.max_ts:
            self.max_ts = ts
        if len(self.ids) == 1:
            self.min_amount = self.max_amount = amount
        else:
            if amount < self.min_amount:
                self.min_amount = amount
            if amount > self.max_amount:
                self.max_amount = amount
        self.type_op[(etype_code, op_code)] += 1
        self.by_type[etype_code] += 1
        self.by_op[op_code] += 1
        self.by_subject[subject_code] += 1
        self.by_object[object_code] += 1
        self.subject_name[subject_name] += 1
        self.object_value[(etype_code, object_value)] += 1

    def _ensure_sorted(self) -> None:
        if self._sorted:
            return
        with self._sort_lock:
            if self._sorted:
                return
            order = sorted(range(len(self.ids)),
                           key=lambda i: (self.ts[i], self.ids[i]))
            for name in ("ids", "ts", "ops", "etypes", "subjects",
                         "objects", "amounts", "failcodes"):
                column = getattr(self, name)
                setattr(self, name, array(column.typecode,
                                          (column[i] for i in order)))
            self._sorted = True

    def row_range(self, window: Window | None) -> tuple[int, int]:
        """Row span ``[lo, hi)`` intersecting the window (sorted order)."""
        if window is None:
            return 0, len(self.ids)
        self._ensure_sorted()
        lo = bisect.bisect_left(self.ts, window.start)
        hi = bisect.bisect_left(self.ts, window.end)
        return lo, hi

    def count_range(self, start: float, end: float) -> int:
        self._ensure_sorted()
        return (bisect.bisect_left(self.ts, end)
                - bisect.bisect_left(self.ts, start))

    def __len__(self) -> int:
        return len(self.ids)


#: Maximum allowed-code-set size the zone check will probe against a
#: partition's per-code counters.  Binding-propagated sets are tiny;
#: constraint-derived sets (a broad LIKE) can cover most of the
#: vocabulary, where probing would cost more than the scan saves.
_ZONE_PROBE_LIMIT = 64


class _BindingCodes:
    """Identity bindings translated to dictionary-code sets.

    ``None`` on a side means unrestricted, mirroring
    :class:`~repro.storage.backend.IdentityBindings`.  ``compact``
    carries the bindings' permission to compact large code sets into a
    :class:`~repro.storage.backend.Bitmap` for the fused loop.
    """

    __slots__ = ("subjects", "objects", "compact")

    def __init__(self, subjects: set[int] | None,
                 objects: set[int] | None, compact: bool = True) -> None:
        self.subjects = subjects
        self.objects = objects
        self.compact = compact

    @property
    def empty(self) -> bool:
        """True when a bound side admits no stored entity at all."""
        return (self.subjects is not None and not self.subjects
                or self.objects is not None and not self.objects)


class _ScanPlan:
    """One predicate lowered against the store's dictionaries.

    ``dim_sets`` maps column name -> allowed code set; ``value_checks``
    are residual ``(column, atom)`` tests on plain numeric columns;
    ``agent_tests`` evaluate once per partition (agentid is constant
    inside one).  ``empty`` marks an unsatisfiable conjunction.
    """

    __slots__ = ("dim_sets", "value_checks", "agent_tests", "row_filter",
                 "empty")

    def __init__(self) -> None:
        self.dim_sets: dict[str, set[int]] = {}
        self.value_checks: list[tuple[str, Atom]] = []
        self.agent_tests: list[Callable[[object], bool]] = []
        self.row_filter: Callable | None = None
        self.empty = False


_INLINE_OPS = {"=": "==", "!=": "!=", "<": "<", "<=": "<=",
               ">": ">", ">=": ">="}


def _compile_row_filter(dim_items, value_items) -> Callable:
    """Generate the fused per-partition row loop for one scan plan.

    The generated function is a single list comprehension whose condition
    is integer set-membership per dictionary column plus the residual
    numeric tests — the batch-evaluation hot loop, with no per-row
    attribute access or Event construction.  Comparisons against numeric
    literals inline as native operators (``amounts[i] > _v0``), which
    matches :func:`repro.engine.filters._compare` exactly because the
    numeric event columns always hold numbers; anything else falls back to
    the atom's :func:`~repro.engine.filters.value_test`.

    An allowed-code collection handed over as a
    :class:`~repro.storage.backend.Bitmap` compiles to a dense flag
    lookup (``_s0[subjects[i]]``) instead of a set probe — one index into
    a bytearray per row, no hashing, whatever the code-set size.  A
    :class:`~repro.storage.backend.BloomedSet` (the huge-vocabulary tier)
    compiles to a multiplicative-hash flag probe that short-circuits the
    exact set probe for the overwhelming majority of non-member rows.
    """
    from repro.storage.backend import _BLOOM_MULTIPLIER, Bitmap, BloomedSet
    conds: list[str] = []
    namespace: dict[str, object] = {}
    for index, (column, allowed) in enumerate(dim_items):
        if isinstance(allowed, Bitmap):
            namespace[f"_s{index}"] = allowed.flags
            conds.append(f"_s{index}[{column}[i]]")
        elif isinstance(allowed, BloomedSet):
            namespace[f"_f{index}"] = allowed.flags
            namespace[f"_m{index}"] = allowed.mask
            namespace[f"_s{index}"] = allowed.codes
            conds.append(
                f"_f{index}[({column}[i] * {_BLOOM_MULTIPLIER}) "
                f"& _m{index}] and {column}[i] in _s{index}")
        else:
            namespace[f"_s{index}"] = allowed
            conds.append(f"{column}[i] in _s{index}")
    for index, (column, atom) in enumerate(value_items):
        value = atom.value
        if (atom.op in _INLINE_OPS
                and isinstance(value, (int, float))
                and not isinstance(value, bool)):
            namespace[f"_v{index}"] = value
            conds.append(f"{column}[i] {_INLINE_OPS[atom.op]} _v{index}")
        elif atom.op == "in":
            namespace[f"_v{index}"] = value
            conds.append(f"{column}[i] in _v{index}")
        else:
            namespace[f"_t{index}"] = atom.make_test()
            conds.append(f"_t{index}({column}[i])")
    condition = " and ".join(conds) if conds else "True"
    source = ("def _row_filter(lo, hi, ids, ts, ops, etypes, subjects, "
              "objects, amounts, failcodes):\n"
              f"    return [i for i in range(lo, hi) if {condition}]\n")
    exec(source, namespace)  # noqa: S102 - trusted, locally generated
    return namespace["_row_filter"]  # type: ignore[return-value]


def _count_codes(counter: Counter, codes: set[int],
                 compact: bool = True) -> int:
    """Total per-code count, iterating whichever side is smaller.

    Binding-propagated code sets can dwarf a partition's distinct-code
    vocabulary; flipping the iteration bounds the estimation work by
    ``min(|codes|, |vocabulary|)`` — the counter-side analogue of the
    row store's posting-key intersection, gated by the same ``compact``
    flag so the ``no_bitmap`` ablation disables it uniformly.
    """
    if compact and len(codes) > len(counter):
        return sum(count for code, count in counter.items()
                   if code in codes)
    return sum(counter.get(code, 0) for code in codes)


def _range_excludes(op: str, value: object, lo: float, hi: float) -> bool:
    """Zone-map check: can ``column <op> value`` match within [lo, hi]?"""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return False
    if op == "=":
        return value < lo or value > hi
    if op == "<":
        return lo >= value
    if op == "<=":
        return lo > value
    if op == ">":
        return hi <= value
    if op == ">=":
        return hi < value
    return False


class ColumnarEventStore:
    """Columnar, partitioned, dictionary-encoded store (``columnar``)."""

    backend_name = "columnar"

    def __init__(self, bucket_seconds: float = SECONDS_PER_DAY) -> None:
        if bucket_seconds <= 0:
            raise StorageError("bucket size must be positive")
        self._bucket_seconds = bucket_seconds
        self._interner = EntityInterner()
        self._entities: list[Entity] = []         # code -> canonical entity
        self._entity_code: dict[tuple, int] = {}  # identity -> code
        self._ops: list[str] = []
        self._op_code: dict[str, int] = {}
        self._partitions: dict[tuple[int, int], ColumnarPartition] = {}
        self._max_id = 0
        self._count = 0
        self._min_ts = float("inf")
        self._max_ts = float("-inf")
        # Allowed-code sets per atom, invalidated when vocabularies grow.
        self._atom_cache: dict[Atom, set[int]] = {}
        # Constraint-value code sets for estimation (same invalidation).
        self._code_cache: dict[tuple, frozenset[int]] = {}

    # ------------------------------------------------------------------
    # Dictionary encoding
    # ------------------------------------------------------------------
    def _entity_code_for(self, entity: Entity) -> tuple[Entity, int]:
        canonical = self._interner.intern(entity)
        code = self._entity_code.get(canonical.identity)
        if code is None:
            code = len(self._entities)
            self._entities.append(canonical)
            self._entity_code[canonical.identity] = code
            self._atom_cache.clear()
            self._code_cache.clear()
        return canonical, code

    def _op_code_for(self, operation: str) -> int:
        code = self._op_code.get(operation)
        if code is None:
            code = len(self._ops)
            self._ops.append(operation)
            self._op_code[operation] = code
            self._atom_cache.clear()
            self._code_cache.clear()
        return code

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def record(self, ts: float, agentid: int, operation: str,
               subject: ProcessEntity, obj: Entity, amount: int = 0,
               failcode: int = 0) -> Event:
        """Build, intern, store, and return one event (agent write path)."""
        subject, subject_code = self._entity_code_for(subject)
        obj, object_code = self._entity_code_for(obj)
        operation = validate_operation(obj.entity_type, operation)
        # _max_id tracks ingested ids too, so recorded ids never collide
        # with archived events (the materialization cache is id-keyed).
        event = Event(id=self._max_id + 1, ts=ts, agentid=agentid,
                      operation=operation, subject=subject, object=obj,
                      amount=amount, failcode=failcode)
        self._append(event, subject, subject_code, obj, object_code)
        return event

    def ingest(self, events: Iterable[Event]) -> int:
        """Store pre-built events, interning their entities."""
        count = 0
        for event in events:
            self._add(event)
            count += 1
        return count

    def _add(self, event: Event) -> None:
        subject, subject_code = self._entity_code_for(event.subject)
        obj, object_code = self._entity_code_for(event.object)
        self._append(event, subject, subject_code, obj, object_code)

    def _append(self, event: Event, subject: ProcessEntity,
                subject_code: int, obj: Entity, object_code: int) -> None:
        key = (event.agentid, int(event.ts // self._bucket_seconds))
        partition = self._partitions.get(key)
        if partition is None:
            partition = ColumnarPartition(*key)
            self._partitions[key] = partition
        partition.append(event.id, event.ts,
                         self._op_code_for(event.operation),
                         _ETYPE_CODE[obj.entity_type],
                         subject_code, object_code, event.amount,
                         event.failcode, subject.exe_name,
                         obj.default_attribute)
        self._count += 1
        if event.id > self._max_id:
            self._max_id = event.id
        if event.ts < self._min_ts:
            self._min_ts = event.ts
        if event.ts > self._max_ts:
            self._max_ts = event.ts

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _pruned(self, window: Window | None,
                agentids: set[int] | None) -> Iterator[ColumnarPartition]:
        for (agentid, bucket), partition in self._partitions.items():
            if agentids is not None and agentid not in agentids:
                continue
            if window is not None:
                if (partition.max_ts < window.start
                        or partition.min_ts >= window.end):
                    continue
            yield partition

    def _event_at(self, partition: ColumnarPartition, row: int,
                  cache: bool = True) -> Event:
        eid = partition.ids[row]
        event = partition.materialized.get(eid)
        # The ts guard keeps a duplicate id in a pathological ingest stream
        # from aliasing a different row's cached event.
        if event is None or event.ts != partition.ts[row]:
            event = Event(id=eid, ts=partition.ts[row],
                          agentid=partition.agentid,
                          operation=self._ops[partition.ops[row]],
                          subject=self._entities[partition.subjects[row]],
                          object=self._entities[partition.objects[row]],
                          amount=partition.amounts[row],
                          failcode=partition.failcodes[row])
            if cache:
                partition.materialized[eid] = event
        return event

    def scan(self, window: Window | None = None,
             agentids: set[int] | None = None) -> list[Event]:
        """All events matching the spatial/temporal bounds (full scan).

        Scans read through the materialization cache but do not populate
        it: a full scan would otherwise pin every row as an Event object
        and erase the columnar memory advantage.  Only batch-select
        survivors (the hot rows) are cached.
        """
        events: list[Event] = []
        for partition in self._pruned(window, agentids):
            lo, hi = partition.row_range(window)
            events.extend(self._event_at(partition, row, cache=False)
                          for row in range(lo, hi))
        events.sort(key=lambda e: (e.ts, e.id))
        return events

    def candidates(self, profile: PatternProfile,
                   spec: "ScanSpec | None" = None) -> list[Event]:
        """Batch-scan superset of events matching the profile.

        The spec's ``limit`` and ``order`` are *not* applied here:
        candidates are a superset still awaiting residual predicate
        evaluation, and truncating (or order-selecting) the superset
        could starve the true matches a limited ``select`` owes (the row
        store's candidates ignore them too).
        """
        spec = _resolved(spec)
        if spec.limit is not None or spec.order is not None:
            from dataclasses import replace
            spec = replace(spec, limit=None, order=None)
        events, _fetched = self._batch_select(
            self._profile_atoms(profile), spec)
        return events

    def select(self, profile: PatternProfile,
               predicate: CompiledPredicate,
               spec: "ScanSpec | None" = None) -> tuple[list[Event], int]:
        """Evaluate the full residual predicate column-at-a-time.

        Unlike the row store — candidate fetch through one posting index,
        then the fused per-event predicate — the whole atom conjunction is
        pushed into the batch scan, so no non-matching Event object is
        ever materialized.  The spec's identity bindings translate to
        dictionary-code sets and join the fused membership tests, and its
        temporal bounds clamp the scan itself — zone maps skip whole
        partitions, a binary search over the sorted ts column bounds the
        fused loop's row range — so binding propagation prunes *before*
        survivor materialization too.
        """
        started = monotonic()
        events, fetched = self._batch_select(predicate.atoms, spec)
        record_scan(fetched, len(events), monotonic() - started)
        return events, fetched

    def estimate(self, profile: PatternProfile,
                 spec: "ScanSpec | None" = None) -> int:
        """Estimated match cardinality (the pruning-power signal)."""
        spec = _resolved(spec)
        binding_codes = self._binding_codes(spec.bindings)
        if spec.unsatisfiable or (binding_codes is not None
                                  and binding_codes.empty):
            return 0
        # Identical tightening to the one _batch_select applies, so the
        # estimate stays consistent with the scan it predicts.
        window = spec.clamped()
        return sum(self._estimate_partition(partition, profile, window,
                                            binding_codes, spec.histograms)
                   for partition in self._pruned(window, spec.agentids))

    def access_path(self, profile: PatternProfile,
                    spec: "ScanSpec | None" = None) -> "AccessPathInfo":
        """The zone-map-pruned batch loop ``select`` would run (no fetch).

        The columnar store has one physical path — the code-generated
        fused row loop — but its extent varies: zone maps and the ts
        clamp decide which partitions and row spans the loop walks, and
        that is the decision ``explain()`` should surface.
        """
        from repro.storage.backend import AccessPathInfo
        spec = _resolved(spec)
        binding_codes = self._binding_codes(spec.bindings)
        if spec.unsatisfiable or (binding_codes is not None
                                  and binding_codes.empty):
            return AccessPathInfo("unsatisfiable", 0)
        window = spec.clamped()
        atoms = self._profile_atoms(profile)
        plan = self._scan_plan(atoms, binding_codes)
        if plan.empty:
            return AccessPathInfo("unsatisfiable", 0)
        scanned = 0
        walked = 0
        for _partition, lo, hi in self._scan_spans(plan, atoms, window,
                                                   spec.agentids):
            walked += 1
            scanned += hi - lo
        pruned = sum(1 for _ in self._pruned(window, spec.agentids)) - walked
        name = "zone-batch(ts-clamp)" if window is not None else "zone-batch"
        if pruned:
            name += f"[{pruned} zone-pruned]"
        return AccessPathInfo(name=name, rows=scanned,
                              considered=(("full-scan", self._count),
                                          (name, scanned)))

    # ------------------------------------------------------------------
    # Batch evaluation
    # ------------------------------------------------------------------
    def _binding_codes(self,
                       bindings: "IdentityBindings | None",
                       ) -> "_BindingCodes | None":
        """Translate identity-binding sets to dictionary-code sets.

        Identities the store has never interned have no code and simply
        drop out; a bound side that ends up empty (empty binding set, or
        all identities unknown) makes the scan unsatisfiable.
        """
        if bindings is None or not bindings:
            return None
        code = self._entity_code
        subjects = objects = None
        if bindings.subjects is not None:
            subjects = {code[identity] for identity in bindings.subjects
                        if identity in code}
        if bindings.objects is not None:
            objects = {code[identity] for identity in bindings.objects
                       if identity in code}
        return _BindingCodes(subjects, objects, bindings.compact)

    def _profile_atoms(self, profile: PatternProfile) -> list[Atom]:
        """Lower a PatternProfile to the equivalent atom conjunction."""
        atoms: list[Atom] = []
        if profile.event_type is not None:
            atoms.append(Atom("event", "event_type", "=",
                              profile.event_type))
        if profile.operations:
            atoms.append(Atom("event", "operation", "in",
                              frozenset(profile.operations)))
        if profile.subject_exact is not None:
            atoms.append(Atom("subject", "exe_name", "=",
                              profile.subject_exact))
        elif profile.subject_like is not None:
            atoms.append(Atom("subject", "exe_name", "like",
                              profile.subject_like))
        if profile.event_type is not None:
            attribute = DEFAULT_ATTRIBUTE[profile.event_type]
            if profile.object_exact is not None:
                atoms.append(Atom("object", attribute, "=",
                                  profile.object_exact))
            elif profile.object_like is not None:
                atoms.append(Atom("object", attribute, "like",
                                  profile.object_like))
        return atoms

    def _allowed_codes(self, atom: Atom,
                       vocabulary: Iterable[object]) -> set[int]:
        """Codes of distinct dictionary values satisfying one atom."""
        try:
            cached = self._atom_cache.get(atom)
        except TypeError:          # unhashable constraint value
            cached = None
        if cached is not None:
            return cached
        test = atom.make_test()
        if atom.target == "event":
            allowed = {code for code, value in enumerate(vocabulary)
                       if test(value)}
        else:
            allowed = set()
            attribute = atom.attribute
            for code, entity in enumerate(vocabulary):
                value = getattr(entity, attribute, _MISSING)
                if value is not _MISSING and test(value):
                    allowed.add(code)
        try:
            self._atom_cache[atom] = allowed
        except TypeError:
            pass
        return allowed

    def _scan_plan(self, atoms: Iterable[Atom],
                   binding_codes: "_BindingCodes | None" = None) -> _ScanPlan:
        plan = _ScanPlan()

        def narrow(column: str, allowed: set[int]) -> None:
            existing = plan.dim_sets.get(column)
            plan.dim_sets[column] = (allowed if existing is None
                                     else existing & allowed)

        if binding_codes is not None:
            if binding_codes.subjects is not None:
                narrow("subjects", binding_codes.subjects)
            if binding_codes.objects is not None:
                narrow("objects", binding_codes.objects)
        for atom in atoms:
            if atom.target == "subject":
                narrow("subjects", self._allowed_codes(atom, self._entities))
            elif atom.target == "object":
                narrow("objects", self._allowed_codes(atom, self._entities))
            elif atom.attribute == "operation":
                narrow("ops", self._allowed_codes(atom, self._ops))
            elif atom.attribute == "event_type":
                narrow("etypes", self._allowed_codes(atom, _ETYPE_NAME))
            elif atom.attribute == "agentid":
                plan.agent_tests.append(atom.make_test())
            else:
                column = _EVENT_COLUMN[atom.attribute]
                plan.value_checks.append((column, atom))
        if any(not allowed for allowed in plan.dim_sets.values()):
            plan.empty = True
            return plan
        # Cheapest dimensions first: type/op sets are tiny, entity sets
        # larger, residual numeric tests (Python calls) last.
        compact = binding_codes.compact if binding_codes is not None else True
        vocab_sizes = {"etypes": len(_ETYPE_NAME), "ops": len(self._ops),
                       "subjects": len(self._entities),
                       "objects": len(self._entities)}
        ordered = [(column, self._compacted(plan.dim_sets[column],
                                            vocab_sizes[column], compact))
                   for column in ("etypes", "ops", "subjects", "objects")
                   if column in plan.dim_sets]
        plan.row_filter = _compile_row_filter(ordered, plan.value_checks)
        return plan

    @staticmethod
    def _compacted(allowed: set[int], vocab_size: int, compact: bool):
        """Large allowed-code sets become dense bitmaps for the hot loop.

        ``compact`` comes from the bindings hint when one is present (the
        ``no_bitmap`` ablation lever); a scan without propagated bindings
        always compacts its constraint-derived (broad LIKE) sets — that
        is a backend-internal representation choice, not part of the
        propagation machinery under ablation.

        A set large enough to compact but sparse against a *huge*
        vocabulary takes the bloom tier instead: a ``Bitmap`` would
        allocate and zero one byte per vocabulary entry on every scan,
        while the :class:`~repro.storage.backend.BloomedSet` is sized to
        the set itself and still answers most probes with one index.
        """
        from repro.storage.backend import (BITMAP_THRESHOLD,
                                           BLOOM_VOCAB_RATIO, Bitmap,
                                           BloomedSet)
        if compact and len(allowed) > BITMAP_THRESHOLD:
            if vocab_size > len(allowed) * BLOOM_VOCAB_RATIO:
                return BloomedSet(allowed)
            return Bitmap(allowed, vocab_size)
        return allowed

    def _zone_excluded(self, partition: ColumnarPartition,
                       plan: _ScanPlan) -> bool:
        for column, allowed in plan.dim_sets.items():
            if column == "etypes":
                if not (allowed & set(partition.by_type)):
                    return True
            elif column == "ops":
                if not (allowed & set(partition.by_op)):
                    return True
            elif column in ("subjects", "objects"):
                # Entity-code sets can be large (LIKE over a big
                # vocabulary); only probe when small — that is the
                # binding-propagation case, where whole partitions
                # typically drop.
                if len(allowed) <= _ZONE_PROBE_LIMIT:
                    present = (partition.by_subject if column == "subjects"
                               else partition.by_object)
                    if not any(code in present for code in allowed):
                        return True
        return False

    def _batch_select(self, atoms: Iterable[Atom],
                      spec: "ScanSpec | None" = None,
                      ) -> tuple[list[Event], int]:
        spec = _resolved(spec)
        groups, fetched = self._scan_rows(atoms, spec)
        events: list[Event] = []
        for partition, rows in groups:
            events.extend(self._event_at(partition, row) for row in rows)
        if spec.order is not None:
            # The groups hold the right survivors; present them in the
            # requested order (cheap — an ordered-limited scan already
            # reduced them to at most the pushed k).
            events.sort(key=spec.order.key())
        return events, fetched

    def select_batches(self, profile: PatternProfile,
                       predicate: CompiledPredicate,
                       spec: "ScanSpec | None" = None,
                       ) -> tuple[list["ColumnBatch"], int]:
        """Vectorized ``select``: survivors as per-partition column slices.

        The same fused scan as :meth:`select`, but survivors never become
        ``Event`` objects: each partition's matching rows come back as a
        :class:`~repro.storage.backend.ColumnBatch` of parallel column
        slices — contiguous survivor spans slice the backing arrays in
        one C-level copy, scattered survivors gather per row — carrying
        only the columns the spec's ``projection`` asks for (``ts``/
        ``id`` always).  Dictionary columns stay codes; the batch carries
        the vocabularies to decode them, and ``hydrate`` materializes
        single rows lazily through the store's survivor cache.
        """
        started = monotonic()
        spec = _resolved(spec)
        groups, fetched = self._scan_rows(predicate.atoms, spec)
        batches = [self._build_batch(partition, rows, spec.projection)
                   for partition, rows in groups if rows]
        record_scan(fetched, sum(len(rows) for _p, rows in groups),
                    monotonic() - started)
        return batches, fetched

    def _build_batch(self, partition: ColumnarPartition, rows: list[int],
                     projection: frozenset[str] | None) -> "ColumnBatch":
        from repro.storage.backend import ColumnBatch
        contiguous = len(rows) == rows[-1] - rows[0] + 1
        if contiguous:
            # Array slices, not memoryviews: a slice is one C-level copy,
            # while a memoryview would pin the writable column (buffer
            # export) and make a later ingest into this partition fail.
            lo, hi = rows[0], rows[-1] + 1

            def column(name: str):
                return getattr(partition, name)[lo:hi]
        else:
            def column(name: str):
                source = getattr(partition, name)
                return [source[row] for row in rows]

        def want(name: str) -> bool:
            return projection is None or name in projection

        return ColumnBatch(
            agentid=partition.agentid,
            ids=column("ids"), ts=column("ts"),
            ops=column("ops") if want("operation") else None,
            subjects=column("subjects") if want("subject") else None,
            objects=column("objects") if want("object") else None,
            amounts=column("amounts") if want("amount") else None,
            failcodes=column("failcodes") if want("failcode") else None,
            op_names=self._ops, entities=self._entities,
            hydrate=lambda i: self._event_at(partition, rows[i]))

    def _scan_rows(self, atoms: Iterable[Atom], spec: "ScanSpec",
                   ) -> tuple[list[tuple[ColumnarPartition, list[int]]], int]:
        """Surviving row indexes per partition, honoring order and limit.

        Returns ``(groups, examined)`` where each group's rows ascend and
        ``examined`` counts the rows the fused loop actually walked — the
        early-termination paths make it smaller than the clamped spans.
        With a pushed :class:`~repro.storage.backend.ScanOrder` limit the
        union of the groups is exactly the global first/last-k survivor
        set under the ``(ts, id)`` comparator.
        """
        atoms = list(atoms)
        binding_codes = self._binding_codes(spec.bindings)
        if spec.unsatisfiable or (binding_codes is not None
                                  and binding_codes.empty):
            return [], 0
        # Lower the bounds onto the window machinery: _pruned tests the
        # tightened window against each partition's ts zone map, and
        # row_range binary-searches the sorted ts column so the fused
        # loop only walks the clamped row span.
        window = spec.clamped()
        plan = self._scan_plan(atoms, binding_codes)
        if plan.empty:
            return [], 0
        order, limit = spec.order, spec.effective_limit
        if order is not None and limit is not None:
            return self._scan_rows_ordered(plan, atoms, window,
                                           spec.agentids, order.descending,
                                           limit)
        groups: list[tuple[ColumnarPartition, list[int]]] = []
        fetched = 0
        remaining = limit
        for partition, lo, hi in self._scan_spans(plan, atoms, window,
                                                  spec.agentids):
            # Ascending row index == ascending (ts, id): batch consumers
            # (the vectorized executor's merge shortcut) rely on it.
            partition._ensure_sorted()
            fetched += hi - lo
            rows = plan.row_filter(lo, hi, partition.ids, partition.ts,
                                   partition.ops, partition.etypes,
                                   partition.subjects, partition.objects,
                                   partition.amounts, partition.failcodes)
            if not rows:
                continue
            if remaining is not None:
                # Plain-limit early stop: the first `limit` survivors in
                # partition-walk order, identical to the old collect-
                # then-truncate prefix, without scanning past them.
                if len(rows) >= remaining:
                    groups.append((partition, rows[:remaining]))
                    remaining = 0
                    break
                remaining -= len(rows)
            groups.append((partition, rows))
        return groups, fetched

    def _scan_rows_ordered(self, plan: _ScanPlan, atoms: list[Atom],
                           window: Window | None,
                           agentids: set[int] | None, descending: bool,
                           k: int,
                           ) -> tuple[list[tuple[ColumnarPartition,
                                                 list[int]]], int]:
        """Global first/last-k survivors with chunked early termination.

        Within a partition the sorted row order *is* the ``(ts, id)``
        comparator, so the fused filter runs chunk-at-a-time from the
        span's cheap end and stops as soon as the partition's own best k
        are decided (for descending that means walking past every row
        tied with the provisional k-th timestamp — an earlier row with
        the same ts has a smaller id and wins).  Per-partition winners
        then merge into the global top k; each partition's candidate set
        provably contains all of its rows that can appear there.
        """
        per_partition: list[tuple[ColumnarPartition, list[int]]] = []
        examined = 0
        for partition, lo, hi in self._scan_spans(plan, atoms, window,
                                                  agentids):
            partition._ensure_sorted()
            if descending:
                rows, walked = self._last_rows(partition, plan, lo, hi, k)
            else:
                rows, walked = self._first_rows(partition, plan, lo, hi, k)
            examined += walked
            if rows:
                per_partition.append((partition, rows))
        pairs: list[tuple[float, int, ColumnarPartition, int]] = []
        for partition, rows in per_partition:
            ts_col, ids_col = partition.ts, partition.ids
            if descending:
                pairs.extend((-ts_col[row], ids_col[row], partition, row)
                             for row in rows)
            else:
                pairs.extend((ts_col[row], ids_col[row], partition, row)
                             for row in rows)
        # Event ids are unique, so the (ts, id) prefix decides every
        # comparison before a partition object could be compared.
        best = heapq.nsmallest(k, pairs)
        grouped: dict[ColumnarPartition, list[int]] = {}
        for _ts, _eid, partition, row in best:
            grouped.setdefault(partition, []).append(row)
        return ([(partition, sorted(rows))
                 for partition, rows in grouped.items()], examined)

    def _first_rows(self, partition: ColumnarPartition, plan: _ScanPlan,
                    lo: int, hi: int, k: int) -> tuple[list[int], int]:
        """First k survivors of a span in row (= ``(ts, id)``) order."""
        from repro.storage.backend import ORDERED_CHUNK
        collected: list[int] = []
        pos = lo
        examined = 0
        while pos < hi and len(collected) < k:
            nxt = min(hi, pos + ORDERED_CHUNK)
            collected.extend(plan.row_filter(
                pos, nxt, partition.ids, partition.ts, partition.ops,
                partition.etypes, partition.subjects, partition.objects,
                partition.amounts, partition.failcodes))
            examined += nxt - pos
            pos = nxt
        return collected[:k], examined

    def _last_rows(self, partition: ColumnarPartition, plan: _ScanPlan,
                   lo: int, hi: int, k: int) -> tuple[list[int], int]:
        """Best k survivors under ``(-ts, id)``, walking from the tail."""
        from repro.storage.backend import ORDERED_CHUNK
        ts_col, ids_col = partition.ts, partition.ids
        key = lambda row: (-ts_col[row], ids_col[row])  # noqa: E731
        collected: list[int] = []
        pos = hi
        examined = 0
        while pos > lo:
            nxt = max(lo, pos - ORDERED_CHUNK)
            rows = plan.row_filter(
                nxt, pos, partition.ids, partition.ts, partition.ops,
                partition.etypes, partition.subjects, partition.objects,
                partition.amounts, partition.failcodes)
            if rows:
                collected = rows + collected
            examined += pos - nxt
            pos = nxt
            if len(collected) >= k and pos > lo:
                best = heapq.nsmallest(k, collected, key=key)
                # Stop only when no earlier row can still win: an earlier
                # row tied with the k-th best timestamp has a smaller id
                # and would displace it.
                if ts_col[pos - 1] < ts_col[best[-1]]:
                    return sorted(best), examined
        if len(collected) > k:
            collected = heapq.nsmallest(k, collected, key=key)
        return sorted(collected), examined

    def _scan_spans(self, plan: _ScanPlan, atoms: list[Atom],
                    window: Window | None, agentids: set[int] | None,
                    ) -> Iterator[tuple[ColumnarPartition, int, int]]:
        """The row spans the fused loop walks, after every pruning tier.

        One walk shared by ``_batch_select`` and ``access_path`` so the
        explain surface reports exactly the partitions and clamped spans
        the real scan would touch: agent tests, zone maps over the
        dictionary columns, zone-map range pruning for ordered ts/amount
        atoms, and the binary-searched window clamp.
        """
        range_atoms = [atom for atom in atoms
                       if atom.target == "event"
                       and atom.attribute in ("ts", "amount")]
        for partition in self._pruned(window, agentids):
            if plan.agent_tests and not all(test(partition.agentid)
                                            for test in plan.agent_tests):
                continue
            if self._zone_excluded(partition, plan):
                continue
            excluded = False
            for atom in range_atoms:
                lo_value, hi_value = (
                    (partition.min_ts, partition.max_ts)
                    if atom.attribute == "ts"
                    else (partition.min_amount, partition.max_amount))
                if _range_excludes(atom.op, atom.value, lo_value, hi_value):
                    excluded = True
                    break
            if excluded:
                continue
            lo, hi = partition.row_range(window)
            if lo >= hi:
                continue
            yield partition, lo, hi

    # ------------------------------------------------------------------
    # Estimation (counter-based analogue of stats.estimate_partition)
    # ------------------------------------------------------------------
    def _estimate_partition(self, partition: ColumnarPartition,
                            profile: PatternProfile,
                            window: Window | None,
                            binding_codes: "_BindingCodes | None" = None,
                            histograms: bool = True) -> int:
        total = len(partition)
        if total == 0:
            return 0
        windowed = window is not None and histograms
        if windowed:
            in_window = partition.count_range(window.start, window.end)
            if in_window == 0:
                return 0
            bounds = [in_window]
        else:
            in_window = 0
            bounds = [total]

        def dim(count_key: tuple, count: int,
                row_test_factory: "Callable[[], Callable[[int], bool]]",
                ) -> int:
            """One dimension's bound: exact count, or its histogram's
            in-window estimate when the scan is windowed.  The row test
            is only built when the (memoized) histogram is."""
            if not windowed or count == 0:
                return count
            histogram = partition.stats.histogram(
                count_key, total,
                lambda: self._dim_timestamps(partition,
                                             row_test_factory()))
            return histogram.estimate_range(window.start, window.end)

        if binding_codes is not None:
            # Binding code sets change per query step; scale their exact
            # counts uniformly (the shared stats helper) instead of
            # building throwaway histograms.
            if binding_codes.subjects is not None:
                bounds.append(_binding_bound(
                    _count_codes(partition.by_subject,
                                 binding_codes.subjects,
                                 binding_codes.compact),
                    in_window, total, windowed))
            if binding_codes.objects is not None:
                bounds.append(_binding_bound(
                    _count_codes(partition.by_object,
                                 binding_codes.objects,
                                 binding_codes.compact),
                    in_window, total, windowed))
        etype = (_ETYPE_CODE.get(profile.event_type)
                 if profile.event_type is not None else None)
        etypes, ops = partition.etypes, partition.ops
        subjects, objects = partition.subjects, partition.objects
        if etype is not None and profile.operations:
            op_codes = frozenset(
                self._op_code[op] for op in profile.operations
                if op in self._op_code)
            count = sum(partition.type_op.get((etype, op), 0)
                        for op in op_codes)
            bounds.append(dim(
                ("type+op", etype, op_codes), count,
                lambda: lambda i: (etypes[i] == etype
                                   and ops[i] in op_codes)))
        elif etype is not None:
            bounds.append(dim(("type", etype),
                              partition.by_type.get(etype, 0),
                              lambda: lambda i: etypes[i] == etype))
        elif profile.operations:
            op_codes = frozenset(
                self._op_code[op] for op in profile.operations
                if op in self._op_code)
            count = sum(partition.by_op.get(op, 0) for op in op_codes)
            bounds.append(dim(("op", op_codes), count,
                              lambda: lambda i: ops[i] in op_codes))
        if profile.subject_exact is not None:
            name = profile.subject_exact

            def _subject_exact_test() -> "Callable[[int], bool]":
                codes = self._constraint_codes("exe_name", exact=name)
                return lambda i: subjects[i] in codes

            bounds.append(dim(("subject", name),
                              partition.subject_name.get(name, 0),
                              _subject_exact_test))
        elif profile.subject_like is not None:
            pattern = profile.subject_like
            regex = like_to_regex(pattern)
            count = sum(
                value for key, value in partition.subject_name.items()
                if isinstance(key, str) and regex.match(key))

            def _subject_like_test() -> "Callable[[int], bool]":
                codes = self._constraint_codes("exe_name", pattern=pattern)
                return lambda i: subjects[i] in codes

            bounds.append(dim(("subject~", pattern), count,
                              _subject_like_test))
        if profile.object_exact is not None and etype is not None:
            value = profile.object_exact

            def _object_exact_test() -> "Callable[[int], bool]":
                codes = self._constraint_codes("default_attribute",
                                               exact=value,
                                               etype_code=etype)
                return lambda i: objects[i] in codes

            bounds.append(dim(("object", etype, value),
                              partition.object_value.get((etype, value), 0),
                              _object_exact_test))
        elif profile.object_like is not None and etype is not None:
            pattern = profile.object_like
            regex = like_to_regex(pattern)
            count = sum(
                value for (value_etype, value_key), value
                in partition.object_value.items()
                if value_etype == etype and isinstance(value_key, str)
                and regex.match(value_key))

            def _object_like_test() -> "Callable[[int], bool]":
                codes = self._constraint_codes("default_attribute",
                                               pattern=pattern,
                                               etype_code=etype)
                return lambda i: objects[i] in codes

            bounds.append(dim(("object~", etype, pattern), count,
                              _object_like_test))
        bound = min(bounds)
        if window is not None and not histograms and bound:
            in_window = partition.count_range(window.start, window.end)
            bound = min(bound, max(1, round(bound * in_window / total))
                        if in_window else 0)
        return bound

    @staticmethod
    def _dim_timestamps(partition: ColumnarPartition,
                        row_test: "Callable[[int], bool]") -> list[float]:
        """Timestamps of the rows one estimation dimension covers."""
        ts = partition.ts
        return [ts[i] for i in range(len(ts)) if row_test(i)]

    def _constraint_codes(self, attribute: str, exact: object = None,
                          pattern: str | None = None,
                          etype_code: int | None = None) -> frozenset[int]:
        """Dictionary codes whose entity attribute matches a constraint.

        Memoized store-wide (the vocabulary is shared across partitions)
        and invalidated together with the atom cache when the vocabulary
        grows — estimation never pays the entity walk twice per value.
        """
        key = (attribute, exact, pattern, etype_code)
        cached = self._code_cache.get(key)
        if cached is not None:
            return cached
        regex = like_to_regex(pattern) if pattern is not None else None
        codes = []
        for code, entity in enumerate(self._entities):
            if (etype_code is not None
                    and _ETYPE_CODE[entity.entity_type] != etype_code):
                continue
            value = getattr(entity, attribute, None)
            if exact is not None:
                if value == exact:
                    codes.append(code)
            elif (regex is not None and isinstance(value, str)
                    and regex.match(value)):
                codes.append(code)
        result = frozenset(codes)
        self._code_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def span(self) -> Window | None:
        if self._count == 0:
            return None
        return Window(self._min_ts, self._max_ts + SPAN_EPSILON)

    @property
    def agentids(self) -> set[int]:
        return {agentid for agentid, _bucket in self._partitions}

    @property
    def entity_count(self) -> int:
        return len(self._interner)

    @property
    def dedup_ratio(self) -> float:
        return self._interner.dedup_ratio

    @property
    def partition_count(self) -> int:
        return len(self._partitions)

    @property
    def bucket_seconds(self) -> float:
        return self._bucket_seconds

    def __len__(self) -> int:
        return self._count
