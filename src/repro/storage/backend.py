"""The pluggable storage seam: the :class:`StorageBackend` protocol.

The paper's claim (Figure 1) is that interactive attack investigation
requires co-designing the storage substrate with the execution engine.  To
compare substrates fairly — and to let future PRs add sharded, async, or
multi-process stores — every engine component depends on this protocol
instead of a concrete store.  Three first-class implementations ship:

* ``row`` — :class:`repro.storage.store.EventStore`, the original
  row-oriented in-memory hypertable with per-partition posting indexes;
* ``columnar`` — :class:`repro.storage.columnar.ColumnarEventStore`,
  struct-of-arrays partitions with zone maps and batch predicate scans;
* ``sqlite`` — :class:`repro.baselines.sqlite_backend.SqliteEventStore`,
  an indexed SQLite table behind the same surface.

Backends register by name in a factory registry; sessions, the CLI, and
the benchmarks all select one through :func:`create_backend`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Iterable, Protocol, Sequence,
                    runtime_checkable)

from repro.errors import StorageError
from repro.model.entities import Entity, ProcessEntity
from repro.model.events import Event
from repro.model.timeutil import SECONDS_PER_DAY, Window
from repro.obs.clock import monotonic
from repro.obs.metrics import REGISTRY
from repro.storage.stats import PatternProfile

if TYPE_CHECKING:
    from repro.engine.filters import CompiledPredicate


@dataclass(frozen=True, slots=True)
class TemporalBounds:
    """Propagated timestamp bounds for one data query.

    The scheduler's temporal propagation (§2.3) derives, from the
    temporal relations and the timestamp ranges of already-executed
    partner patterns, an interval every useful candidate of a pattern
    must fall into.  Passing that interval *into* the backend lets the
    restriction prune during the scan — zone-map partition skipping and
    a binary-searched clamp of the sorted ts column (columnar), a costed
    time-index range scan (row store), or indexed ``BETWEEN``/comparison
    predicates (SQLite) — instead of post-filtering materialized
    survivors.

    Unlike a half-open :class:`~repro.model.timeutil.Window`, each side
    carries its own inclusivity: a strict ``before`` derives an
    *exclusive* bound (``ts > lo``) while the ``within d`` bound is
    *inclusive* (``ts <= hi``).  Keeping inclusivity first-class means
    the edges are exact; backends that prefer window arithmetic convert
    with :meth:`clamp_window`, which nudges by one ulp exactly where the
    half-open convention requires it.

    Bounds are a *hint*: backends may ignore them because the scheduler
    keeps an exact per-event post-filter as a correctness fallback.
    """

    lo: float = -math.inf
    hi: float = math.inf
    lo_strict: bool = False   # True: ts > lo, False: ts >= lo
    hi_strict: bool = False   # True: ts < hi, False: ts <= hi

    def __bool__(self) -> bool:
        return self.lo != -math.inf or self.hi != math.inf

    @property
    def unsatisfiable(self) -> bool:
        """True when no timestamp can satisfy the bounds."""
        return (self.lo > self.hi
                or (self.lo == self.hi
                    and (self.lo_strict or self.hi_strict)))

    def admits(self, ts: float) -> bool:
        """Exact per-event test (the post-filter fallback)."""
        if ts < self.lo or (ts == self.lo and self.lo_strict):
            return False
        if ts > self.hi or (ts == self.hi and self.hi_strict):
            return False
        return True

    def clamp_window(self, window: Window | None) -> Window | None:
        """Tightest half-open window covering ``bounds ∩ window``.

        This is the shared lowering used by backends whose scan machinery
        is window-shaped (partition pruning, sorted-column binary search):
        a strict lower bound becomes the next representable float (``ts >
        lo`` ⇔ ``ts >= nextafter(lo)``), an inclusive upper bound nudges
        the half-open end one ulp up.  Returns ``None`` when nothing
        constrains the scan, and a zero-length window when the
        combination is empty.
        """
        start = self.lo
        if self.lo_strict and start != -math.inf:
            start = math.nextafter(start, math.inf)
        end = self.hi
        if not self.hi_strict and end != math.inf:
            end = math.nextafter(end, math.inf)
        if window is not None:
            start = max(start, window.start)
            end = min(end, window.end)
        if start == -math.inf and end == math.inf:
            return None
        if start >= end:
            point = (start if math.isfinite(start)
                     else end if math.isfinite(end) else 0.0)
            return Window(point, point)
        return Window(start, end)


#: Binding sets at or below this size keep plain set probes; larger sets
#: are compacted into a :class:`Bitmap` (columnar batch loop) or answered
#: by posting-key intersection (row store).  Per-element probing a huge
#: set inside the hot loop pays a hash per row; the dense representation
#: pays one O(vocabulary) build instead.
BITMAP_THRESHOLD = 256

#: Vocabulary-to-set ratio above which a :class:`Bitmap` stops paying:
#: its O(vocabulary) bytearray dwarfs the binding set it encodes, so the
#: build (allocate + zero the whole vocabulary) costs more than the scan
#: saves.  Such sets get the :class:`BloomedSet` tier instead, whose
#: footprint scales with the *set*, not the vocabulary.
BLOOM_VOCAB_RATIO = 16

#: Fibonacci-hashing multiplier for the bloom probe (odd, so the map is a
#: permutation of the table's index space).
_BLOOM_MULTIPLIER = 0x9E3779B1


class BloomedSet:
    """Bloom pre-filter in front of an exact code set.

    The compaction tier for binding sets too large to bitmap against a
    huge vocabulary: a power-of-two flag table sized to the *set* (8
    slots per member) answers most probes with one multiply-and-index,
    and only the ~12% false-positive survivors pay the exact hash probe
    into the backing set.  Membership is exact (the set confirms), so
    ``select`` results never change — only the per-row probe cost and
    the build footprint do.
    """

    __slots__ = ("flags", "mask", "codes")

    def __init__(self, codes: Iterable[int]) -> None:
        self.codes = frozenset(codes)
        target = max(64, len(self.codes) * 8)
        bits = 1
        while bits < target:
            bits <<= 1
        self.mask = bits - 1
        flags = bytearray(bits)
        mask = self.mask
        for code in self.codes:
            flags[(code * _BLOOM_MULTIPLIER) & mask] = 1
        self.flags = flags

    def __contains__(self, code: int) -> bool:
        return (bool(self.flags[(code * _BLOOM_MULTIPLIER) & self.mask])
                and code in self.codes)

    def __len__(self) -> int:
        return len(self.codes)


class Bitmap:
    """Dense membership flags over dictionary codes.

    The compact representation large :class:`IdentityBindings` sets (and
    broad LIKE-derived code sets) collapse into: one flag per code of the
    backing vocabulary, so the columnar batch loop tests membership with
    a single index (``flags[code]``) instead of hashing into a large set.
    A byte per code trades 8x the space of a packed bitset for the
    fastest pure-Python probe.
    """

    __slots__ = ("flags", "size")

    def __init__(self, codes: Iterable[int], size: int) -> None:
        flags = bytearray(size)
        count = 0
        for code in codes:
            if not flags[code]:
                flags[code] = 1
                count += 1
        self.flags = flags
        self.size = count

    def __contains__(self, code: int) -> bool:
        return bool(self.flags[code])

    def __len__(self) -> int:
        return self.size


@dataclass(frozen=True, slots=True)
class IdentityBindings:
    """Propagated entity-identity restrictions for one data query.

    The scheduler's binding propagation (§2.3) restricts a pattern's
    subject/object to entity identities already seen by executed partner
    patterns.  Passing the sets *into* the backend lets the restriction
    prune during the scan — via identity posting lists (row store),
    dictionary-code membership in the fused batch loop (columnar store),
    or compiled ``IN (...)`` predicates (SQLite) — instead of
    post-filtering materialized survivors.

    ``None`` on a side means unrestricted; an *empty* set means the
    propagated variable has no admissible identity, so no event can match
    and backends short-circuit without touching a partition.

    ``compact`` permits backends to swap per-element set probes for the
    dense representations above :data:`BITMAP_THRESHOLD` — dictionary-code
    :class:`Bitmap` membership in the columnar batch loop, posting-key
    intersection in the row store.  The ablation benchmark's ``no_bitmap``
    configuration turns it off; results are identical either way.
    """

    subjects: frozenset[tuple] | None = None
    objects: frozenset[tuple] | None = None
    compact: bool = True

    def __bool__(self) -> bool:
        return self.subjects is not None or self.objects is not None

    @property
    def unsatisfiable(self) -> bool:
        """True when a bound side admits no identity at all."""
        return (self.subjects is not None and not self.subjects
                or self.objects is not None and not self.objects)

    def admits(self, event: Event) -> bool:
        """Exact per-event membership test (the post-filter fallback)."""
        if (self.subjects is not None
                and event.subject.identity not in self.subjects):
            return False
        if (self.objects is not None
                and event.object.identity not in self.objects):
            return False
        return True


@dataclass(frozen=True, slots=True)
class ScanOrder:
    """Pushed-down result ordering for one physical scan.

    The engine's canonical result order is ``(ts, id)`` ascending — the
    documented tiebreak every surface (executor sort, stream matchers,
    golden files) relies on.  A ``ScanOrder`` asks the backend to return
    survivors in that order (or its descending mirror) and, with
    ``limit``, to stop materializing past the first N: the top-k
    pushdown that turns "scan everything, sort, slice" into a bounded
    scan.

    Descending semantics mirror a stable descending sort on ``ts``: the
    comparator is ``(-ts, id)`` ascending, i.e. largest timestamps
    first and, among equal timestamps, *smallest* ids first — exactly
    what the executor's stable multi-pass sort produces.  Backends that
    cannot honor the order may ignore it (it is a hint like the rest of
    the spec); callers keep their own ordering/truncation as fallback,
    but a backend that *does* honor it must return the true first/last
    ``limit`` survivors under that comparator.
    """

    descending: bool = False
    limit: int | None = None

    def key(self) -> Callable[[Event], tuple]:
        """Per-event comparator key (ascending in the requested order)."""
        if self.descending:
            return lambda event: (-event.ts, event.id)
        return lambda event: (event.ts, event.id)


#: Span length at which the columnar ordered scan evaluates the fused
#: filter chunk-at-a-time so it can stop once ``limit`` survivors are
#: found, instead of filtering the entire span up front.
ORDERED_CHUNK = 2048


def take_ordered(events: Iterable[Event], order: ScanOrder,
                 limit: int) -> list[Event]:
    """True first/last-``limit`` survivors under the order's comparator.

    Shared by backends that collect unordered survivor streams (posting
    lists, SQL candidate sets): a bounded heap keeps memory at O(limit)
    and returns the winners sorted in the requested order.
    """
    if order.descending:
        # nlargest by (ts, -id) == nsmallest by (-ts, id): latest first,
        # ties broken toward the smallest id, matching a stable
        # descending sort on ts.
        return heapq.nsmallest(limit, events,
                               key=lambda e: (-e.ts, e.id))
    return heapq.nsmallest(limit, events, key=lambda e: (e.ts, e.id))


@dataclass(frozen=True, slots=True)
class ScanSpec:
    """Everything one physical scan is allowed to assume — in one value.

    The scan surface used to carry its reasoning as a positional tail
    (``window, agentids, bindings, bounds``) duplicated across every
    backend, the scheduler, the parallel executor, and the anomaly
    engine; each new pushdown meant a five-way signature change.  A
    ``ScanSpec`` is that reasoning as a first-class object:

    * ``window`` — the query's half-open time window (header clause or a
      parallel sub-query slice);
    * ``agentids`` — the spatial restriction (``None`` = all agents);
    * ``bindings`` — propagated identity restrictions (§2.3);
    * ``bounds`` — propagated per-side-inclusive timestamp bounds;
    * ``limit`` — optional cap on returned survivors (projection/limit
      pushdown for callers that only need the first N);
    * ``histograms`` — whether estimates may use the per-partition
      equi-depth timestamp histograms (off = uniform-time scaling, the
      ablation's ``no_histogram`` lever);
    * ``projection`` — the attribute columns the caller will actually
      consume (``operation``/``subject``/``object``/``amount``/
      ``failcode``/``agentid``; ``ts`` and ``id`` are always implied).
      ``None`` means "everything".  Purely advisory for Event-returning
      ``select``; the columnar ``select_batches`` gathers only these;
    * ``order`` — pushed-down ``(ts, id)`` result ordering with an
      optional top-k limit (:class:`ScanOrder`).  A backend honoring it
      returns the true first/last N survivors already sorted.

    Hints stay hints: a backend may ignore ``bindings``/``bounds``
    because the engine keeps exact post-filters as a correctness
    fallback, but ``select`` results must respect them exactly, and
    ``estimate`` must honor them consistently with ``candidates``.
    The two normalizations every backend needs are shared here:
    :attr:`unsatisfiable` (no event can match; short-circuit without
    touching a partition) and :meth:`clamped` (bounds folded into the
    half-open window machinery partitions prune with).
    """

    window: Window | None = None
    agentids: frozenset[int] | None = None
    bindings: IdentityBindings | None = None
    bounds: TemporalBounds | None = None
    limit: int | None = None
    histograms: bool = True
    projection: frozenset[str] | None = None
    order: ScanOrder | None = None

    @property
    def effective_limit(self) -> int | None:
        """The tightest survivor cap carried by the spec (either field)."""
        limits = [cap for cap in (self.limit,
                                  self.order.limit if self.order else None)
                  if cap is not None]
        return min(limits) if limits else None

    @property
    def unsatisfiable(self) -> bool:
        """True when no stored event can possibly satisfy the spec.

        Consistent with :meth:`clamped` by construction: the temporal
        side is unsatisfiable exactly when the clamped window is empty,
        which covers disjoint ``window``/``bounds`` combinations and the
        equal-bounds edge cases (an inclusive point bound stays
        satisfiable, either strict side makes it empty).
        """
        if self.agentids is not None and not self.agentids:
            return True
        if self.bindings is not None and self.bindings.unsatisfiable:
            return True
        if self.bounds is not None and self.bounds.unsatisfiable:
            return True
        clamped = self.clamped()
        if clamped is not None and clamped.start >= clamped.end:
            return True
        return False

    def clamped(self) -> Window | None:
        """``bounds ∩ window`` as one half-open window (shared lowering).

        Idempotent: re-clamping a spec whose window already carries the
        intersection — with or without the original bounds still attached
        — returns the same window, so the lowering can run at any layer
        without compounding (the contract suite's property test locks
        this in).
        """
        if self.bounds is not None and self.bounds:
            return self.bounds.clamp_window(self.window)
        return self.window

    def admits(self, event: Event) -> bool:
        """Exact per-event test of the carried hints (post-filter)."""
        if self.bounds is not None and not self.bounds.admits(event.ts):
            return False
        if self.bindings is not None and not self.bindings.admits(event):
            return False
        return True


#: The spec every hint-less call site means: scan it all.
FULL_SCAN = ScanSpec()


def resolve_spec(spec: ScanSpec | None) -> ScanSpec:
    """The one spec-defaulting normalization every backend shares."""
    return spec if spec is not None else FULL_SCAN


class ColumnBatch:
    """One partition's scan survivors as parallel column slices.

    The vectorized exchange format: instead of materializing an
    :class:`~repro.model.events.Event` per survivor, a batch backend
    hands back struct-of-arrays slices — one C-level :mod:`array` slice
    per column when the survivors are contiguous, gathered lists
    otherwise — plus the dictionaries needed to decode
    them.  ``ts`` and ``ids`` are always present; the attribute columns
    are ``None`` when the scan's :attr:`ScanSpec.projection` excluded
    them.  ``ops``/``subjects``/``objects`` hold dictionary *codes*;
    :meth:`operations`, :meth:`subject_entities` and
    :meth:`object_entities` decode them in one comprehension.

    ``hydrate(i)`` materializes row ``i`` as a full interned ``Event`` —
    the lazy escape hatch for consumers that genuinely need one (e.g. a
    join that binds entities the projection did not cover).
    """

    __slots__ = ("agentid", "ids", "ts", "ops", "subjects", "objects",
                 "amounts", "failcodes", "op_names", "entities", "hydrate")

    def __init__(self, agentid: int, ids: Sequence[int],
                 ts: Sequence[float], *,
                 ops: Sequence[int] | None = None,
                 subjects: Sequence[int] | None = None,
                 objects: Sequence[int] | None = None,
                 amounts: Sequence[int] | None = None,
                 failcodes: Sequence[int] | None = None,
                 op_names: Sequence[str] | dict[int, str] = (),
                 entities: Sequence[Entity] | dict[int, Entity] = (),
                 hydrate: Callable[[int], Event] | None = None) -> None:
        self.agentid = agentid
        self.ids = ids
        self.ts = ts
        self.ops = ops
        self.subjects = subjects
        self.objects = objects
        self.amounts = amounts
        self.failcodes = failcodes
        self.op_names = op_names
        self.entities = entities
        self.hydrate = hydrate

    def __len__(self) -> int:
        return len(self.ids)

    def operations(self) -> list[str]:
        names = self.op_names
        return [names[code] for code in self.ops]

    def subject_entities(self) -> list[Entity]:
        entities = self.entities
        return [entities[code] for code in self.subjects]

    def object_entities(self) -> list[Entity]:
        entities = self.entities
        return [entities[code] for code in self.objects]

    def events(self) -> list[Event]:
        """Materialize every row (the non-lazy fallback)."""
        hydrate = self.hydrate
        return [hydrate(i) for i in range(len(self.ids))]


@dataclass(frozen=True, slots=True)
class AccessPathInfo:
    """One backend's chosen physical access path for a scan.

    ``name`` is the dominant per-partition choice (the one covering the
    most costed rows), ``rows`` the total costed candidate rows across
    partitions, and ``considered`` every enumerated ``(path, rows)``
    alternative — the raw material of ``explain()`` output.
    """

    name: str
    rows: int
    considered: tuple[tuple[str, int], ...] = ()

    def describe(self) -> str:
        return f"{self.name} (~{self.rows} rows)"


@runtime_checkable
class StorageBackend(Protocol):
    """What the engine needs from a storage substrate.

    The surface is the four operations of the paper's storage tier — the
    agent write path (``record``/``ingest``), the index-backed candidate
    fetch, cardinality estimation for pruning-power scheduling, and full
    scans — plus ``select``, the fused fetch-and-filter entry point that
    lets a backend evaluate a pattern's residual predicate its own way
    (per event, or over column batches), and ``access_path``, which
    reports the physical path the backend would choose without fetching
    (the ``explain()`` surface).

    ``candidates``/``select``/``estimate`` take the whole physical-scan
    contract as a single :class:`ScanSpec`.  Backends *may* ignore the
    binding/bounds hints inside it because the scheduler keeps exact
    post-filters as a correctness fallback; ``select`` results must
    respect the hints exactly (the shared :func:`select_via_candidates`
    already guarantees this for row-at-a-time backends), and
    ``estimate`` must honor them consistently with ``candidates`` — the
    scheduler re-orders patterns on these estimates, and a divergence
    would make ordering decisions about scans that return something
    else.
    """

    backend_name: str

    # Write path -------------------------------------------------------
    def record(self, ts: float, agentid: int, operation: str,
               subject: ProcessEntity, obj: Entity, amount: int = 0,
               failcode: int = 0) -> Event: ...

    def ingest(self, events: Iterable[Event]) -> int: ...

    # Read path --------------------------------------------------------
    def scan(self, window: Window | None = None,
             agentids: set[int] | None = None) -> list[Event]: ...

    def candidates(self, profile: PatternProfile,
                   spec: ScanSpec | None = None) -> list[Event]: ...

    def select(self, profile: PatternProfile,
               predicate: "CompiledPredicate",
               spec: ScanSpec | None = None) -> tuple[list[Event], int]: ...

    def estimate(self, profile: PatternProfile,
                 spec: ScanSpec | None = None) -> int: ...

    def access_path(self, profile: PatternProfile,
                    spec: ScanSpec | None = None) -> AccessPathInfo: ...

    # Introspection ----------------------------------------------------
    @property
    def span(self) -> Window | None: ...

    @property
    def agentids(self) -> set[int]: ...

    @property
    def entity_count(self) -> int: ...

    @property
    def dedup_ratio(self) -> float: ...

    @property
    def partition_count(self) -> int: ...

    @property
    def bucket_seconds(self) -> float: ...

    def __len__(self) -> int: ...


def select_via_candidates(backend: StorageBackend, profile: PatternProfile,
                          predicate: "CompiledPredicate",
                          spec: ScanSpec | None = None,
                          ) -> tuple[list[Event], int]:
    """Default ``select``: candidate fetch + fused per-event residual.

    Row-at-a-time backends share this implementation; batch backends
    override ``select`` entirely.  Returns ``(survivors, fetched)`` where
    ``fetched`` is the candidate-list size (for execution reports).  An
    unsatisfiable spec short-circuits, and the spec's binding/bounds
    hints are enforced exactly on the survivors, whatever the backend's
    ``candidates`` chose to do with them.

    The survivor stream is lazy: with a plain ``limit`` the filter loop
    stops the moment it has enough (instead of building the full
    survivor list and slicing), and with a pushed :class:`ScanOrder`
    a bounded heap keeps only the best ``limit`` seen so far — O(limit)
    memory however large the candidate set.
    """
    if spec is None:
        spec = FULL_SCAN
    if spec.unsatisfiable:
        return [], 0
    started = monotonic()
    fetched = backend.candidates(profile, spec)
    test = predicate.event_predicate
    bounds, bindings = spec.bounds, spec.bindings
    if bounds is not None and bounds:
        in_bounds = bounds.admits
        if bindings is not None and bindings:
            admits = bindings.admits
            survivors = (event for event in fetched
                         if in_bounds(event.ts) and admits(event)
                         and test(event))
        else:
            survivors = (event for event in fetched
                         if in_bounds(event.ts) and test(event))
    elif bindings is not None and bindings:
        admits = bindings.admits
        survivors = (event for event in fetched
                     if admits(event) and test(event))
    else:
        survivors = (event for event in fetched if test(event))
    order, limit = spec.order, spec.effective_limit
    if order is not None:
        if limit is not None:
            selected = take_ordered(survivors, order, limit)
        else:
            selected = sorted(survivors, key=order.key())
    elif limit is not None:
        selected = []
        for event in survivors:
            selected.append(event)
            if len(selected) >= limit:
                break
    else:
        selected = list(survivors)
    record_scan(len(fetched), len(selected), monotonic() - started)
    return selected, len(fetched)


# Scan telemetry handles, created once at import.  Every physical scan —
# this shared row-at-a-time path *and* the columnar batch overrides —
# reports through :func:`record_scan`, so the counters mean the same
# thing on every backend; under sharding the inner backend runs in the
# worker process and these land in the worker's registry, which is what
# makes coordinator-merged totals equal the sum of worker snapshots.
_SCAN_COUNT = REGISTRY.counter("storage.scan.count")
_SCAN_FETCHED = REGISTRY.counter("storage.scan.fetched")
_SCAN_MATCHED = REGISTRY.counter("storage.scan.matched")
_SCAN_SECONDS = REGISTRY.histogram("storage.scan.seconds")


def record_scan(fetched: int, matched: int, elapsed: float) -> None:
    """Record one physical scan (candidate rows, survivors, duration)."""
    _SCAN_COUNT.inc()
    _SCAN_FETCHED.inc(fetched)
    _SCAN_MATCHED.inc(matched)
    _SCAN_SECONDS.observe(elapsed)


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------

BackendFactory = Callable[[float], StorageBackend]

#: The backends that ship with the repo.  A static tuple so surfaces that
#: only need the names (CLI ``--backend`` choices) avoid importing the
#: implementations.
BUILTIN_BACKENDS = ("row", "columnar", "sqlite")

#: The sharded scatter-gather family (each hosts a builtin per worker).
SHARDED_BACKENDS = ("sharded", "sharded(row)", "sharded(columnar)",
                    "sharded(sqlite)")

_FACTORIES: dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register a backend factory (``factory(bucket_seconds) -> backend``)."""
    _FACTORIES[name] = factory


def _ensure_builtins() -> None:
    # Imported lazily: the concrete stores import engine/baseline modules
    # that must not load just because the protocol module did.
    if "row" not in _FACTORIES:
        from repro.storage.store import EventStore
        register_backend("row", EventStore)
    if "columnar" not in _FACTORIES:
        from repro.storage.columnar import ColumnarEventStore
        register_backend("columnar", ColumnarEventStore)
    if "sqlite" not in _FACTORIES:
        from repro.baselines.sqlite_backend import SqliteEventStore
        register_backend("sqlite", SqliteEventStore)
    if "sharded" not in _FACTORIES:
        from repro.storage.sharded import register_sharded
        register_sharded(register_backend)


def available_backends() -> tuple[str, ...]:
    """Registered backend names (builtin ones always included)."""
    _ensure_builtins()
    return tuple(sorted(_FACTORIES))


def create_backend(name: str,
                   bucket_seconds: float = SECONDS_PER_DAY) -> StorageBackend:
    """Instantiate a backend by registry name."""
    _ensure_builtins()
    factory = _FACTORIES.get(name)
    if factory is None and name.startswith("sharded("):
        # Parameterized spellings ("sharded(columnar,4)") construct
        # directly; the fixed-arity family is registered above.
        from repro.storage.sharded import ShardedStore, parse_backend_name
        inner, shards = parse_backend_name(name)
        return ShardedStore(shards=shards, backend=inner,
                            bucket_seconds=bucket_seconds)
    if factory is None:
        raise StorageError(
            f"unknown storage backend {name!r} "
            f"(available: {', '.join(sorted(_FACTORIES))})")
    return factory(bucket_seconds)
