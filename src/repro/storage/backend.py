"""The pluggable storage seam: the :class:`StorageBackend` protocol.

The paper's claim (Figure 1) is that interactive attack investigation
requires co-designing the storage substrate with the execution engine.  To
compare substrates fairly — and to let future PRs add sharded, async, or
multi-process stores — every engine component depends on this protocol
instead of a concrete store.  Three first-class implementations ship:

* ``row`` — :class:`repro.storage.store.EventStore`, the original
  row-oriented in-memory hypertable with per-partition posting indexes;
* ``columnar`` — :class:`repro.storage.columnar.ColumnarEventStore`,
  struct-of-arrays partitions with zone maps and batch predicate scans;
* ``sqlite`` — :class:`repro.baselines.sqlite_backend.SqliteEventStore`,
  an indexed SQLite table behind the same surface.

Backends register by name in a factory registry; sessions, the CLI, and
the benchmarks all select one through :func:`create_backend`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Iterable, Protocol,
                    runtime_checkable)

from repro.errors import StorageError
from repro.model.entities import Entity, ProcessEntity
from repro.model.events import Event
from repro.model.timeutil import SECONDS_PER_DAY, Window
from repro.storage.stats import PatternProfile

if TYPE_CHECKING:
    from repro.engine.filters import CompiledPredicate


@dataclass(frozen=True, slots=True)
class IdentityBindings:
    """Propagated entity-identity restrictions for one data query.

    The scheduler's binding propagation (§2.3) restricts a pattern's
    subject/object to entity identities already seen by executed partner
    patterns.  Passing the sets *into* the backend lets the restriction
    prune during the scan — via identity posting lists (row store),
    dictionary-code membership in the fused batch loop (columnar store),
    or compiled ``IN (...)`` predicates (SQLite) — instead of
    post-filtering materialized survivors.

    ``None`` on a side means unrestricted; an *empty* set means the
    propagated variable has no admissible identity, so no event can match
    and backends short-circuit without touching a partition.
    """

    subjects: frozenset[tuple] | None = None
    objects: frozenset[tuple] | None = None

    def __bool__(self) -> bool:
        return self.subjects is not None or self.objects is not None

    @property
    def unsatisfiable(self) -> bool:
        """True when a bound side admits no identity at all."""
        return (self.subjects is not None and not self.subjects
                or self.objects is not None and not self.objects)

    def admits(self, event: Event) -> bool:
        """Exact per-event membership test (the post-filter fallback)."""
        if (self.subjects is not None
                and event.subject.identity not in self.subjects):
            return False
        if (self.objects is not None
                and event.object.identity not in self.objects):
            return False
        return True


@runtime_checkable
class StorageBackend(Protocol):
    """What the engine needs from a storage substrate.

    The surface is the four operations of the paper's storage tier — the
    agent write path (``record``/``ingest``), the index-backed candidate
    fetch, cardinality estimation for pruning-power scheduling, and full
    scans — plus ``select``, the fused fetch-and-filter entry point that
    lets a backend evaluate a pattern's residual predicate its own way
    (per event, or over column batches).

    ``candidates``/``select``/``estimate`` accept an optional
    :class:`IdentityBindings` hint.  Backends *may* use it to prune during
    the scan; they are allowed to ignore it because the scheduler keeps an
    exact post-filter as a correctness fallback.  ``select`` results must
    respect the bindings exactly (the shared
    :func:`select_via_candidates` already guarantees this for
    row-at-a-time backends).
    """

    backend_name: str

    # Write path -------------------------------------------------------
    def record(self, ts: float, agentid: int, operation: str,
               subject: ProcessEntity, obj: Entity, amount: int = 0,
               failcode: int = 0) -> Event: ...

    def ingest(self, events: Iterable[Event]) -> int: ...

    # Read path --------------------------------------------------------
    def scan(self, window: Window | None = None,
             agentids: set[int] | None = None) -> list[Event]: ...

    def candidates(self, profile: PatternProfile,
                   window: Window | None = None,
                   agentids: set[int] | None = None,
                   bindings: IdentityBindings | None = None) -> list[Event]: ...

    def select(self, profile: PatternProfile,
               predicate: "CompiledPredicate",
               window: Window | None = None,
               agentids: set[int] | None = None,
               bindings: IdentityBindings | None = None,
               ) -> tuple[list[Event], int]: ...

    def estimate(self, profile: PatternProfile,
                 window: Window | None = None,
                 agentids: set[int] | None = None,
                 bindings: IdentityBindings | None = None) -> int: ...

    # Introspection ----------------------------------------------------
    @property
    def span(self) -> Window | None: ...

    @property
    def agentids(self) -> set[int]: ...

    @property
    def entity_count(self) -> int: ...

    @property
    def dedup_ratio(self) -> float: ...

    @property
    def partition_count(self) -> int: ...

    @property
    def bucket_seconds(self) -> float: ...

    def __len__(self) -> int: ...


def select_via_candidates(backend: StorageBackend, profile: PatternProfile,
                          predicate: "CompiledPredicate",
                          window: Window | None = None,
                          agentids: set[int] | None = None,
                          bindings: IdentityBindings | None = None,
                          ) -> tuple[list[Event], int]:
    """Default ``select``: candidate fetch + fused per-event residual.

    Row-at-a-time backends share this implementation; batch backends
    override ``select`` entirely.  Returns ``(survivors, fetched)`` where
    ``fetched`` is the candidate-list size (for execution reports).
    Identity bindings short-circuit when unsatisfiable and are enforced
    exactly on the survivors, whatever the backend's ``candidates`` chose
    to do with the hint.
    """
    if bindings is not None and bindings.unsatisfiable:
        return [], 0
    fetched = backend.candidates(profile, window, agentids, bindings)
    test = predicate.event_predicate
    if bindings is None or not bindings:
        return [event for event in fetched if test(event)], len(fetched)
    admits = bindings.admits
    return ([event for event in fetched if admits(event) and test(event)],
            len(fetched))


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------

BackendFactory = Callable[[float], StorageBackend]

#: The backends that ship with the repo.  A static tuple so surfaces that
#: only need the names (CLI ``--backend`` choices) avoid importing the
#: implementations.
BUILTIN_BACKENDS = ("row", "columnar", "sqlite")

_FACTORIES: dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register a backend factory (``factory(bucket_seconds) -> backend``)."""
    _FACTORIES[name] = factory


def _ensure_builtins() -> None:
    # Imported lazily: the concrete stores import engine/baseline modules
    # that must not load just because the protocol module did.
    if "row" not in _FACTORIES:
        from repro.storage.store import EventStore
        register_backend("row", EventStore)
    if "columnar" not in _FACTORIES:
        from repro.storage.columnar import ColumnarEventStore
        register_backend("columnar", ColumnarEventStore)
    if "sqlite" not in _FACTORIES:
        from repro.baselines.sqlite_backend import SqliteEventStore
        register_backend("sqlite", SqliteEventStore)


def available_backends() -> tuple[str, ...]:
    """Registered backend names (builtin ones always included)."""
    _ensure_builtins()
    return tuple(sorted(_FACTORIES))


def create_backend(name: str,
                   bucket_seconds: float = SECONDS_PER_DAY) -> StorageBackend:
    """Instantiate a backend by registry name."""
    _ensure_builtins()
    factory = _FACTORIES.get(name)
    if factory is None:
        raise StorageError(
            f"unknown storage backend {name!r} "
            f"(available: {', '.join(sorted(_FACTORIES))})")
    return factory(bucket_seconds)
