"""The pluggable storage seam: the :class:`StorageBackend` protocol.

The paper's claim (Figure 1) is that interactive attack investigation
requires co-designing the storage substrate with the execution engine.  To
compare substrates fairly — and to let future PRs add sharded, async, or
multi-process stores — every engine component depends on this protocol
instead of a concrete store.  Three first-class implementations ship:

* ``row`` — :class:`repro.storage.store.EventStore`, the original
  row-oriented in-memory hypertable with per-partition posting indexes;
* ``columnar`` — :class:`repro.storage.columnar.ColumnarEventStore`,
  struct-of-arrays partitions with zone maps and batch predicate scans;
* ``sqlite`` — :class:`repro.baselines.sqlite_backend.SqliteEventStore`,
  an indexed SQLite table behind the same surface.

Backends register by name in a factory registry; sessions, the CLI, and
the benchmarks all select one through :func:`create_backend`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Iterable, Protocol,
                    runtime_checkable)

from repro.errors import StorageError
from repro.model.entities import Entity, ProcessEntity
from repro.model.events import Event
from repro.model.timeutil import SECONDS_PER_DAY, Window
from repro.storage.stats import PatternProfile

if TYPE_CHECKING:
    from repro.engine.filters import CompiledPredicate


@dataclass(frozen=True, slots=True)
class TemporalBounds:
    """Propagated timestamp bounds for one data query.

    The scheduler's temporal propagation (§2.3) derives, from the
    temporal relations and the timestamp ranges of already-executed
    partner patterns, an interval every useful candidate of a pattern
    must fall into.  Passing that interval *into* the backend lets the
    restriction prune during the scan — zone-map partition skipping and
    a binary-searched clamp of the sorted ts column (columnar), a costed
    time-index range scan (row store), or indexed ``BETWEEN``/comparison
    predicates (SQLite) — instead of post-filtering materialized
    survivors.

    Unlike a half-open :class:`~repro.model.timeutil.Window`, each side
    carries its own inclusivity: a strict ``before`` derives an
    *exclusive* bound (``ts > lo``) while the ``within d`` bound is
    *inclusive* (``ts <= hi``).  Keeping inclusivity first-class means
    the edges are exact; backends that prefer window arithmetic convert
    with :meth:`clamp_window`, which nudges by one ulp exactly where the
    half-open convention requires it.

    Bounds are a *hint*: backends may ignore them because the scheduler
    keeps an exact per-event post-filter as a correctness fallback.
    """

    lo: float = -math.inf
    hi: float = math.inf
    lo_strict: bool = False   # True: ts > lo, False: ts >= lo
    hi_strict: bool = False   # True: ts < hi, False: ts <= hi

    def __bool__(self) -> bool:
        return self.lo != -math.inf or self.hi != math.inf

    @property
    def unsatisfiable(self) -> bool:
        """True when no timestamp can satisfy the bounds."""
        return (self.lo > self.hi
                or (self.lo == self.hi
                    and (self.lo_strict or self.hi_strict)))

    def admits(self, ts: float) -> bool:
        """Exact per-event test (the post-filter fallback)."""
        if ts < self.lo or (ts == self.lo and self.lo_strict):
            return False
        if ts > self.hi or (ts == self.hi and self.hi_strict):
            return False
        return True

    def clamp_window(self, window: Window | None) -> Window | None:
        """Tightest half-open window covering ``bounds ∩ window``.

        This is the shared lowering used by backends whose scan machinery
        is window-shaped (partition pruning, sorted-column binary search):
        a strict lower bound becomes the next representable float (``ts >
        lo`` ⇔ ``ts >= nextafter(lo)``), an inclusive upper bound nudges
        the half-open end one ulp up.  Returns ``None`` when nothing
        constrains the scan, and a zero-length window when the
        combination is empty.
        """
        start = self.lo
        if self.lo_strict and start != -math.inf:
            start = math.nextafter(start, math.inf)
        end = self.hi
        if not self.hi_strict and end != math.inf:
            end = math.nextafter(end, math.inf)
        if window is not None:
            start = max(start, window.start)
            end = min(end, window.end)
        if start == -math.inf and end == math.inf:
            return None
        if start >= end:
            point = (start if math.isfinite(start)
                     else end if math.isfinite(end) else 0.0)
            return Window(point, point)
        return Window(start, end)


#: Binding sets at or below this size keep plain set probes; larger sets
#: are compacted into a :class:`Bitmap` (columnar batch loop) or answered
#: by posting-key intersection (row store).  Per-element probing a huge
#: set inside the hot loop pays a hash per row; the dense representation
#: pays one O(vocabulary) build instead.
BITMAP_THRESHOLD = 256


class Bitmap:
    """Dense membership flags over dictionary codes.

    The compact representation large :class:`IdentityBindings` sets (and
    broad LIKE-derived code sets) collapse into: one flag per code of the
    backing vocabulary, so the columnar batch loop tests membership with
    a single index (``flags[code]``) instead of hashing into a large set.
    A byte per code trades 8x the space of a packed bitset for the
    fastest pure-Python probe.
    """

    __slots__ = ("flags", "size")

    def __init__(self, codes: Iterable[int], size: int) -> None:
        flags = bytearray(size)
        count = 0
        for code in codes:
            if not flags[code]:
                flags[code] = 1
                count += 1
        self.flags = flags
        self.size = count

    def __contains__(self, code: int) -> bool:
        return bool(self.flags[code])

    def __len__(self) -> int:
        return self.size


@dataclass(frozen=True, slots=True)
class IdentityBindings:
    """Propagated entity-identity restrictions for one data query.

    The scheduler's binding propagation (§2.3) restricts a pattern's
    subject/object to entity identities already seen by executed partner
    patterns.  Passing the sets *into* the backend lets the restriction
    prune during the scan — via identity posting lists (row store),
    dictionary-code membership in the fused batch loop (columnar store),
    or compiled ``IN (...)`` predicates (SQLite) — instead of
    post-filtering materialized survivors.

    ``None`` on a side means unrestricted; an *empty* set means the
    propagated variable has no admissible identity, so no event can match
    and backends short-circuit without touching a partition.

    ``compact`` permits backends to swap per-element set probes for the
    dense representations above :data:`BITMAP_THRESHOLD` — dictionary-code
    :class:`Bitmap` membership in the columnar batch loop, posting-key
    intersection in the row store.  The ablation benchmark's ``no_bitmap``
    configuration turns it off; results are identical either way.
    """

    subjects: frozenset[tuple] | None = None
    objects: frozenset[tuple] | None = None
    compact: bool = True

    def __bool__(self) -> bool:
        return self.subjects is not None or self.objects is not None

    @property
    def unsatisfiable(self) -> bool:
        """True when a bound side admits no identity at all."""
        return (self.subjects is not None and not self.subjects
                or self.objects is not None and not self.objects)

    def admits(self, event: Event) -> bool:
        """Exact per-event membership test (the post-filter fallback)."""
        if (self.subjects is not None
                and event.subject.identity not in self.subjects):
            return False
        if (self.objects is not None
                and event.object.identity not in self.objects):
            return False
        return True


@runtime_checkable
class StorageBackend(Protocol):
    """What the engine needs from a storage substrate.

    The surface is the four operations of the paper's storage tier — the
    agent write path (``record``/``ingest``), the index-backed candidate
    fetch, cardinality estimation for pruning-power scheduling, and full
    scans — plus ``select``, the fused fetch-and-filter entry point that
    lets a backend evaluate a pattern's residual predicate its own way
    (per event, or over column batches).

    ``candidates``/``select``/``estimate`` accept optional
    :class:`IdentityBindings` and :class:`TemporalBounds` hints.  Backends
    *may* use either to prune during the scan; they are allowed to ignore
    them because the scheduler keeps exact post-filters as a correctness
    fallback.  ``select`` results must respect both hints exactly (the
    shared :func:`select_via_candidates` already guarantees this for
    row-at-a-time backends).  ``estimate`` must honor the hints
    consistently with ``candidates`` — the scheduler re-orders patterns
    on these estimates, and a divergence would make ordering decisions
    about scans that return something else.
    """

    backend_name: str

    # Write path -------------------------------------------------------
    def record(self, ts: float, agentid: int, operation: str,
               subject: ProcessEntity, obj: Entity, amount: int = 0,
               failcode: int = 0) -> Event: ...

    def ingest(self, events: Iterable[Event]) -> int: ...

    # Read path --------------------------------------------------------
    def scan(self, window: Window | None = None,
             agentids: set[int] | None = None) -> list[Event]: ...

    def candidates(self, profile: PatternProfile,
                   window: Window | None = None,
                   agentids: set[int] | None = None,
                   bindings: IdentityBindings | None = None,
                   bounds: TemporalBounds | None = None) -> list[Event]: ...

    def select(self, profile: PatternProfile,
               predicate: "CompiledPredicate",
               window: Window | None = None,
               agentids: set[int] | None = None,
               bindings: IdentityBindings | None = None,
               bounds: TemporalBounds | None = None,
               ) -> tuple[list[Event], int]: ...

    def estimate(self, profile: PatternProfile,
                 window: Window | None = None,
                 agentids: set[int] | None = None,
                 bindings: IdentityBindings | None = None,
                 bounds: TemporalBounds | None = None) -> int: ...

    # Introspection ----------------------------------------------------
    @property
    def span(self) -> Window | None: ...

    @property
    def agentids(self) -> set[int]: ...

    @property
    def entity_count(self) -> int: ...

    @property
    def dedup_ratio(self) -> float: ...

    @property
    def partition_count(self) -> int: ...

    @property
    def bucket_seconds(self) -> float: ...

    def __len__(self) -> int: ...


def select_via_candidates(backend: StorageBackend, profile: PatternProfile,
                          predicate: "CompiledPredicate",
                          window: Window | None = None,
                          agentids: set[int] | None = None,
                          bindings: IdentityBindings | None = None,
                          bounds: TemporalBounds | None = None,
                          ) -> tuple[list[Event], int]:
    """Default ``select``: candidate fetch + fused per-event residual.

    Row-at-a-time backends share this implementation; batch backends
    override ``select`` entirely.  Returns ``(survivors, fetched)`` where
    ``fetched`` is the candidate-list size (for execution reports).
    Identity bindings and temporal bounds short-circuit when unsatisfiable
    and are enforced exactly on the survivors, whatever the backend's
    ``candidates`` chose to do with the hints.
    """
    if bindings is not None and bindings.unsatisfiable:
        return [], 0
    if bounds is not None and bounds.unsatisfiable:
        return [], 0
    fetched = backend.candidates(profile, window, agentids, bindings, bounds)
    test = predicate.event_predicate
    survivors = fetched
    if bounds is not None and bounds:
        in_bounds = bounds.admits
        survivors = [event for event in survivors if in_bounds(event.ts)]
    if bindings is None or not bindings:
        return ([event for event in survivors if test(event)], len(fetched))
    admits = bindings.admits
    return ([event for event in survivors if admits(event) and test(event)],
            len(fetched))


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------

BackendFactory = Callable[[float], StorageBackend]

#: The backends that ship with the repo.  A static tuple so surfaces that
#: only need the names (CLI ``--backend`` choices) avoid importing the
#: implementations.
BUILTIN_BACKENDS = ("row", "columnar", "sqlite")

_FACTORIES: dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register a backend factory (``factory(bucket_seconds) -> backend``)."""
    _FACTORIES[name] = factory


def _ensure_builtins() -> None:
    # Imported lazily: the concrete stores import engine/baseline modules
    # that must not load just because the protocol module did.
    if "row" not in _FACTORIES:
        from repro.storage.store import EventStore
        register_backend("row", EventStore)
    if "columnar" not in _FACTORIES:
        from repro.storage.columnar import ColumnarEventStore
        register_backend("columnar", ColumnarEventStore)
    if "sqlite" not in _FACTORIES:
        from repro.baselines.sqlite_backend import SqliteEventStore
        register_backend("sqlite", SqliteEventStore)


def available_backends() -> tuple[str, ...]:
    """Registered backend names (builtin ones always included)."""
    _ensure_builtins()
    return tuple(sorted(_FACTORIES))


def create_backend(name: str,
                   bucket_seconds: float = SECONDS_PER_DAY) -> StorageBackend:
    """Instantiate a backend by registry name."""
    _ensure_builtins()
    factory = _FACTORIES.get(name)
    if factory is None:
        raise StorageError(
            f"unknown storage backend {name!r} "
            f"(available: {', '.join(sorted(_FACTORIES))})")
    return factory(bucket_seconds)
