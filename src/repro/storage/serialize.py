"""Event stream serialization: the agent wire/archive format.

Collection agents in the paper ship events from hosts to the storage
tier; archives are kept for 0.5–1 year.  This module defines the JSONL
interchange format the reproduction uses for both: one JSON object per
event, entities inlined with a type tag.  Gzip is applied transparently
for paths ending in ``.gz``.

The format is self-contained and stable under round-trip
(`event_from_dict(event_to_dict(e)) == e`, property-tested).
"""

from __future__ import annotations

import gzip
import io
import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import StorageError
from repro.model.entities import (Entity, FileEntity, NetworkEntity,
                                  ProcessEntity)
from repro.model.events import Event
from repro.storage.backend import StorageBackend, create_backend

FORMAT_VERSION = 1


def entity_to_dict(entity: Entity) -> dict:
    if isinstance(entity, ProcessEntity):
        return {"t": "proc", "agentid": entity.agentid, "pid": entity.pid,
                "exe_name": entity.exe_name, "user": entity.user,
                "cmdline": entity.cmdline,
                "start_time": entity.start_time}
    if isinstance(entity, FileEntity):
        return {"t": "file", "agentid": entity.agentid,
                "name": entity.name, "owner": entity.owner}
    if isinstance(entity, NetworkEntity):
        return {"t": "ip", "agentid": entity.agentid,
                "src_ip": entity.src_ip, "src_port": entity.src_port,
                "dst_ip": entity.dst_ip, "dst_port": entity.dst_port,
                "protocol": entity.protocol}
    raise StorageError(f"unknown entity type: {entity!r}")


def entity_from_dict(data: dict) -> Entity:
    try:
        kind = data["t"]
        if kind == "proc":
            return ProcessEntity(
                agentid=data["agentid"], pid=data["pid"],
                exe_name=data["exe_name"], user=data.get("user", "system"),
                cmdline=data.get("cmdline", ""),
                start_time=data.get("start_time", 0.0))
        if kind == "file":
            return FileEntity(agentid=data["agentid"], name=data["name"],
                              owner=data.get("owner", "root"))
        if kind == "ip":
            return NetworkEntity(
                agentid=data["agentid"], src_ip=data["src_ip"],
                src_port=data["src_port"], dst_ip=data["dst_ip"],
                dst_port=data["dst_port"],
                protocol=data.get("protocol", "tcp"))
    except KeyError as exc:
        raise StorageError(f"entity record missing field {exc}") from None
    raise StorageError(f"unknown entity tag {data.get('t')!r}")


def event_to_dict(event: Event) -> dict:
    return {
        "v": FORMAT_VERSION,
        "id": event.id,
        "ts": event.ts,
        "agentid": event.agentid,
        "op": event.operation,
        "subject": entity_to_dict(event.subject),
        "object": entity_to_dict(event.object),
        "amount": event.amount,
        "failcode": event.failcode,
    }


def event_from_dict(data: dict) -> Event:
    try:
        subject = entity_from_dict(data["subject"])
        if not isinstance(subject, ProcessEntity):
            raise StorageError("event subject must be a process record")
        return Event(
            id=data["id"], ts=data["ts"], agentid=data["agentid"],
            operation=data["op"], subject=subject,
            object=entity_from_dict(data["object"]),
            amount=data.get("amount", 0),
            failcode=data.get("failcode", 0))
    except KeyError as exc:
        raise StorageError(f"event record missing field {exc}") from None


def _open_write(path: Path):
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "wb"), encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_read(path: Path):
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def write_events(events: Iterable[Event], path: str | Path) -> int:
    """Write an event stream as JSONL (gzipped for ``*.gz``)."""
    path = Path(path)
    count = 0
    with _open_write(path) as handle:
        for event in events:
            handle.write(json.dumps(event_to_dict(event),
                                    separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def read_events(path: str | Path) -> Iterator[Event]:
    """Stream events back from a JSONL file, validating each record."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no such event file: {path}")
    with _open_read(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise StorageError(
                    f"{path}:{line_no}: invalid JSON: {exc}") from None
            yield event_from_dict(data)


def load_store(path: str | Path,
               store: StorageBackend | None = None,
               backend: str = "row") -> StorageBackend:
    """Read a JSONL archive into a (new) storage backend."""
    store = store if store is not None else create_backend(backend)
    store.ingest(read_events(path))
    return store


def save_store(store: StorageBackend, path: str | Path) -> int:
    """Archive a store's full contents as JSONL."""
    return write_events(store.scan(), path)
