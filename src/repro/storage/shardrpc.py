"""Worker side of the sharded execution tier: a pickle RPC loop over pipes.

One shard worker = one OS process hosting one ordinary registered
single-node backend (``row``/``columnar``/``sqlite``).  The coordinator
(:class:`repro.storage.sharded.ShardedStore`) talks to it over a
:func:`multiprocessing.Pipe` connection pair with length-prefixed pickle
frames: every message is ``pickle.dumps(obj)`` sent through
``Connection.send_bytes`` (which writes a 32-bit length header before
the body, so a reader always knows where a frame ends and a torn frame
is detected as a short read, never mis-parsed).

The worker protocol is deliberately narrow — requests are
``(method, args)`` tuples and the *only* scan-shaping value that ever
crosses the boundary is a :class:`~repro.storage.backend.ScanSpec`
(``tools/check_invariants.py`` enforces this statically).  Residual
predicates cross as their :class:`~repro.engine.filters.Atom` tuples
(pure picklable data) and are re-fused worker-side with
:func:`~repro.engine.filters.compile_atoms`; the fused lambda itself
never needs to pickle.  Column batches cross as :class:`WireBatch`
values — plain columns plus *compacted* dictionaries restricted to the
codes the batch actually uses, so a shard never ships its whole entity
vocabulary to answer a projected scan.

Workers are always started from the ``spawn`` context (see
:data:`SPAWN_CONTEXT`): the coordinator lives in processes that may
already run threads (the streaming :class:`~repro.stream.bus.EventBus`,
the engine's sub-query pool), and forking a multi-threaded process can
deadlock the child on locks held by threads that do not survive the
fork.  The invariant checker bans any other start method in ``src/``.

Fault injection reuses the :mod:`repro.storage.faults` idiom: the
coordinator can arm a :class:`~repro.storage.faults.Fault` at the named
points below, and the chaos harness uses ``kill`` mode to SIGKILL a
worker mid-request — the coordinator must then surface a clean
:class:`~repro.storage.sharded.ShardFailedError` instead of hanging or
silently returning partial results.
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import TYPE_CHECKING, Any

from repro.storage.backend import create_backend
from repro.storage.faults import FaultInjector

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

#: The one multiprocessing context sharded code may use (never ``fork``:
#: the coordinator may already run bus/executor threads).
SPAWN_CONTEXT = multiprocessing.get_context("spawn")

#: Worker-side fault points, named ``shard.worker.<method>``.  Distinct
#: from the WAL points in :data:`repro.storage.faults.FAULT_POINTS` so
#: the durability chaos matrix stays exactly the WAL's.
SHARD_FAULT_POINTS = (
    "shard.worker.ingest",
    "shard.worker.candidates",
    "shard.worker.select",
    "shard.worker.select_batches",
    "shard.worker.estimate",
)

_PROTOCOL = pickle.HIGHEST_PROTOCOL


def send_msg(conn: "Connection", payload: object) -> None:
    """One length-prefixed pickle frame (header + body via send_bytes)."""
    conn.send_bytes(pickle.dumps(payload, _PROTOCOL))


def recv_msg(conn: "Connection") -> Any:
    """Read one frame; raises ``EOFError`` when the peer died."""
    return pickle.loads(conn.recv_bytes())


class WireBatch:
    """A picklable :class:`~repro.storage.backend.ColumnBatch` payload.

    Same columns, but the dictionary vocabularies are *compacted* to
    dicts keyed by the codes present in this batch (``ColumnBatch``
    accepts dict vocabularies precisely for this), and there is no
    ``hydrate`` closure — the coordinator rebuilds one from the columns
    when the projection kept them all.
    """

    __slots__ = ("agentid", "ids", "ts", "ops", "subjects", "objects",
                 "amounts", "failcodes", "op_names", "entities")

    def __init__(self, agentid, ids, ts, ops, subjects, objects, amounts,
                 failcodes, op_names, entities) -> None:
        self.agentid = agentid
        self.ids = ids
        self.ts = ts
        self.ops = ops
        self.subjects = subjects
        self.objects = objects
        self.amounts = amounts
        self.failcodes = failcodes
        self.op_names = op_names
        self.entities = entities

    def __getstate__(self) -> tuple:
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state: tuple) -> None:
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)


def _to_wire(batch) -> WireBatch:
    """Compact one ColumnBatch into its picklable wire form."""
    op_names = None
    if batch.ops is not None:
        vocabulary = batch.op_names
        op_names = {code: vocabulary[code] for code in set(batch.ops)}
    codes: set[int] = set()
    if batch.subjects is not None:
        codes.update(batch.subjects)
    if batch.objects is not None:
        codes.update(batch.objects)
    vocabulary = batch.entities
    entities = {code: vocabulary[code] for code in codes}

    def plain(column):
        # array-slices pickle fine but lists keep the coordinator's
        # rebuild uniform (and survive append-side type differences).
        return None if column is None else list(column)

    return WireBatch(
        agentid=batch.agentid, ids=list(batch.ids), ts=list(batch.ts),
        ops=plain(batch.ops), subjects=plain(batch.subjects),
        objects=plain(batch.objects), amounts=plain(batch.amounts),
        failcodes=plain(batch.failcodes),
        op_names=op_names, entities=entities)


def _dispatch(backend, faults: FaultInjector, method: str,
              args: tuple) -> object:
    """Execute one request against the hosted backend.

    Scan methods receive ``(profile, spec)`` or ``(profile, atoms,
    spec)`` — the spec is always the last positional argument, so every
    pushdown (window, agentids, bindings, bounds, projection, order)
    applies *inside* the shard exactly as it would on a single node.
    """
    faults.crash_point(f"shard.worker.{method}")
    if method == "ingest":
        return backend.ingest(args[0])
    if method == "scan":
        window, agentids = args
        return backend.scan(window, agentids)
    if method == "candidates":
        profile, spec = args
        return backend.candidates(profile, spec)
    if method == "select":
        from repro.engine.filters import compile_atoms
        profile, atoms, spec = args
        return backend.select(profile, compile_atoms(atoms), spec)
    if method == "select_batches":
        from repro.engine.filters import compile_atoms
        profile, atoms, spec = args
        batches, fetched = backend.select_batches(
            profile, compile_atoms(atoms), spec)
        return [_to_wire(batch) for batch in batches], fetched
    if method == "estimate":
        profile, spec = args
        return backend.estimate(profile, spec)
    if method == "access_path":
        profile, spec = args
        return backend.access_path(profile, spec)
    if method == "stats":
        return {
            "events": len(backend),
            "entity_count": backend.entity_count,
            "dedup_ratio": backend.dedup_ratio,
            "partition_count": backend.partition_count,
        }
    if method == "metrics":
        # The worker's whole process-local registry as one picklable
        # snapshot — scan counters/timings accumulated by the hosted
        # backend's instrumented select paths.  The coordinator merges
        # these with its own snapshot (counters sum, histogram buckets
        # add), which is what makes sharded totals equal single-node
        # totals.
        from repro.obs.metrics import REGISTRY
        return REGISTRY.snapshot()
    if method == "arm_fault":
        faults.arm(args[0])
        return None
    if method == "ping":
        return backend.backend_name
    raise ValueError(f"unknown shard RPC method {method!r}")


def worker_main(conn: "Connection", backend_name: str,
                bucket_seconds: float) -> None:
    """The request loop one shard worker runs until shutdown.

    Spawn-friendly module-level entry point.  Every request gets exactly
    one reply: ``("ok", value)`` or ``("err", exception)`` — a raised
    exception is answered, not fatal, so one bad query never kills the
    shard.  Exceptions that refuse to pickle degrade to a
    :class:`~repro.errors.StorageError` carrying their repr.
    """
    backend = create_backend(backend_name, bucket_seconds)
    faults = FaultInjector()
    while True:
        try:
            request = recv_msg(conn)
        except (EOFError, OSError):
            break  # coordinator went away; die quietly
        method, args = request
        if method == "shutdown":
            send_msg(conn, ("ok", None))
            break
        try:
            result = _dispatch(backend, faults, method, args)
            reply = ("ok", result)
        except BaseException as exc:  # noqa: BLE001 — must answer, not die
            try:
                pickle.dumps(exc, _PROTOCOL)
            except Exception:
                from repro.errors import StorageError
                exc = StorageError(f"shard worker error in {method}: "
                                   f"{exc!r}")
            reply = ("err", exc)
        try:
            send_msg(conn, reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()
