"""Domain-specific storage: pluggable backends over hypertable partitions.

The :class:`~repro.storage.backend.StorageBackend` protocol is the seam;
``row`` (:class:`EventStore`) and ``columnar``
(:class:`repro.storage.columnar.ColumnarEventStore`) are the in-memory
implementations, with ``sqlite`` provided by
:mod:`repro.baselines.sqlite_backend`.  The columnar store is imported
lazily through the registry to keep this package import-light.
"""

from repro.storage.backend import (AccessPathInfo, Bitmap, BloomedSet,
                                   IdentityBindings, ScanSpec,
                                   StorageBackend, TemporalBounds,
                                   available_backends, create_backend,
                                   register_backend, select_via_candidates)
from repro.storage.dedup import EntityInterner, EventMerger, ReplayDeduper
from repro.storage.durable import DurableStore, RecoveryStats, recover
from repro.storage.faults import (FAULT_MODES, FAULT_POINTS, Fault,
                                  FaultInjector, FaultTriggered)
from repro.storage.indexes import (PostingIndex, TimeIndex, like_match,
                                   like_to_regex)
from repro.storage.ingest import IngestPipeline, IngestStats
from repro.storage.partition import Hypertable, Partition
from repro.storage.scanstats import (EquiDepthHistogram, FrequencySketch,
                                     PartitionStatistics)
from repro.storage.sharded import ShardedStore, ShardFailedError
from repro.storage.shardrpc import SHARD_FAULT_POINTS
from repro.storage.stats import PatternProfile, estimate_total
from repro.storage.store import EventStore
from repro.storage.wal import WalRecord, WriteAheadLog

__all__ = [
    "AccessPathInfo", "Bitmap", "BloomedSet", "IdentityBindings",
    "ScanSpec", "StorageBackend", "TemporalBounds",
    "available_backends", "create_backend",
    "register_backend", "select_via_candidates",
    "EntityInterner", "EventMerger", "ReplayDeduper",
    "DurableStore", "RecoveryStats", "recover",
    "FAULT_MODES", "FAULT_POINTS", "Fault", "FaultInjector",
    "FaultTriggered",
    "WalRecord", "WriteAheadLog",
    "PostingIndex", "TimeIndex",
    "like_match", "like_to_regex", "IngestPipeline", "IngestStats",
    "Hypertable", "Partition", "PatternProfile", "estimate_total",
    "EquiDepthHistogram", "FrequencySketch", "PartitionStatistics",
    "EventStore",
    "ShardedStore", "ShardFailedError", "SHARD_FAULT_POINTS",
]
