"""Domain-specific storage: hypertable partitions, indexes, dedup, ingest."""

from repro.storage.dedup import EntityInterner, EventMerger
from repro.storage.indexes import (PostingIndex, TimeIndex, like_match,
                                   like_to_regex)
from repro.storage.ingest import IngestPipeline, IngestStats
from repro.storage.partition import Hypertable, Partition
from repro.storage.stats import PatternProfile, estimate_total
from repro.storage.store import EventStore

__all__ = [
    "EntityInterner", "EventMerger", "PostingIndex", "TimeIndex",
    "like_match", "like_to_regex", "IngestPipeline", "IngestStats",
    "Hypertable", "Partition", "PatternProfile", "estimate_total",
    "EventStore",
]
