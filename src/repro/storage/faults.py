"""Fault injection for the durability tier: crash where it hurts.

Recovery code is only trustworthy if its failure windows are actually
exercised.  This module provides the injectable IO-fault layer the WAL
(:mod:`repro.storage.wal`) and the checkpoint machinery
(:mod:`repro.storage.durable`) consult at *named fault points* — the
places a crash, a torn write, or silent corruption can leave the
on-disk state in every shape recovery must tolerate:

* ``wal.append.header``     — before any byte of a record is written
  (a crash here loses the whole record, cleanly);
* ``wal.append.payload``    — mid-record, after the header (a *torn
  write*: the tail fails the CRC and replay must stop there);
* ``wal.append.sync``       — after the full record is written but
  before fsync (data may or may not survive; either is a valid prefix);
* ``checkpoint.segment``    — while the snapshot segment is being
  written (the tmp file must be ignored by recovery);
* ``checkpoint.manifest``   — after the segment landed, before the
  manifest swap (recovery uses the *old* checkpoint + the full WAL);
* ``checkpoint.truncate``   — after the manifest swap, before the WAL
  reset (recovery replays a WAL whose prefix the checkpoint already
  contains — the window idempotent dedup exists for).

A :class:`Fault` arms one point with a *mode*:

``error``
    raise :class:`FaultTriggered` (an ``OSError``) — the in-process
    crash used by unit tests;
``kill``
    ``SIGKILL`` the current process — the subprocess chaos harness'
    un-catchable crash (``kill -9`` semantics, no atexit, no flush);
``torn``
    write only a prefix of the pending bytes, then crash;
``bitflip``
    flip one bit inside the just-written region, then crash — silent
    corruption the CRC must catch;
``truncate``
    chop the just-written region in half with ``ftruncate``, then
    crash — the lost-tail shape journaling filesystems produce.

``skip`` delays the trigger: the fault fires on the ``skip+1``-th
arrival at its point, so a crash can land mid-stream instead of on the
first batch.  Faults are one-shot — once fired they disarm.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from typing import BinaryIO, Iterable

#: Every named fault point, in write-path order.  The CI chaos job runs
#: the kill-at-point matrix across exactly this tuple.
FAULT_POINTS = (
    "wal.append.header",
    "wal.append.payload",
    "wal.append.sync",
    "checkpoint.segment",
    "checkpoint.manifest",
    "checkpoint.truncate",
)

#: The modes a fault can act with.
FAULT_MODES = ("error", "kill", "torn", "bitflip", "truncate")


class FaultTriggered(OSError):
    """The injected IO failure (mode ``error``/``torn``/... in-process)."""


@dataclass
class Fault:
    """One armed fault: fire ``mode`` at the ``skip+1``-th hit of ``point``."""

    point: str
    mode: str = "error"
    skip: int = 0

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise ValueError(f"unknown fault mode {self.mode!r} "
                             f"(known: {', '.join(FAULT_MODES)})")

    @classmethod
    def from_spec(cls, spec: str) -> "Fault":
        """Parse ``point[:mode[:skip]]`` (the chaos harness' CLI form)."""
        parts = spec.split(":")
        point = parts[0]
        mode = parts[1] if len(parts) > 1 and parts[1] else "error"
        skip = int(parts[2]) if len(parts) > 2 and parts[2] else 0
        return cls(point=point, mode=mode, skip=skip)


class FaultInjector:
    """Arms faults and acts them out when the instrumented code arrives.

    The durability code calls :meth:`crash_point` at points where the
    failure is a plain crash (``error``/``kill``), and :meth:`write`
    instead of ``handle.write`` at points where the *write itself* can
    fail partway (torn/bitflip/truncate need the handle and the bytes).
    With no fault armed both are near-free passthroughs, so production
    code paths can keep the hooks unconditionally.
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self._armed: list[Fault] = list(faults)
        self.hits: dict[str, int] = {}
        self.fired: list[Fault] = []

    def arm(self, fault: Fault) -> None:
        self._armed.append(fault)

    def _take(self, point: str) -> Fault | None:
        """Count a hit; return the fault if one triggers now (one-shot)."""
        count = self.hits.get(point, 0)
        self.hits[point] = count + 1
        for index, fault in enumerate(self._armed):
            if fault.point == point:
                if count >= fault.skip:
                    del self._armed[index]
                    self.fired.append(fault)
                    return fault
                return None
        return None

    # ------------------------------------------------------------------
    # Hooks the durability code calls
    # ------------------------------------------------------------------
    def crash_point(self, point: str) -> None:
        """A pure crash point: nothing to tear, just stop existing here."""
        fault = self._take(point)
        if fault is not None:
            self._crash(fault)

    def write(self, handle: BinaryIO, data: bytes, point: str) -> None:
        """Write ``data`` at the handle's current position — or fail at it.

        The torn/bitflip/truncate modes need both the handle and the
        pending bytes; ``error``/``kill`` crash before anything lands.
        """
        fault = self._take(point)
        if fault is None:
            handle.write(data)
            return
        start = handle.tell()
        if fault.mode == "torn":
            handle.write(data[:max(1, len(data) // 2)])
            handle.flush()
        elif fault.mode == "bitflip":
            handle.write(data)
            handle.flush()
            flip_at = start + len(data) // 2
            handle.seek(flip_at)
            byte = handle.read(1)
            handle.seek(flip_at)
            handle.write(bytes((byte[0] ^ 0x40,)))
            handle.flush()
        elif fault.mode == "truncate":
            handle.write(data)
            handle.flush()
            handle.truncate(start + len(data) // 2)
        self._crash(fault)

    @staticmethod
    def _crash(fault: Fault) -> None:
        if fault.mode == "kill":
            # The real thing: no exception, no cleanup, no buffered-IO
            # flush — exactly what `kill -9` (or a power cut, minus the
            # page cache) leaves behind.
            os.kill(os.getpid(), signal.SIGKILL)
        raise FaultTriggered(
            f"injected fault at {fault.point!r} (mode={fault.mode})")


#: The no-op injector production paths share (no allocation per call).
NO_FAULTS = FaultInjector()


def resolve_injector(faults: "FaultInjector | None") -> FaultInjector:
    """Normalize the optional injector argument every hook site takes."""
    return faults if faults is not None else NO_FAULTS
