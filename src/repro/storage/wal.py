"""The binary write-ahead log: crash-safe framing for event batches.

The ingest path's durability contract (ROADMAP: "a write-ahead log fed
by ``EventBus.attach_store`` so streaming ingest is crash-safe") is
implemented here as an append-only log of CRC-framed records:

    file   := header record*
    header := magic(4s) version(u16) reserved(u16)          — 8 bytes
    record := crc32(u32) length(u32) type(u8) payload(length bytes)

The CRC covers the type byte plus the payload, so neither a torn payload
nor a corrupted type escapes detection.  Replay reads records until the
first frame that does not check out — a short header, a length past EOF,
or a CRC mismatch — and treats everything from there on as the *torn
tail* of an interrupted append: the log's valid content is always the
longest cleanly-framed prefix.  Opening an existing log for append
truncates that tail first, so new records land after the valid prefix
instead of behind garbage replay would stop at.

Event batches are the primary record type: a batch is encoded with a
per-batch entity table (each distinct entity serialized once, events as
flat index rows), which keeps the encode cost per event far below the
naive one-JSON-object-per-event form — the difference between durable
ingest costing ~1.3x and ~3x of the in-memory path.

The ``sync`` policy knob trades durability for speed:

* ``"always"`` — fsync after every append: a completed ``append`` call
  survives the process *and* the OS dying (the default);
* ``"close"``  — fsync only on :meth:`sync`/:meth:`close`/checkpoint: a
  crashed *process* loses nothing (the OS holds the pages), a crashed
  machine may lose the unsynced suffix;
* ``"never"``  — no fsync at all (benchmark baseline).

Fault points (see :mod:`repro.storage.faults`) are consulted on the
append path so the crash-recovery suite can fail an append at every
stage — before the record, mid-payload (torn), and after the write but
before the fsync.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterator, Sequence

from repro.errors import StorageError
from repro.model.entities import ProcessEntity
from repro.model.events import Event
from repro.obs.clock import monotonic
from repro.obs.metrics import REGISTRY
from repro.storage.faults import FaultInjector, resolve_injector
from repro.storage.serialize import entity_from_dict, entity_to_dict

MAGIC = b"AQWL"
VERSION = 1

_HEADER = struct.Struct("<4sHH")
_RECORD = struct.Struct("<IIB")

#: Record types.  The framing is generic; these are the payloads the
#: durability tier writes.  The alert log reuses the framing with its
#: own types (see :mod:`repro.stream.alertlog`).
RT_EVENT_BATCH = 1
RT_NOTE = 2
RT_ALERT = 3

SYNC_POLICIES = ("always", "close", "never")

# Durability telemetry: where WAL time goes.  fsync is tracked apart
# from the rest of the append because the sync policy knob exists
# precisely to trade that component away.
_APPEND_SECONDS = REGISTRY.histogram("wal.append.seconds")
_FSYNC_SECONDS = REGISTRY.histogram("wal.fsync.seconds")
_REPLAY_SECONDS = REGISTRY.histogram("wal.replay.seconds")
_APPEND_BYTES = REGISTRY.counter("wal.append.bytes")
_REPLAY_RECORDS = REGISTRY.counter("wal.replay.records")


@dataclass(frozen=True, slots=True)
class WalRecord:
    """One cleanly-framed record: its offset, type, and payload bytes."""

    lsn: int
    rtype: int
    payload: bytes


def fsync_directory(path: str | Path) -> None:
    """fsync a directory so a just-created/renamed entry survives a crash."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ---------------------------------------------------------------------------
# Event-batch payload codec
# ---------------------------------------------------------------------------

def encode_event_batch(events: Sequence[Event]) -> bytes:
    """Serialize a batch with a per-batch entity table.

    Entities repeat heavily within a batch (one process writes many
    files), so each distinct identity is serialized once and events
    become flat index rows — the encode cost that dominates durable
    ingest drops to near the cost of building small lists.
    """
    table: list[dict] = []
    index: dict[tuple, int] = {}
    rows: list[list] = []
    for event in events:
        subject_key = event.subject.identity
        subject_index = index.get(subject_key)
        if subject_index is None:
            subject_index = len(table)
            index[subject_key] = subject_index
            table.append(entity_to_dict(event.subject))
        object_key = event.object.identity
        object_index = index.get(object_key)
        if object_index is None:
            object_index = len(table)
            index[object_key] = object_index
            table.append(entity_to_dict(event.object))
        rows.append([event.id, event.ts, event.agentid, event.operation,
                     subject_index, object_index, event.amount,
                     event.failcode])
    return json.dumps({"n": table, "e": rows},
                      separators=(",", ":")).encode("utf-8")


def decode_event_batch(payload: bytes) -> list[Event]:
    """Rebuild a batch encoded by :func:`encode_event_batch`."""
    try:
        data = json.loads(payload)
        entities = [entity_from_dict(record) for record in data["n"]]
        events: list[Event] = []
        for row in data["e"]:
            subject = entities[row[4]]
            if not isinstance(subject, ProcessEntity):
                raise StorageError("WAL batch subject is not a process")
            events.append(Event(
                id=row[0], ts=row[1], agentid=row[2], operation=row[3],
                subject=subject, object=entities[row[5]],
                amount=row[6], failcode=row[7]))
        return events
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise StorageError(f"undecodable WAL event batch: {exc}") from None


# ---------------------------------------------------------------------------
# The log itself
# ---------------------------------------------------------------------------

class WriteAheadLog:
    """An append-only CRC-framed record log with torn-tail recovery."""

    def __init__(self, path: str | Path, sync: str = "always",
                 faults: FaultInjector | None = None) -> None:
        if sync not in SYNC_POLICIES:
            raise StorageError(
                f"unknown WAL sync policy {sync!r} "
                f"(known: {', '.join(SYNC_POLICIES)})")
        self.path = Path(path)
        self.sync_policy = sync
        self._faults = resolve_injector(faults)
        self.appended = 0          # records appended through this handle
        created = not self.path.exists() or self.path.stat().st_size == 0
        # r+b (not ab): append offsets are managed explicitly so a torn
        # tail can be overwritten, and O_APPEND would pin every write to
        # the (possibly garbage) physical end of file.
        self._handle: BinaryIO = open(self.path, "w+b" if created else "r+b")
        if created:
            self._handle.write(_HEADER.pack(MAGIC, VERSION, 0))
            self._handle.flush()
            if sync == "always":
                os.fsync(self._handle.fileno())
                fsync_directory(self.path.parent)
            self._end = _HEADER.size
        else:
            self._end = self._scan_valid_end()
            # Drop a torn tail now: appends must extend the valid
            # prefix, not bury garbage that replay would stop at.
            self._handle.truncate(self._end)

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    def append(self, rtype: int, payload: bytes) -> int:
        """Durably append one record; returns its LSN (byte offset)."""
        started = monotonic()
        faults = self._faults
        faults.crash_point("wal.append.header")
        lsn = self._end
        header = _RECORD.pack(zlib.crc32(bytes((rtype,)) + payload),
                              len(payload), rtype)
        handle = self._handle
        handle.seek(lsn)
        handle.write(header)
        faults.write(handle, payload, "wal.append.payload")
        handle.flush()
        faults.crash_point("wal.append.sync")
        if self.sync_policy == "always":
            fsync_started = monotonic()
            os.fsync(handle.fileno())
            _FSYNC_SECONDS.observe(monotonic() - fsync_started)
        self._end = lsn + _RECORD.size + len(payload)
        self.appended += 1
        _APPEND_BYTES.inc(_RECORD.size + len(payload))
        _APPEND_SECONDS.observe(monotonic() - started)
        return lsn

    def append_events(self, events: Sequence[Event]) -> int:
        """Append one event batch (the ingest write-ahead record)."""
        return self.append(RT_EVENT_BATCH, encode_event_batch(events))

    def sync(self) -> None:
        """Flush and fsync whatever has been appended so far."""
        self._handle.flush()
        if self.sync_policy != "never":
            started = monotonic()
            os.fsync(self._handle.fileno())
            _FSYNC_SECONDS.observe(monotonic() - started)

    def reset(self) -> None:
        """Truncate back to the header (checkpoint took over the prefix)."""
        self._handle.truncate(_HEADER.size)
        self._end = _HEADER.size
        self.sync()

    def close(self) -> None:
        if self._handle.closed:
            return
        self.sync()
        self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def size(self) -> int:
        """Bytes of cleanly-framed log (header included)."""
        return self._end

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _scan_valid_end(self) -> int:
        handle = self._handle
        handle.seek(0)
        _check_header(handle.read(_HEADER.size), self.path)
        end = _HEADER.size
        for record in _frames(handle, end):
            end = record.lsn + _RECORD.size + len(record.payload)
        return end

    def records(self) -> Iterator[WalRecord]:
        """Replay this (open) log's cleanly-framed records."""
        position = self._handle.tell()
        try:
            self._handle.seek(_HEADER.size)
            yield from _frames(self._handle, _HEADER.size)
        finally:
            self._handle.seek(position)

    @staticmethod
    def replay(path: str | Path) -> Iterator[WalRecord]:
        """Replay a log file's cleanly-framed records (read-only).

        Stops silently at the first record that fails framing or CRC —
        the torn tail of an interrupted append.  A missing file replays
        as empty (the crash may predate the first append).
        """
        path = Path(path)
        if not path.exists():
            return
        started = monotonic()
        records = 0
        with open(path, "rb") as handle:
            head = handle.read(_HEADER.size)
            if len(head) < _HEADER.size:
                return       # header itself torn: empty log
            _check_header(head, path)
            for record in _frames(handle, _HEADER.size):
                records += 1
                yield record
        _REPLAY_RECORDS.inc(records)
        _REPLAY_SECONDS.observe(monotonic() - started)

    @staticmethod
    def replay_events(path: str | Path) -> Iterator[list[Event]]:
        """Replay just the event batches of a log file, decoded."""
        for record in WriteAheadLog.replay(path):
            if record.rtype == RT_EVENT_BATCH:
                yield decode_event_batch(record.payload)


def _check_header(head: bytes, path: Path) -> None:
    magic, version, _reserved = _HEADER.unpack(head)
    if magic != MAGIC:
        raise StorageError(f"{path}: not a write-ahead log "
                           f"(bad magic {magic!r})")
    if version > VERSION:
        raise StorageError(f"{path}: WAL format version {version} is newer "
                           f"than this build understands ({VERSION})")


def _frames(handle: BinaryIO, start: int) -> Iterator[WalRecord]:
    """Yield cleanly-framed records from ``start``; stop at the torn tail."""
    offset = start
    while True:
        head = handle.read(_RECORD.size)
        if len(head) < _RECORD.size:
            return                                   # tail: short header
        crc, length, rtype = _RECORD.unpack(head)
        payload = handle.read(length)
        if len(payload) < length:
            return                                   # tail: short payload
        if zlib.crc32(bytes((rtype,)) + payload) != crc:
            return                                   # tail: corrupt frame
        yield WalRecord(lsn=offset, rtype=rtype, payload=payload)
        offset += _RECORD.size + length
