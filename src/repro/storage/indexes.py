"""In-memory indexes used inside storage partitions.

The paper's storage layer (§2.1) relies on *in-memory indexes* over the
security-related attributes so that event patterns with selective
constraints (a process name, a file path, a destination IP) can be answered
without scanning a partition.  Two index shapes cover AIQL's constraint
vocabulary:

* :class:`PostingIndex` — an inverted index from an exact attribute value to
  the list of events carrying it.  LIKE patterns are answered by matching
  the (comparatively few) distinct keys against the pattern and unioning
  posting lists.
* :class:`TimeIndex` — a sorted timestamp array answering half-open window
  lookups with binary search.
"""

from __future__ import annotations

import bisect
import functools
import re
from collections import defaultdict
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.model.events import Event

if TYPE_CHECKING:
    from repro.model.timeutil import Window


@functools.lru_cache(maxsize=4096)
def like_to_regex(pattern: str) -> re.Pattern[str]:
    """Compile a SQL-LIKE pattern (``%``/``_`` wildcards) to a regex.

    Matching is case-insensitive, mirroring SQLite's LIKE so that the
    differential tests against the relational baseline agree byte-for-byte.
    Compiled patterns are cached: index scans match one pattern against
    many distinct keys, and estimation repeats the same patterns per
    partition.
    """
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$", re.IGNORECASE | re.DOTALL)


def like_match(pattern: str, value: str) -> bool:
    """Reference LIKE matcher (used directly by filters and property tests)."""
    return like_to_regex(pattern).match(value) is not None


class PostingIndex:
    """Inverted index: attribute value -> posting list of events.

    Posting lists preserve insertion order; partitions insert in timestamp
    order so the lists stay time-sorted, which the scheduler exploits when
    clipping candidate lists to a narrowed time window.
    """

    __slots__ = ("_postings",)

    def __init__(self) -> None:
        self._postings: dict[object, list[Event]] = defaultdict(list)

    def add(self, key: object, event: Event) -> None:
        self._postings[key].append(event)

    def lookup(self, key: object) -> list[Event]:
        """Events with exactly this attribute value (empty if none)."""
        return self._postings.get(key, [])

    def lookup_like(self, pattern: str) -> list[Event]:
        """Union of posting lists whose key matches a LIKE pattern."""
        regex = like_to_regex(pattern)
        matched: list[Event] = []
        for key, events in self._postings.items():
            if isinstance(key, str) and regex.match(key):
                matched.extend(events)
        return matched

    def lookup_many(self, keys: Iterable[object], *,
                    compact: bool = True) -> list[Event]:
        """Union of posting lists for a set of exact keys.

        The access path behind identity-binding pushdown: propagated
        binding sets are usually tiny, so the merged lists are the
        cheapest superset the partition can offer.  The merge is sorted
        by ``(ts, id)`` so the result never depends on the iteration
        order of the (hash-ordered) key set — candidate order feeds the
        joiner and must be deterministic across processes.

        With ``compact`` (the default), a key set larger than the
        partition's distinct-key vocabulary is answered by intersecting
        the posting keys with the set instead of probing per element —
        the row-store analogue of the columnar bitmap, bounding the work
        by ``min(|keys|, |vocabulary|)`` however large the propagated
        binding set grows.
        """
        merged: list[Event] = []
        for key in self._probe_keys(keys, compact):
            events = self._postings.get(key)
            if events:
                merged.extend(events)
        merged.sort(key=lambda event: (event.ts, event.id))
        return merged

    def _probe_keys(self, keys: Iterable[object],
                    compact: bool) -> Iterable[object]:
        if (compact and isinstance(keys, (set, frozenset))
                and len(keys) > len(self._postings)):
            return self._postings.keys() & keys
        return keys

    def count(self, key: object) -> int:
        events = self._postings.get(key)
        return len(events) if events is not None else 0

    def count_many(self, keys: Iterable[object], *,
                   compact: bool = True) -> int:
        """Total posting size over a set of exact keys (path costing)."""
        postings = self._postings
        return sum(len(postings[key])
                   for key in self._probe_keys(keys, compact)
                   if key in postings)

    def count_like(self, pattern: str) -> int:
        """Match count for a LIKE pattern without materializing events."""
        regex = like_to_regex(pattern)
        return sum(
            len(events) for key, events in self._postings.items()
            if isinstance(key, str) and regex.match(key))

    def keys(self) -> Iterator[object]:
        return iter(self._postings)

    @property
    def distinct(self) -> int:
        return len(self._postings)

    def __len__(self) -> int:
        return sum(len(events) for events in self._postings.values())


class TimeIndex:
    """Sorted timestamp array over a partition's events.

    Partitions append events roughly in order; the index keeps a dirty flag
    and re-sorts lazily on first lookup after out-of-order inserts.
    """

    __slots__ = ("_timestamps", "_events", "_sorted", "min_ts", "max_ts")

    def __init__(self) -> None:
        self._timestamps: list[float] = []
        self._events: list[Event] = []
        self._sorted = True
        # Zone map over the stored timestamps: lets partition pruning test
        # a narrowed window against the *actual* data span, not just the
        # bucket boundaries.
        self.min_ts = float("inf")
        self.max_ts = float("-inf")

    def add(self, event: Event) -> None:
        # Tie-aware: equal timestamps must still order by id, or the
        # ordered-scan early termination would trust a (ts, id) order
        # that an equal-ts, out-of-order-id ingest silently broke.
        if self._timestamps and (
                event.ts < self._timestamps[-1]
                or (event.ts == self._timestamps[-1]
                    and event.id < self._events[-1].id)):
            self._sorted = False
        self._timestamps.append(event.ts)
        self._events.append(event)
        if event.ts < self.min_ts:
            self.min_ts = event.ts
        if event.ts > self.max_ts:
            self.max_ts = event.ts

    def _ensure_sorted(self) -> None:
        if self._sorted:
            return
        order = sorted(range(len(self._events)),
                       key=lambda i: (self._timestamps[i], self._events[i].id))
        self._timestamps = [self._timestamps[i] for i in order]
        self._events = [self._events[i] for i in order]
        self._sorted = True

    def range(self, start: float, end: float) -> list[Event]:
        """Events with ``start <= ts < end`` in timestamp order."""
        self._ensure_sorted()
        lo = bisect.bisect_left(self._timestamps, start)
        hi = bisect.bisect_left(self._timestamps, end)
        return self._events[lo:hi]

    def count_range(self, start: float, end: float) -> int:
        self._ensure_sorted()
        lo = bisect.bisect_left(self._timestamps, start)
        hi = bisect.bisect_left(self._timestamps, end)
        return hi - lo

    def all(self) -> list[Event]:
        self._ensure_sorted()
        return list(self._events)

    def ordered_span(self, window: "Window | None" = None,
                     ) -> tuple[list[Event], int, int]:
        """The ``(ts, id)``-sorted backing list plus the window's row span.

        Exposes the sorted order *in place* (no copy) so ordered scans
        can walk it chunk-at-a-time from either end and stop early; the
        caller must treat the list as read-only.
        """
        self._ensure_sorted()
        if window is None:
            return self._events, 0, len(self._events)
        lo = bisect.bisect_left(self._timestamps, window.start)
        hi = bisect.bisect_left(self._timestamps, window.end)
        return self._events, lo, hi

    def __len__(self) -> int:
        return len(self._events)


def clip_to_window(events: Iterable[Event], start: float,
                   end: float) -> list[Event]:
    """Filter an event list to a half-open window (non-index fallback)."""
    return [evt for evt in events if start <= evt.ts < end]
