"""Storage statistics feeding the engine's pruning-power estimation.

The optimized scheduler (§2.3) prioritizes event patterns "with higher
pruning power".  Pruning power is the inverse of estimated match
cardinality, and that estimate comes from the per-partition posting-index
cardinalities collected here: how many events carry a given operation, event
type, subject name, or object value.

Estimates are exact for exact-match constraints (they read posting sizes)
and computed by key-space matching for LIKE patterns; both are cheap because
the distinct-value vocabulary of audit data is small relative to event
volume.  *Windowed* estimates no longer assume events are time-uniform
inside a bucket: each constrained dimension consults a lazily built
equi-depth timestamp histogram over its own posting list
(:mod:`repro.storage.scanstats`), so a process whose activity clusters
outside the window estimates near zero instead of "its share of the
bucket".  The uniform scaling survives as the ``histograms=False``
fallback (the ablation's ``no_histogram`` lever) and for propagated
binding sets, whose members change per query step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.model.events import Event
from repro.model.timeutil import Window
from repro.storage.indexes import like_match, like_to_regex
from repro.storage.partition import Partition

if TYPE_CHECKING:
    from repro.storage.backend import IdentityBindings


@dataclass(frozen=True, slots=True)
class PatternProfile:
    """The index-visible parts of one event pattern's data query.

    ``subject_exact``/``subject_like`` constrain the subject executable
    name; ``object_exact``/``object_like`` constrain the object's default
    attribute.  ``operations`` is the allowed operation set (possibly from a
    ``read || write`` alternation) and ``event_type`` the object type.
    """

    event_type: str | None
    operations: frozenset[str] | None
    subject_exact: str | None = None
    subject_like: str | None = None
    object_exact: str | None = None
    object_like: str | None = None


def _profile_postings(partition: Partition, profile: PatternProfile,
                      ) -> list[tuple[object, Callable[[], Sequence[Event]]]]:
    """Per-dimension posting fetchers for the profile's constraints.

    Each entry is ``(histogram cache key, events factory)``; the factory
    yields exactly the events the dimension's posting index holds for the
    constrained value, which is both the exact unwindowed bound and the
    population a windowed histogram is built over.
    """
    dims: list[tuple[object, Callable[[], Sequence[Event]]]] = []
    etype = profile.event_type
    if etype is not None and profile.operations:
        ops = tuple(sorted(profile.operations))
        index = partition.by_type_operation

        def _type_ops() -> list[Event]:
            merged: list[Event] = []
            for op in ops:
                merged.extend(index.lookup((etype, op)))
            return merged

        dims.append((("type+op", etype, ops), _type_ops))
    elif etype is not None:
        dims.append((("type", etype),
                     lambda: partition.by_type.lookup(etype)))
    elif profile.operations:
        ops = tuple(sorted(profile.operations))
        index = partition.by_operation

        def _ops() -> list[Event]:
            merged: list[Event] = []
            for op in ops:
                merged.extend(index.lookup(op))
            return merged

        dims.append((("op", ops), _ops))
    if profile.subject_exact is not None:
        name = profile.subject_exact
        dims.append((("subject", name),
                     lambda: partition.by_subject_name.lookup(name)))
    elif profile.subject_like is not None:
        pattern = profile.subject_like
        dims.append((("subject~", pattern),
                     lambda: partition.by_subject_name.lookup_like(pattern)))
    if profile.object_exact is not None and etype is not None:
        key = (etype, profile.object_exact)
        dims.append((("object", key),
                     lambda: partition.by_object_value.lookup(key)))
    elif profile.object_like is not None and etype is not None:
        pattern = profile.object_like
        regex = like_to_regex(pattern)
        index = partition.by_object_value

        def _object_like() -> list[Event]:
            merged: list[Event] = []
            for key in index.keys():
                if (key[0] == etype and isinstance(key[1], str)
                        and regex.match(key[1])):
                    merged.extend(index.lookup(key))
            return merged

        dims.append((("object~", etype, pattern), _object_like))
    return dims


def _binding_bound(count: int, in_window: int, total: int,
                   windowed: bool) -> int:
    """Uniform window scaling for one exact binding-posting count."""
    if not windowed or count == 0:
        return count
    return max(1, round(count * in_window / total)) if in_window else 0


def estimate_partition(partition: Partition, profile: PatternProfile,
                       window: Window | None,
                       bindings: "IdentityBindings | None" = None,
                       histograms: bool = True) -> int:
    """Estimated number of events in this partition matching the profile.

    The estimate is the minimum across the independent per-index bounds —
    the tightest single-index bound, which is exactly the candidate-list
    size the executor would fetch.  Without a window (or with
    ``histograms=False``) the bounds are the raw posting sizes, scaled by
    the window's share of the partition population under a time-uniformity
    assumption.  With histograms, each constrained dimension instead asks
    its own equi-depth timestamp histogram how much of *its* posting list
    falls inside the window, so in-bucket skew stops fooling the
    scheduler.  Propagated identity bindings contribute their exact
    posting counts (uniformly scaled — binding sets are per-query-step
    and not worth a histogram build), so pruning-power ordering reacts to
    binding propagation either way.
    """
    total = len(partition)
    if total == 0:
        return 0
    if window is not None and histograms:
        return _estimate_windowed(partition, profile, window, bindings)
    bounds = [total]
    if bindings is not None:
        if bindings.subjects is not None:
            bounds.append(partition.by_subject_id.count_many(
                bindings.subjects, compact=bindings.compact))
        if bindings.objects is not None:
            bounds.append(partition.by_object_id.count_many(
                bindings.objects, compact=bindings.compact))
    if profile.event_type is not None and profile.operations:
        bounds.append(sum(
            partition.by_type_operation.count((profile.event_type, op))
            for op in profile.operations))
    elif profile.event_type is not None:
        bounds.append(partition.by_type.count(profile.event_type))
    elif profile.operations:
        bounds.append(sum(
            partition.by_operation.count(op) for op in profile.operations))
    if profile.subject_exact is not None:
        bounds.append(partition.by_subject_name.count(profile.subject_exact))
    elif profile.subject_like is not None:
        bounds.append(partition.by_subject_name.count_like(
            profile.subject_like))
    if profile.object_exact is not None and profile.event_type is not None:
        bounds.append(partition.by_object_value.count(
            (profile.event_type, profile.object_exact)))
    elif profile.object_like is not None and profile.event_type is not None:
        bounds.append(sum(
            len(partition.by_object_value.lookup(key))
            for key in partition.by_object_value.keys()
            if key[0] == profile.event_type and isinstance(key[1], str)
            and like_match(profile.object_like, key[1])))
    bound = min(bounds)
    if window is not None and bound:
        in_window = partition.time_index.count_range(window.start, window.end)
        # Scale by the window's share of the partition, assuming the
        # constrained attribute is independent of time within one bucket.
        bound = min(bound, max(1, round(bound * in_window / total))
                    if in_window else 0)
    return bound


def _estimate_windowed(partition: Partition, profile: PatternProfile,
                       window: Window,
                       bindings: "IdentityBindings | None") -> int:
    """Histogram-based windowed estimate (skew-aware)."""
    total = len(partition)
    in_window = partition.time_index.count_range(window.start, window.end)
    if in_window == 0:
        return 0
    bounds = [in_window]
    if bindings is not None:
        if bindings.subjects is not None:
            bounds.append(_binding_bound(
                partition.by_subject_id.count_many(
                    bindings.subjects, compact=bindings.compact),
                in_window, total, windowed=True))
        if bindings.objects is not None:
            bounds.append(_binding_bound(
                partition.by_object_id.count_many(
                    bindings.objects, compact=bindings.compact),
                in_window, total, windowed=True))
    stats = partition.stats
    for key, events_factory in _profile_postings(partition, profile):
        histogram = stats.histogram(
            key, total, lambda fetch=events_factory: [
                event.ts for event in fetch()])
        bounds.append(histogram.estimate_range(window.start, window.end))
    return min(bounds)


def estimate_total(partitions: list[Partition], profile: PatternProfile,
                   window: Window | None,
                   bindings: "IdentityBindings | None" = None,
                   histograms: bool = True) -> int:
    """Total estimated cardinality over a pruned partition list."""
    return sum(estimate_partition(p, profile, window, bindings, histograms)
               for p in partitions)
