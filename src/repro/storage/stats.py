"""Storage statistics feeding the engine's pruning-power estimation.

The optimized scheduler (§2.3) prioritizes event patterns "with higher
pruning power".  Pruning power is the inverse of estimated match
cardinality, and that estimate comes from the per-partition posting-index
cardinalities collected here: how many events carry a given operation, event
type, subject name, or object value.

Estimates are exact for exact-match constraints (they read posting sizes)
and computed by key-space matching for LIKE patterns; both are cheap because
the distinct-value vocabulary of audit data is small relative to event
volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.model.timeutil import Window
from repro.storage.indexes import like_match
from repro.storage.partition import Partition

if TYPE_CHECKING:
    from repro.storage.backend import IdentityBindings


@dataclass(frozen=True, slots=True)
class PatternProfile:
    """The index-visible parts of one event pattern's data query.

    ``subject_exact``/``subject_like`` constrain the subject executable
    name; ``object_exact``/``object_like`` constrain the object's default
    attribute.  ``operations`` is the allowed operation set (possibly from a
    ``read || write`` alternation) and ``event_type`` the object type.
    """

    event_type: str | None
    operations: frozenset[str] | None
    subject_exact: str | None = None
    subject_like: str | None = None
    object_exact: str | None = None
    object_like: str | None = None


def estimate_partition(partition: Partition, profile: PatternProfile,
                       window: Window | None,
                       bindings: "IdentityBindings | None" = None) -> int:
    """Estimated number of events in this partition matching the profile.

    The estimate is the minimum across the independent per-index counts —
    the tightest single-index bound, which is exactly the candidate-list
    size the executor would fetch.  The time dimension scales the bound by
    the window's overlap with the partition's population.  Propagated
    identity bindings contribute their exact posting counts, so
    pruning-power ordering reacts to binding propagation.
    """
    total = len(partition)
    if total == 0:
        return 0
    bounds = [total]
    if bindings is not None:
        if bindings.subjects is not None:
            bounds.append(partition.by_subject_id.count_many(
                bindings.subjects, compact=bindings.compact))
        if bindings.objects is not None:
            bounds.append(partition.by_object_id.count_many(
                bindings.objects, compact=bindings.compact))
    if profile.event_type is not None and profile.operations:
        bounds.append(sum(
            partition.by_type_operation.count((profile.event_type, op))
            for op in profile.operations))
    elif profile.event_type is not None:
        bounds.append(partition.by_type.count(profile.event_type))
    elif profile.operations:
        bounds.append(sum(
            partition.by_operation.count(op) for op in profile.operations))
    if profile.subject_exact is not None:
        bounds.append(partition.by_subject_name.count(profile.subject_exact))
    elif profile.subject_like is not None:
        bounds.append(partition.by_subject_name.count_like(
            profile.subject_like))
    if profile.object_exact is not None and profile.event_type is not None:
        bounds.append(partition.by_object_value.count(
            (profile.event_type, profile.object_exact)))
    elif profile.object_like is not None and profile.event_type is not None:
        bounds.append(sum(
            len(partition.by_object_value.lookup(key))
            for key in partition.by_object_value.keys()
            if key[0] == profile.event_type and isinstance(key[1], str)
            and like_match(profile.object_like, key[1])))
    bound = min(bounds)
    if window is not None and bound:
        in_window = partition.time_index.count_range(window.start, window.end)
        # Scale by the window's share of the partition, assuming the
        # constrained attribute is independent of time within one bucket.
        bound = min(bound, max(1, round(bound * in_window / total))
                    if in_window else 0)
    return bound


def estimate_total(partitions: list[Partition], profile: PatternProfile,
                   window: Window | None,
                   bindings: "IdentityBindings | None" = None) -> int:
    """Total estimated cardinality over a pruned partition list."""
    return sum(estimate_partition(p, profile, window, bindings)
               for p in partitions)
