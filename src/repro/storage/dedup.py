"""Data deduplication: entity interning and repeated-event merging.

§2.1 lists "data deduplication and in-memory indexes" among the write-path
optimizations.  Two mechanisms are implemented:

* :class:`EntityInterner` — every entity is stored once; events reference
  the canonical instance.  This both saves memory and makes identity joins
  (shared entity variables across event patterns) pointer comparisons.
* :class:`EventMerger` — consecutive events with the same
  (subject, operation, object) within a merge window collapse into one
  event whose ``amount`` is the sum.  This mirrors the CCS'16
  dependency-preserving reduction the paper cites [11]: merging repeated
  identical accesses never changes reachability in the dependency graph.
"""

from __future__ import annotations

from repro.model.entities import Entity
from repro.model.events import Event


class EntityInterner:
    """Canonicalizes entities on their identity key."""

    __slots__ = ("_table", "hits", "misses")

    def __init__(self) -> None:
        self._table: dict[tuple, Entity] = {}
        self.hits = 0
        self.misses = 0

    def intern(self, entity: Entity) -> Entity:
        key = entity.identity
        existing = self._table.get(key)
        if existing is not None:
            self.hits += 1
            return existing
        self._table[key] = entity
        self.misses += 1
        return entity

    def lookup(self, identity: tuple) -> Entity | None:
        return self._table.get(identity)

    def __len__(self) -> int:
        return len(self._table)

    @property
    def dedup_ratio(self) -> float:
        """Fraction of intern calls answered from the table."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ReplayDeduper:
    """Idempotent-replay filter: admit each event exactly once.

    Crash recovery composes a checkpoint snapshot with a WAL replay, and
    the two can overlap: a crash between the manifest swap and the WAL
    reset leaves pre-checkpoint batches in the log, a duplicated batch
    can be appended twice, and ``recover()`` itself may run over a store
    that already applied a suffix.  The deduper makes all of those safe:
    events are keyed on ``(id, agentid, ts)`` — the immutable identity a
    WAL round-trip preserves — and only the first occurrence is admitted.
    """

    __slots__ = ("_seen", "duplicates")

    def __init__(self) -> None:
        self._seen: set[tuple[int, int, float]] = set()
        self.duplicates = 0

    def admit(self, event: Event) -> bool:
        key = (event.id, event.agentid, event.ts)
        if key in self._seen:
            self.duplicates += 1
            return False
        self._seen.add(key)
        return True

    def admit_batch(self, events: list[Event]) -> list[Event]:
        """The batch form: the admitted subsequence, order preserved."""
        admit = self.admit
        return [event for event in events if admit(event)]

    def __len__(self) -> int:
        return len(self._seen)


class EventMerger:
    """Merges bursts of identical events within a time window.

    The merger is streaming: feed events in rough timestamp order through
    :meth:`push`, collect merged events, then :meth:`flush` at the end.  An
    event is merged into a pending one when subject, object, operation, and
    failcode all match and the gap is below ``merge_window`` seconds.
    """

    def __init__(self, merge_window: float = 1.0) -> None:
        self.merge_window = merge_window
        self._pending: dict[tuple, Event] = {}
        self.merged_away = 0

    def _key(self, event: Event) -> tuple:
        return (event.agentid, event.subject.identity, event.operation,
                event.object.identity, event.failcode)

    def push(self, event: Event) -> list[Event]:
        """Offer one event; returns events that are now final."""
        key = self._key(event)
        pending = self._pending.get(key)
        emitted: list[Event] = []
        if pending is not None:
            if event.ts - pending.ts <= self.merge_window:
                merged = Event(
                    id=pending.id,
                    ts=pending.ts,
                    agentid=pending.agentid,
                    operation=pending.operation,
                    subject=pending.subject,
                    object=pending.object,
                    amount=pending.amount + event.amount,
                    failcode=pending.failcode,
                )
                self._pending[key] = merged
                self.merged_away += 1
                return emitted
            emitted.append(pending)
        self._pending[key] = event
        return emitted

    def flush(self) -> list[Event]:
        """Emit all still-pending events (call once at end of stream)."""
        emitted = sorted(self._pending.values(), key=lambda e: (e.ts, e.id))
        self._pending.clear()
        return emitted
