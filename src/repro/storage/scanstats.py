"""Per-partition scan statistics: timestamp histograms, frequency sketches.

The scheduler's pruning-power ordering is only as good as the cardinality
estimates behind it, and until this module those estimates assumed events
were *time-uniform inside a partition*: a window covering 40% of a
bucket's events was assumed to cover 40% of any constrained subset too.
System-monitoring data is exactly the workload where that fails — a
process's activity clusters in bursts, so "bulk.exe's writes" can live
entirely outside a window that still holds most of the bucket.

Two structures fix the two halves of the problem:

* :class:`EquiDepthHistogram` — an equi-depth (quantile-boundary)
  histogram over the timestamps of one *constrained subset* (a posting
  list, a dictionary-code group).  Windowed estimates interpolate inside
  at most two boundary buckets, so the error is bounded by two buckets of
  mass wherever the data clusters.
* :class:`FrequencySketch` — a count-min sketch over identity keys, for
  backends that have no in-memory posting index to count propagated
  binding sets against (the SQLite backend caps its estimates with it
  when a binding set is too large to compile into SQL).

Histograms are built lazily and memoized per ``(dimension, key)`` in a
:class:`PartitionStatistics` owned by each partition; a partition that
grew since a histogram was built rebuilds it on next use.
"""

from __future__ import annotations

import bisect
from array import array
from typing import Callable, Iterable, Sequence

#: Bucket count for equi-depth histograms.  32 quantile boundaries bound
#: the windowed-estimate error at ~6% of the keyed subset's mass (one
#: partial bucket per window edge) while costing 33 floats per key.
HISTOGRAM_BUCKETS = 32


class EquiDepthHistogram:
    """Equi-depth histogram over one set of timestamps.

    Bucket ``k`` covers the closed span ``lows[k] .. highs[k]`` and holds
    ``counts[k]`` events; both bounds are actual data timestamps, so the
    quantile boundaries adapt to clustering instead of splitting the span
    evenly, and the gaps *between* buckets are known-empty (a run of
    duplicated timestamps collapses into one over-full, zero-width
    bucket — a point mass).
    """

    __slots__ = ("lows", "highs", "counts", "total")

    def __init__(self, timestamps: Iterable[float],
                 buckets: int = HISTOGRAM_BUCKETS) -> None:
        ts = sorted(timestamps)
        total = len(ts)
        self.total = total
        if total == 0:
            self.lows: Sequence[float] = ()
            self.highs: Sequence[float] = ()
            self.counts: Sequence[int] = ()
            return
        depth = max(1, -(-total // buckets))  # ceil division
        lows, highs, counts = [], [], []
        index = 0
        while index < total:
            upto = min(total, index + depth)
            high = ts[upto - 1]
            # Extend over duplicates so bucket spans never overlap.
            while upto < total and ts[upto] == high:
                upto += 1
            lows.append(ts[index])
            highs.append(high)
            counts.append(upto - index)
            index = upto
        self.lows = array("d", lows)
        self.highs = array("d", highs)
        self.counts = array("q", counts)

    def estimate_range(self, start: float, end: float) -> int:
        """Estimated events with ``start <= ts < end`` (half-open).

        Fully covered buckets contribute exactly; the at-most-two buckets
        straddling the window edges contribute a linear fraction of their
        width.  The estimate is never 0 while a stored timestamp lies in
        the range: bucket bounds are real data points, so a window
        containing one returns at least 1 — the invariant the
        scheduler's "zero estimate implies no matches" contract rests on.
        """
        if self.total == 0 or end <= start:
            return 0
        lows, highs, counts = self.lows, self.highs, self.counts
        if end <= lows[0] or start > highs[-1]:
            return 0
        mass = 0.0
        first = bisect.bisect_left(highs, start)
        for k in range(first, len(counts)):
            low, high = lows[k], highs[k]
            if low >= end:
                break
            if low == high:  # point mass (duplicated timestamp run)
                if start <= low < end:
                    mass += counts[k]
                continue
            lo = max(low, start)
            hi = min(high, end)
            if hi > lo:
                mass += counts[k] * (hi - lo) / (high - low)
        if mass > 0:
            return max(1, round(mass))
        # The continuous overlap missed everything, but bucket bounds are
        # real data points: a window containing one holds >= 1 event.
        for k in range(first, len(counts)):
            if lows[k] >= end:
                break
            if start <= lows[k] < end or start <= highs[k] < end:
                return 1
        return 0


class PartitionStatistics:
    """Lazily built, memoized histograms for one partition.

    Keys are ``(dimension, value)`` tuples chosen by the caller; the
    factory produces the timestamps of that keyed subset.  Entries built
    against an older partition size are rebuilt transparently, so the
    append-mostly write path never pays for maintenance.
    """

    __slots__ = ("_histograms", "_built_at")

    def __init__(self) -> None:
        self._histograms: dict[object, EquiDepthHistogram] = {}
        self._built_at: dict[object, int] = {}

    def histogram(self, key: object, size_now: int,
                  timestamps: Callable[[], Iterable[float]],
                  ) -> EquiDepthHistogram:
        cached = self._histograms.get(key)
        if cached is not None and self._built_at.get(key) == size_now:
            return cached
        built = EquiDepthHistogram(timestamps())
        self._histograms[key] = built
        self._built_at[key] = size_now
        return built

    def __len__(self) -> int:
        return len(self._histograms)


#: Count-min geometry: 3 rows x 1024 counters.  Collisions only ever
#: *over*-count, so sketch-capped estimates keep the "zero implies empty"
#: soundness; 3 independent rows push the expected overestimate on audit
#: vocabularies (thousands of identities) well under one event per key.
SKETCH_DEPTH = 3
SKETCH_WIDTH = 1024


class FrequencySketch:
    """Count-min sketch over hashable keys (identity-key frequencies).

    ``estimate`` never under-counts; ``estimate_total`` sums per-key
    estimates for a propagated binding set in O(|keys|), independent of
    the stored vocabulary — the property the SQLite backend needs when a
    binding set blows past its SQL host-parameter budget.
    """

    __slots__ = ("_rows", "_width", "total")

    def __init__(self, width: int = SKETCH_WIDTH,
                 depth: int = SKETCH_DEPTH) -> None:
        self._width = width
        self._rows = [array("q", bytes(8 * width)) for _ in range(depth)]
        self.total = 0

    def _indexes(self, key: object) -> list[int]:
        # Kirsch–Mitzenmacher double hashing: one 64-bit hash split into
        # base and odd step gives per-row indexes that collide
        # independently — hashing (seed, key) tuples does not, which
        # would make the depth rows redundant.
        h = hash(key) & 0xFFFFFFFFFFFFFFFF
        mixed = (h * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        step = (mixed >> 17) | 1
        width = self._width
        return [(h + seed * step) % width
                for seed in range(len(self._rows))]

    def add(self, key: object, count: int = 1) -> None:
        for row, index in zip(self._rows, self._indexes(key)):
            row[index] += count
        self.total += count

    def estimate(self, key: object) -> int:
        return min(row[index]
                   for row, index in zip(self._rows, self._indexes(key)))

    def estimate_total(self, keys: Iterable[object]) -> int:
        """Upper bound on the events carrying any of ``keys``."""
        return min(self.total, sum(self.estimate(key) for key in keys))
