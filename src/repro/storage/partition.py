"""Time- and space-partitioned storage: the hypertable.

System monitoring data exhibits strong spatial (host) and temporal
properties, and §2.1 exploits this by partitioning storage along both
dimensions ("time and space partitioning, and hypertable").  A
:class:`Hypertable` maps a partition key ``(agentid, time bucket)`` to a
:class:`Partition`; queries prune partitions by their global time window and
agent constraints before touching any event.

Each partition maintains the in-memory indexes the engine's data queries
use: a time index plus posting indexes on operation, event type, subject
executable name, and the object's default attribute.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from repro.errors import StorageError
from repro.model.events import Event
from repro.model.timeutil import SECONDS_PER_DAY, SPAN_EPSILON, Window
from repro.storage.indexes import PostingIndex, TimeIndex
from repro.storage.scanstats import PartitionStatistics

PartitionKey = tuple[int, int]


class Partition:
    """All events of one agent within one time bucket, fully indexed."""

    __slots__ = ("key", "time_index", "by_operation", "by_type",
                 "by_type_operation", "by_subject_name", "by_object_value",
                 "by_subject_id", "by_object_id", "stats")

    def __init__(self, key: PartitionKey) -> None:
        self.key = key
        # Lazily built equi-depth timestamp histograms per posting key,
        # feeding the skew-aware windowed estimates in stats.py.
        self.stats = PartitionStatistics()
        self.time_index = TimeIndex()
        self.by_operation = PostingIndex()
        self.by_type = PostingIndex()
        self.by_type_operation = PostingIndex()
        self.by_subject_name = PostingIndex()
        # Keyed by (event_type, value) because the default attribute differs
        # per object type (file name vs destination IP vs exe name).
        self.by_object_value = PostingIndex()
        # Keyed by entity identity tuples: the access paths behind the
        # scheduler's identity-binding pushdown.
        self.by_subject_id = PostingIndex()
        self.by_object_id = PostingIndex()

    def add(self, event: Event) -> None:
        self.time_index.add(event)
        etype = event.event_type
        self.by_operation.add(event.operation, event)
        self.by_type.add(etype, event)
        self.by_type_operation.add((etype, event.operation), event)
        self.by_subject_name.add(event.subject.exe_name, event)
        self.by_object_value.add((etype, event.object.default_attribute),
                                 event)
        self.by_subject_id.add(event.subject.identity, event)
        self.by_object_id.add(event.object.identity, event)

    def events(self) -> list[Event]:
        return self.time_index.all()

    def events_in(self, window: Window) -> list[Event]:
        return self.time_index.range(window.start, window.end)

    @property
    def min_ts(self) -> float:
        return self.time_index.min_ts

    @property
    def max_ts(self) -> float:
        return self.time_index.max_ts

    def __len__(self) -> int:
        return len(self.time_index)


class Hypertable:
    """Partitioned event table keyed by ``(agentid, time bucket)``.

    ``bucket_seconds`` controls the temporal granularity (one day by
    default, matching the paper's per-day hypertable chunks).
    """

    def __init__(self, bucket_seconds: float = SECONDS_PER_DAY) -> None:
        if bucket_seconds <= 0:
            raise StorageError("bucket size must be positive")
        self.bucket_seconds = bucket_seconds
        self._partitions: dict[PartitionKey, Partition] = {}
        self._count = 0
        self._min_ts = math.inf
        self._max_ts = -math.inf

    def _bucket(self, ts: float) -> int:
        return int(ts // self.bucket_seconds)

    def key_for(self, event: Event) -> PartitionKey:
        return (event.agentid, self._bucket(event.ts))

    def add(self, event: Event) -> None:
        key = self.key_for(event)
        partition = self._partitions.get(key)
        if partition is None:
            partition = Partition(key)
            self._partitions[key] = partition
        partition.add(event)
        self._count += 1
        if event.ts < self._min_ts:
            self._min_ts = event.ts
        if event.ts > self._max_ts:
            self._max_ts = event.ts

    def add_all(self, events: Iterable[Event]) -> None:
        for event in events:
            self.add(event)

    def partitions(self) -> Iterator[Partition]:
        return iter(self._partitions.values())

    def prune(self, window: Window | None,
              agentids: set[int] | None) -> list[Partition]:
        """Partitions that can possibly contain matching events.

        This is the partition-pruning step every data query starts with:
        only partitions whose agent is allowed and whose time bucket
        intersects the window are consulted.  Inside an overlapping
        bucket, the time index's min/max zone map prunes partitions whose
        *actual* data span still misses the window — the case propagated
        temporal bounds create, narrowing a query to a sliver of one
        bucket.
        """
        selected: list[Partition] = []
        for (agentid, bucket), partition in self._partitions.items():
            if agentids is not None and agentid not in agentids:
                continue
            if window is not None:
                bucket_start = bucket * self.bucket_seconds
                bucket_end = bucket_start + self.bucket_seconds
                if bucket_end <= window.start or bucket_start >= window.end:
                    continue
                if (partition.max_ts < window.start
                        or partition.min_ts >= window.end):
                    continue
            selected.append(partition)
        return selected

    @property
    def agentids(self) -> set[int]:
        return {agentid for agentid, _bucket in self._partitions}

    @property
    def span(self) -> Window | None:
        """The closed time span of stored data, or None when empty."""
        if self._count == 0:
            return None
        # Padded so the half-open window includes the final event.
        return Window(self._min_ts, self._max_ts + SPAN_EPSILON)

    def __len__(self) -> int:
        return self._count

    @property
    def partition_count(self) -> int:
        return len(self._partitions)
