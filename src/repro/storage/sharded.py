"""The sharded scatter-gather execution tier (coordinator side).

:class:`ShardedStore` hash-partitions events by ``agentid`` across N
worker processes (``agentid % shards``), each hosting one ordinary
registered single-node backend behind the pickle RPC loop of
:mod:`repro.storage.shardrpc`.  The coordinator implements the full
:class:`~repro.storage.backend.StorageBackend` protocol by scattering
each scan to the relevant shards — the whole
:class:`~repro.storage.backend.ScanSpec` crosses the boundary, so every
single-node pushdown (window, agentids, bindings, bounds, projection,
order) applies *inside* each shard — and gathering:

* ``estimate`` sums the shard estimates.  Shards partition the event
  space disjointly and each shard runs the same per-partition
  statistics a single node would over the same partitions, so the sum
  is exactly the single-node estimate for row/columnar backends and the
  scheduler's pruning-power ordering is unchanged;
* ``select``/``candidates``/``scan`` merge per-shard results under the
  canonical ``(ts, id)`` comparator.  With a pushed
  :class:`~repro.storage.backend.ScanOrder` limit each shard returns
  its local top-k and the coordinator heap-merges the global top-k —
  the per-partition union → ``heapq.nsmallest`` merge of
  ``columnar._scan_rows_ordered``, applied one level up;
* ``select_batches`` gathers projection-trimmed
  :class:`~repro.storage.shardrpc.WireBatch` columns (compacted
  dictionaries, only the projected columns) and rebuilds
  :class:`~repro.storage.backend.ColumnBatch` values, trimming to the
  global top-k the same way.

**Shard pruning:** a spec whose ``agentids`` set maps onto a strict
subset of the shards never round-trips to the others — routing and
pruning use the same hash, so a shard that cannot own a requested agent
cannot hold a matching event.  (Identity *bindings* do not prune
shards: nothing guarantees a bound entity's agentid equals the event's
routing agentid, and bindings stay a per-shard pushdown hint.)

**Failure model:** a worker that dies mid-request (crash, OOM kill,
chaos ``kill`` fault) surfaces as :class:`ShardFailedError` after the
round drains — never a hang, never a silently partial result.  The dead
worker is restarted empty so the store stays available; restoring its
data is the durability tier's job (see ROADMAP: sharded standing-query
state + WAL-backed shard recovery is the named follow-up).

Writes route per shard: ``ingest`` splits each batch by routing hash
and pipelines one sub-batch RPC per shard (send all, then collect
acks), which is what lets stream ingest through
:meth:`~repro.stream.bus.EventBus.attach_store` parallelize across
worker processes.  The coordinator allocates event ids and tracks
``span``/``agentids``/``len`` locally on the write path, so the
scheduler's introspection never pays an RPC.
"""

from __future__ import annotations

import heapq
import threading
import weakref
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import StorageError
from repro.model.entities import Entity, ProcessEntity
from repro.model.events import Event, validate_operation
from repro.model.timeutil import SECONDS_PER_DAY, SPAN_EPSILON, Window
from repro.obs.clock import monotonic
from repro.obs.metrics import REGISTRY
from repro.storage.backend import (AccessPathInfo, ColumnBatch, ScanSpec,
                                   resolve_spec)
from repro.storage.faults import Fault
from repro.storage.shardrpc import (SPAWN_CONTEXT, WireBatch, recv_msg,
                                    send_msg, worker_main)
from repro.storage.stats import PatternProfile

if TYPE_CHECKING:
    from repro.engine.filters import CompiledPredicate
    from repro.obs.metrics import MetricsSnapshot

#: Default worker count when a shard count is not given explicitly.
DEFAULT_SHARDS = 2

#: Seconds a graceful shutdown waits per worker before terminating it.
_SHUTDOWN_GRACE = 5.0


class ShardFailedError(StorageError):
    """A shard worker died mid-request (no results were returned)."""

    def __init__(self, message: str, shards: Sequence[int] = ()) -> None:
        super().__init__(message)
        self.shards = tuple(shards)


def parse_backend_name(name: str) -> tuple[str, int]:
    """Parse ``sharded`` / ``sharded(inner)`` / ``sharded(inner,N)``."""
    if name == "sharded":
        return "row", DEFAULT_SHARDS
    if not (name.startswith("sharded(") and name.endswith(")")):
        raise StorageError(f"not a sharded backend name: {name!r}")
    inner = name[len("sharded("):-1]
    shards = DEFAULT_SHARDS
    if "," in inner:
        inner, _, count = inner.partition(",")
        inner = inner.strip()
        try:
            shards = int(count)
        except ValueError:
            raise StorageError(
                f"bad shard count in backend name {name!r}") from None
    return inner or "row", shards


def register_sharded(register) -> None:
    """Hook for the backend registry: the parameterized sharded family."""
    for inner in ("row", "columnar", "sqlite"):
        register(f"sharded({inner})",
                 _factory(inner))
    register("sharded", _factory("row"))


def _factory(inner: str):
    def build(bucket_seconds: float = SECONDS_PER_DAY) -> "ShardedStore":
        return ShardedStore(shards=DEFAULT_SHARDS, backend=inner,
                            bucket_seconds=bucket_seconds)
    return build


class _Shard:
    """One worker process + its coordinator-side pipe endpoint."""

    __slots__ = ("index", "backend", "bucket_seconds", "process", "conn")

    def __init__(self, index: int, backend: str,
                 bucket_seconds: float) -> None:
        self.index = index
        self.backend = backend
        self.bucket_seconds = bucket_seconds
        parent_conn, child_conn = SPAWN_CONTEXT.Pipe()
        self.process = SPAWN_CONTEXT.Process(
            target=worker_main, args=(child_conn, backend, bucket_seconds),
            name=f"aiql-shard-{index}", daemon=True)
        self.process.start()
        child_conn.close()
        self.conn = parent_conn

    def send(self, method: str, args: tuple) -> None:
        send_msg(self.conn, (method, args))

    def recv(self) -> tuple[str, object]:
        """One ``("ok", value)`` / ``("err", exception)`` reply frame.

        The status stays explicit rather than re-raising here: a worker
        legitimately answers with ``OSError`` subclasses (injected
        ``FaultTriggered``, say), and the coordinator must never confuse
        an *answered* error with transport death (``EOFError``/raw
        ``OSError`` out of ``recv_bytes``), which alone means the worker
        is gone and warrants a restart.
        """
        return recv_msg(self.conn)

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self, graceful: bool = True) -> None:
        if graceful and self.alive:
            try:
                self.send("shutdown", ())
                if self.conn.poll(_SHUTDOWN_GRACE):
                    recv_msg(self.conn)
            except (OSError, EOFError, BrokenPipeError):
                pass
        self.process.join(timeout=_SHUTDOWN_GRACE if graceful else 0.1)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=_SHUTDOWN_GRACE)
        try:
            self.conn.close()
        except OSError:
            pass


def _finalize_shards(shards: list["_Shard"]) -> None:
    """GC/exit safety net: never leak worker processes."""
    for shard in shards:
        try:
            shard.stop(graceful=False)
        except Exception:
            pass


class ShardedStore:
    """Agent-hash partitioned scatter-gather over N worker backends.

    ``backend`` names the single-node backend every worker hosts; any
    registered non-sharded name works (``row``/``columnar``/``sqlite``).
    The instance is thread-safe: the engine's sub-query pool may call
    scans concurrently, and one coordinator lock serializes RPC rounds
    (workers still execute their shard's scan in parallel *within* a
    round — that is where the speedup lives).
    """

    def __init__(self, shards: int = DEFAULT_SHARDS, backend: str = "row",
                 bucket_seconds: float = SECONDS_PER_DAY) -> None:
        if shards < 1:
            raise StorageError("shard count must be at least 1")
        if backend.startswith("sharded"):
            raise StorageError("sharded backends do not nest")
        self.backend_name = f"sharded({backend})"
        self.shard_backend = backend
        self._bucket_seconds = bucket_seconds
        # Probe the hosted backend *before* spawning anything: an unknown
        # name fails fast here instead of crashing N fresh workers, and
        # the probe decides the batch surface — the vectorized executor
        # feature-detects select_batches via getattr, so a sharded(row)
        # store must look exactly as batch-less as row itself does.
        from repro.storage.backend import create_backend
        probe = create_backend(backend, bucket_seconds)
        self._shards = [_Shard(i, backend, bucket_seconds)
                        for i in range(shards)]
        self._lock = threading.Lock()
        self._count = 0
        self._max_id = 0
        self._min_ts = float("inf")
        self._max_ts = float("-inf")
        self._agentids: set[int] = set()
        self._closed = False
        self.restarts = 0
        #: Auto-restarts per shard index — a flapping worker shows up
        #: here, where a single total would hide *which* shard flaps.
        self.restarts_by_shard: dict[int, int] = {}
        #: RPC rounds skipped entirely by shard pruning (test observability).
        self.pruned_rounds = 0
        self._finalizer = weakref.finalize(self, _finalize_shards,
                                           self._shards)
        if hasattr(probe, "select_batches"):
            self.select_batches = self._select_batches

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of(self, agentid: int) -> int:
        """The worker that owns every event of ``agentid``."""
        return agentid % len(self._shards)

    def _relevant(self, spec: ScanSpec) -> list[int]:
        """Shard indexes a spec can touch (the shard-pruning rule).

        Only the spatial restriction prunes: routing hashes the event's
        ``agentid``, so ``spec.agentids`` maps exactly onto the shards
        that could hold a match.  Everything else (bindings, bounds,
        window) stays a per-shard pushdown.
        """
        if spec.agentids is None:
            return list(range(len(self._shards)))
        return sorted({self.shard_of(agentid) for agentid in spec.agentids})

    # ------------------------------------------------------------------
    # RPC rounds
    # ------------------------------------------------------------------
    def _round(self, targets: list[int], method: str, args_for,
               ) -> dict[int, object]:
        """One pipelined scatter-gather: send to all targets, then drain.

        Every targeted shard gets exactly one reply slot; a worker that
        died is recorded, the remaining replies still drain (connection
        hygiene — the next round must find every pipe empty), dead
        workers restart empty, and the round raises
        :class:`ShardFailedError`.  Worker-side exceptions re-raise
        coordinator-side after the drain.
        """
        self._check_open()
        started = monotonic()
        shards = [self._shards[i] for i in targets]
        dead: list[int] = []
        app_error: BaseException | None = None
        replies: dict[int, object] = {}
        for shard in shards:
            try:
                shard.send(method, args_for(shard.index))
            except (OSError, BrokenPipeError, ValueError):
                dead.append(shard.index)
        for shard in shards:
            if shard.index in dead:
                continue
            try:
                status, value = shard.recv()
            except (EOFError, OSError, BrokenPipeError):
                dead.append(shard.index)
                continue
            # Per-shard round-trip: scatter start → this shard's reply
            # drained.  Pipelined rounds overlap worker execution, so
            # later drains include the earlier ones' wait — this is the
            # latency a query *experiences* per shard, which is the SLO
            # signal, not the worker's service time.
            REGISTRY.histogram(
                f"shard.rpc.seconds[shard={shard.index}]").observe(
                monotonic() - started)
            if status == "err":  # answered error: worker is fine
                if app_error is None:
                    app_error = value
            else:
                replies[shard.index] = value
        REGISTRY.counter(f"shard.rpc.rounds[method={method}]").inc()
        if dead:
            for index in dead:
                self._restart(index)
            raise ShardFailedError(
                f"shard worker(s) {sorted(dead)} died during {method!r}; "
                f"restarted empty (no partial results were returned)",
                shards=sorted(dead))
        if app_error is not None:
            raise app_error
        return replies

    def _scatter(self, spec: ScanSpec, method: str, args: tuple,
                 ) -> list[object]:
        """Spec-pruned round with identical args; replies in shard order."""
        targets = self._relevant(spec)
        pruned = len(self._shards) - len(targets)
        self.pruned_rounds += pruned
        if pruned:
            REGISTRY.counter("shard.pruned_rounds").inc(pruned)
        if not targets:
            return []
        with self._lock:
            replies = self._round(targets, method, lambda index: args)
        return [replies[index] for index in targets]

    def _restart(self, index: int) -> None:
        shard = self._shards[index]
        shard.stop(graceful=False)
        self._shards[index] = _Shard(index, shard.backend,
                                     shard.bucket_seconds)
        self.restarts += 1
        self.restarts_by_shard[index] = \
            self.restarts_by_shard.get(index, 0) + 1
        REGISTRY.counter(f"shard.restarts[shard={index}]").inc()

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("sharded store is closed")

    # ------------------------------------------------------------------
    # Write path (per-shard batch routing)
    # ------------------------------------------------------------------
    def record(self, ts: float, agentid: int, operation: str,
               subject: ProcessEntity, obj: Entity, amount: int = 0,
               failcode: int = 0) -> Event:
        """Build one event, route it to its shard, and return it.

        Ids allocate coordinator-side (monotonic across shards) so the
        canonical ``(ts, id)`` tiebreak stays globally meaningful;
        entity interning happens worker-side where the entities live.
        """
        operation = validate_operation(obj.entity_type, operation)
        event = Event(id=self._max_id + 1, ts=ts, agentid=agentid,
                      operation=operation, subject=subject, object=obj,
                      amount=amount, failcode=failcode)
        self.ingest([event])
        return event

    def ingest(self, events: Iterable[Event]) -> int:
        """Split a batch by routing hash; one pipelined sub-batch per shard.

        The write-path tracking (count, span, agentids, max id) updates
        only for acknowledged sub-batches, so a failed round never
        counts events the dead shard lost.
        """
        batch = list(events)
        if not batch:
            return 0
        per_shard: dict[int, list[Event]] = {}
        for event in batch:
            per_shard.setdefault(self.shard_of(event.agentid),
                                 []).append(event)
        targets = sorted(per_shard)
        with self._lock:
            try:
                replies = self._round(targets, "ingest",
                                      lambda index: (per_shard[index],))
            except ShardFailedError as failure:
                for index in targets:
                    if index not in failure.shards:
                        self._track(per_shard[index])
                raise
            for index in targets:
                self._track(per_shard[index])
        return sum(replies.values())

    def _track(self, batch: list[Event]) -> None:
        self._count += len(batch)
        for event in batch:
            if event.id > self._max_id:
                self._max_id = event.id
            if event.ts < self._min_ts:
                self._min_ts = event.ts
            if event.ts > self._max_ts:
                self._max_ts = event.ts
            self._agentids.add(event.agentid)

    # ------------------------------------------------------------------
    # Read path (scatter + (ts, id) gather)
    # ------------------------------------------------------------------
    def scan(self, window: Window | None = None,
             agentids: set[int] | None = None) -> list[Event]:
        spec = ScanSpec(window=window,
                        agentids=(frozenset(agentids)
                                  if agentids is not None else None))
        merged: list[Event] = []
        for events in self._scatter(spec, "scan", (window, agentids)):
            merged.extend(events)
        merged.sort(key=lambda e: (e.ts, e.id))
        return merged

    def candidates(self, profile: PatternProfile,
                   spec: ScanSpec | None = None) -> list[Event]:
        spec = resolve_spec(spec)
        if spec.unsatisfiable:
            return []
        merged: list[Event] = []
        for events in self._scatter(spec, "candidates", (profile, spec)):
            merged.extend(events)
        merged.sort(key=lambda e: (e.ts, e.id))
        return merged

    def select(self, profile: PatternProfile,
               predicate: "CompiledPredicate",
               spec: ScanSpec | None = None) -> tuple[list[Event], int]:
        """Scatter the spec, gather the global survivors.

        Each shard applies the identical spec, so with a pushed order
        limit every shard returns its own true first/last-k — the union
        provably contains the global winners and a bounded heap merge
        (``heapq.nsmallest`` under the order's ``(±ts, id)`` key)
        finishes the job, mirroring ``columnar._scan_rows_ordered`` one
        level up.  Only the predicate's atoms cross the wire; workers
        re-fuse them.
        """
        spec = resolve_spec(spec)
        if spec.unsatisfiable:
            return [], 0
        results = self._scatter(spec, "select",
                                (profile, predicate.atoms, spec))
        survivors: list[Event] = []
        fetched = 0
        for events, examined in results:
            survivors.extend(events)
            fetched += examined
        order, limit = spec.order, spec.effective_limit
        if order is not None:
            key = order.key()
            if limit is not None:
                return heapq.nsmallest(limit, survivors, key=key), fetched
            survivors.sort(key=key)
            return survivors, fetched
        survivors.sort(key=lambda e: (e.ts, e.id))
        if limit is not None:
            del survivors[limit:]
        return survivors, fetched

    def _select_batches(self, profile: PatternProfile,
                        predicate: "CompiledPredicate",
                        spec: ScanSpec | None = None,
                        ) -> tuple[list[ColumnBatch], int]:
        """Vectorized scatter: projection-aware top-k gather over batches.

        Workers ship only the projected columns with compacted
        dictionaries (:class:`~repro.storage.shardrpc.WireBatch`); with
        a pushed order limit the per-shard local top-k batches trim to
        the global top-k here, row-exactly.
        """
        spec = resolve_spec(spec)
        if spec.unsatisfiable:
            return [], 0
        results = self._scatter(spec, "select_batches",
                                (profile, predicate.atoms, spec))
        batches: list[ColumnBatch] = []
        fetched = 0
        for wire_batches, examined in results:
            batches.extend(_from_wire(wire) for wire in wire_batches)
            fetched += examined
        limit = spec.effective_limit
        if limit is not None and sum(len(b) for b in batches) > limit:
            descending = (spec.order.descending
                          if spec.order is not None else False)
            batches = _trim_batches(batches, descending, limit)
        return batches, fetched

    def estimate(self, profile: PatternProfile,
                 spec: ScanSpec | None = None) -> int:
        """Summed shard estimates (the merged-statistics gather).

        Shards hold disjoint partition sets of the same hypertable, and
        per-shard estimates sum over partitions, so the total equals the
        single-node estimate and the scheduler's pruning-power ordering
        is unchanged by sharding.
        """
        spec = resolve_spec(spec)
        if spec.unsatisfiable:
            return 0
        return sum(self._scatter(spec, "estimate", (profile, spec)))

    def access_path(self, profile: PatternProfile,
                    spec: ScanSpec | None = None) -> AccessPathInfo:
        spec = resolve_spec(spec)
        if spec.unsatisfiable:
            return AccessPathInfo("unsatisfiable", 0)
        infos = [info for info in
                 self._scatter(spec, "access_path", (profile, spec))
                 if info.name not in ("no-partitions", "unsatisfiable")]
        if not infos:
            return AccessPathInfo("no-partitions", 0)
        chosen: dict[str, int] = {}
        considered: dict[str, int] = {}
        for info in infos:
            chosen[info.name] = chosen.get(info.name, 0) + info.rows
            for name, rows in info.considered:
                considered[name] = considered.get(name, 0) + rows
        dominant = max(chosen, key=lambda name: (chosen[name], name))
        name = (dominant if len(chosen) == 1
                else f"{dominant}+{len(chosen) - 1} other")
        return AccessPathInfo(name=name, rows=sum(chosen.values()),
                              considered=tuple(sorted(considered.items())))

    # ------------------------------------------------------------------
    # Faults / lifecycle
    # ------------------------------------------------------------------
    def arm_fault(self, shard: int, fault: Fault) -> None:
        """Arm a worker-side fault point (the chaos harness' hook)."""
        with self._lock:
            self._round([shard], "arm_fault", lambda index: (fault,))

    def close(self) -> None:
        """Graceful shutdown: drain, ack, join every worker."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        self._stop_all()

    def _stop_all(self) -> None:
        for shard in self._shards:
            shard.stop(graceful=True)

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return len(self._shards)

    @property
    def span(self) -> Window | None:
        if self._count == 0:
            return None
        return Window(self._min_ts, self._max_ts + SPAN_EPSILON)

    @property
    def agentids(self) -> set[int]:
        return set(self._agentids)

    def _stats(self) -> list[dict]:
        with self._lock:
            replies = self._round(list(range(len(self._shards))),
                                  "stats", lambda index: ())
        return [replies[index] for index in sorted(replies)]

    def worker_metrics(self) -> "list[MetricsSnapshot]":
        """Each worker's metrics snapshot, in shard order.

        Plain mergeable data over the same RPC everything else uses;
        :meth:`repro.core.session.AiqlSession.metrics` folds these into
        the coordinator's own snapshot.
        """
        with self._lock:
            replies = self._round(list(range(len(self._shards))),
                                  "metrics", lambda index: ())
        return [replies[index] for index in sorted(replies)]

    def coordinator_stats(self) -> dict:
        """Merged introspection: shard health the workers can't see.

        Restart counts live here (a restarted worker has no memory of
        having died), keyed per shard so a flapping worker stands out.
        """
        return {
            "shards": len(self._shards),
            "backend": self.shard_backend,
            "restarts": self.restarts,
            "restarts_by_shard": dict(sorted(
                self.restarts_by_shard.items())),
            "pruned_rounds": self.pruned_rounds,
        }

    @property
    def entity_count(self) -> int:
        # Entity identities embed the agentid, so shard-local intern
        # tables are disjoint and the sum is the single-node count.
        return sum(stats["entity_count"] for stats in self._stats())

    @property
    def dedup_ratio(self) -> float:
        stats = self._stats()
        total = sum(s["events"] for s in stats)
        if total == 0:
            return 0.0
        # Intern-call volume is proportional to events per shard, so the
        # event-weighted mean of shard ratios is the global ratio.
        return sum(s["dedup_ratio"] * s["events"] for s in stats) / total

    @property
    def partition_count(self) -> int:
        return sum(stats["partition_count"] for stats in self._stats())

    @property
    def bucket_seconds(self) -> float:
        return self._bucket_seconds

    def __len__(self) -> int:
        return self._count


# ---------------------------------------------------------------------------
# Batch gather helpers
# ---------------------------------------------------------------------------

def _from_wire(wire: WireBatch) -> ColumnBatch:
    """Rebuild a ColumnBatch from its wire form.

    ``hydrate`` works only when the projection kept every column (the
    unprojected case); a projected batch cannot materialize full events
    across the shard boundary, and consumers that need them must widen
    the projection — the same contract the vectorized executor already
    honors by compiling getters for exactly its projected columns.
    """
    full = all(column is not None for column in
               (wire.ops, wire.subjects, wire.objects, wire.amounts,
                wire.failcodes))
    hydrate = None
    if full:
        def hydrate(i: int) -> Event:
            return Event(id=wire.ids[i], ts=wire.ts[i], agentid=wire.agentid,
                         operation=wire.op_names[wire.ops[i]],
                         subject=wire.entities[wire.subjects[i]],
                         object=wire.entities[wire.objects[i]],
                         amount=wire.amounts[i], failcode=wire.failcodes[i])
    return ColumnBatch(
        agentid=wire.agentid, ids=wire.ids, ts=wire.ts,
        ops=wire.ops, subjects=wire.subjects, objects=wire.objects,
        amounts=wire.amounts, failcodes=wire.failcodes,
        op_names=wire.op_names or (), entities=wire.entities,
        hydrate=hydrate)


def _trim_batches(batches: list[ColumnBatch], descending: bool,
                  k: int) -> list[ColumnBatch]:
    """Global top-k over gathered batches (the projection-aware merge).

    Mirrors ``columnar._scan_rows_ordered``'s pairs → ``nsmallest`` →
    regroup, with batches in place of partitions: every shard's local
    top-k rows flatten to ``(±ts, id)`` keys, the global k winners are
    heap-selected, and each surviving batch is re-sliced to its winning
    rows (ascending row order, preserving the per-batch ``(ts, id)``
    ascent batch consumers rely on).
    """
    pairs: list[tuple[float, int, int, int]] = []
    for which, batch in enumerate(batches):
        ts, ids = batch.ts, batch.ids
        if descending:
            pairs.extend((-ts[row], ids[row], which, row)
                         for row in range(len(batch)))
        else:
            pairs.extend((ts[row], ids[row], which, row)
                         for row in range(len(batch)))
    grouped: dict[int, list[int]] = {}
    for _ts, _eid, which, row in heapq.nsmallest(k, pairs):
        grouped.setdefault(which, []).append(row)
    trimmed: list[ColumnBatch] = []
    for which in sorted(grouped):
        batch = batches[which]
        rows = sorted(grouped[which])

        def take(column, rows=rows):
            return None if column is None else [column[row] for row in rows]

        source_hydrate = batch.hydrate
        hydrate = None
        if source_hydrate is not None:
            def hydrate(i: int, rows=rows, source=source_hydrate) -> Event:
                return source(rows[i])
        trimmed.append(ColumnBatch(
            agentid=batch.agentid,
            ids=[batch.ids[row] for row in rows],
            ts=[batch.ts[row] for row in rows],
            ops=take(batch.ops), subjects=take(batch.subjects),
            objects=take(batch.objects), amounts=take(batch.amounts),
            failcodes=take(batch.failcodes),
            op_names=batch.op_names, entities=batch.entities,
            hydrate=hydrate))
    return trimmed
