"""Batch-commit ingest pipeline.

The paper's write path buffers incoming agent events and commits them in
batches ("batch commit"), optionally running the deduplication passes first.
:class:`IngestPipeline` reproduces that pipeline in front of any
:class:`~repro.storage.backend.StorageBackend`:

    agent stream -> [EventMerger] -> batch buffer -> store.ingest(batch)

The merger is optional because merging changes event multiplicity; the
storage ablation benchmark toggles it.

Two append paths exist: :meth:`IngestPipeline.add` accepts one event at a
time (the original agent-facing surface), and :meth:`IngestPipeline.add_batch`
accepts a pre-batched chunk wholesale — the path the streaming
:class:`~repro.stream.bus.EventBus` and :func:`ingest_chunked` use, since
per-event calls dominate ingest profiles once the store commit itself is
batched.  A ``progress`` callback, when given, fires after every committed
batch with the running :class:`IngestStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import islice
from typing import Callable, Iterable, Sequence

from repro.errors import StorageError
from repro.model.events import Event
from repro.storage.backend import StorageBackend
from repro.storage.dedup import EventMerger

ProgressCallback = Callable[["IngestStats"], None]


@dataclass
class IngestStats:
    """Counters for one pipeline's lifetime."""

    received: int = 0
    committed: int = 0
    batches: int = 0
    merged_away: int = 0


class IngestPipeline:
    """Buffers events and commits them to the store in batches."""

    def __init__(self, store: StorageBackend, batch_size: int = 1000,
                 merge_window: float | None = None,
                 progress: ProgressCallback | None = None) -> None:
        if batch_size <= 0:
            raise StorageError("batch size must be positive")
        self._store = store
        self._batch_size = batch_size
        self._buffer: list[Event] = []
        self._merger = (EventMerger(merge_window)
                        if merge_window is not None else None)
        self._progress = progress
        self.stats = IngestStats()
        self._closed = False

    def add(self, event: Event) -> None:
        """Accept one event from an agent; commits when a batch fills."""
        if self._closed:
            raise StorageError("pipeline is closed")
        self.stats.received += 1
        if self._merger is not None:
            self._buffer.extend(self._merger.push(event))
        else:
            self._buffer.append(event)
        if len(self._buffer) >= self._batch_size:
            self._commit()

    def add_all(self, events) -> None:
        for event in events:
            self.add(event)

    def add_batch(self, events: Sequence[Event]) -> None:
        """Accept a pre-batched chunk without per-event call overhead."""
        if self._closed:
            raise StorageError("pipeline is closed")
        self.stats.received += len(events)
        if self._merger is not None:
            push = self._merger.push
            extend = self._buffer.extend
            for event in events:
                extend(push(event))
        else:
            self._buffer.extend(events)
        if len(self._buffer) >= self._batch_size:
            self._commit()

    def flush(self) -> IngestStats:
        """Commit whatever is buffered without closing the pipeline.

        Events still held back by the merger stay pending — only
        :meth:`close` ends the merge stream.
        """
        if self._closed:
            raise StorageError("pipeline is closed")
        self._commit()
        return self.stats

    def _commit(self) -> None:
        if not self._buffer:
            return
        self._store.ingest(self._buffer)
        self.stats.committed += len(self._buffer)
        self.stats.batches += 1
        self._buffer.clear()
        if self._progress is not None:
            # A snapshot, so callers that collect ticks see each tick's
            # counters instead of N views of the final totals.
            self._progress(replace(self.stats))

    def close(self) -> IngestStats:
        """Flush the merger and the buffer; returns final counters."""
        if self._closed:
            return self.stats
        if self._merger is not None:
            self._buffer.extend(self._merger.flush())
            self.stats.merged_away = self._merger.merged_away
        self._commit()
        self._closed = True
        return self.stats

    def __enter__(self) -> "IngestPipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()


def ingest_chunked(store: StorageBackend, events: Iterable[Event],
                   chunk_size: int = 1000,
                   merge_window: float | None = None,
                   progress: ProgressCallback | None = None) -> IngestStats:
    """Chunked append: commit an event stream in ``chunk_size`` batches.

    The bulk-load entry point for callers that already hold (or can
    produce) the whole stream: events move through the pipeline one chunk
    at a time rather than one call per event, and ``progress`` reports
    the running counters after every committed batch — which is how the
    CLI and the benchmarks surface long ingests without polling.
    """
    iterator = iter(events)
    with IngestPipeline(store, batch_size=chunk_size,
                        merge_window=merge_window,
                        progress=progress) as pipeline:
        while True:
            chunk = list(islice(iterator, chunk_size))
            if not chunk:
                break
            pipeline.add_batch(chunk)
    return pipeline.stats
