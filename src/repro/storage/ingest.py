"""Batch-commit ingest pipeline.

The paper's write path buffers incoming agent events and commits them in
batches ("batch commit"), optionally running the deduplication passes first.
:class:`IngestPipeline` reproduces that pipeline in front of any
:class:`~repro.storage.backend.StorageBackend`:

    agent stream -> [EventMerger] -> batch buffer -> store.ingest(batch)

The merger is optional because merging changes event multiplicity; the
storage ablation benchmark toggles it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.model.events import Event
from repro.storage.backend import StorageBackend
from repro.storage.dedup import EventMerger


@dataclass
class IngestStats:
    """Counters for one pipeline's lifetime."""

    received: int = 0
    committed: int = 0
    batches: int = 0
    merged_away: int = 0


class IngestPipeline:
    """Buffers events and commits them to the store in batches."""

    def __init__(self, store: StorageBackend, batch_size: int = 1000,
                 merge_window: float | None = None) -> None:
        if batch_size <= 0:
            raise StorageError("batch size must be positive")
        self._store = store
        self._batch_size = batch_size
        self._buffer: list[Event] = []
        self._merger = (EventMerger(merge_window)
                        if merge_window is not None else None)
        self.stats = IngestStats()
        self._closed = False

    def add(self, event: Event) -> None:
        """Accept one event from an agent; commits when a batch fills."""
        if self._closed:
            raise StorageError("pipeline is closed")
        self.stats.received += 1
        if self._merger is not None:
            self._buffer.extend(self._merger.push(event))
        else:
            self._buffer.append(event)
        if len(self._buffer) >= self._batch_size:
            self._commit()

    def add_all(self, events) -> None:
        for event in events:
            self.add(event)

    def _commit(self) -> None:
        if not self._buffer:
            return
        self._store.ingest(self._buffer)
        self.stats.committed += len(self._buffer)
        self.stats.batches += 1
        self._buffer.clear()

    def close(self) -> IngestStats:
        """Flush the merger and the buffer; returns final counters."""
        if self._closed:
            return self.stats
        if self._merger is not None:
            self._buffer.extend(self._merger.flush())
            self.stats.merged_away = self._merger.merged_away
        self._commit()
        self._closed = True
        return self.stats

    def __enter__(self) -> "IngestPipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
