"""The EventStore: the domain-specific storage facade.

This is the storage component of Figure 1 ("Optimized Databases") as a pure
Python substrate.  It combines the hypertable (time+space partitioning),
per-partition in-memory indexes, entity interning, and statistics, and
exposes the two operations the engine needs:

* :meth:`EventStore.candidates` — fetch the cheapest index-backed candidate
  list for an event pattern's data query (partition pruning + best access
  path selection);
* :meth:`EventStore.estimate` — cardinality estimation feeding the
  scheduler's pruning-power ordering.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Callable, Iterable, NamedTuple,
                    Sequence)

from repro.model.entities import Entity, ProcessEntity
from repro.model.events import Event, validate_operation
from repro.model.timeutil import SECONDS_PER_DAY, Window
from repro.storage.dedup import EntityInterner
from repro.storage.indexes import clip_to_window, like_to_regex
from repro.storage.partition import Hypertable, Partition
from repro.storage.stats import PatternProfile, estimate_partition

from repro.storage.backend import resolve_spec as _resolved

if TYPE_CHECKING:
    from repro.engine.filters import CompiledPredicate
    from repro.storage.backend import (AccessPathInfo, IdentityBindings,
                                       ScanOrder, ScanSpec)


class EventStore:
    """In-memory, partitioned, indexed store for system monitoring data.

    This is the ``row`` implementation of the
    :class:`~repro.storage.backend.StorageBackend` protocol.
    """

    backend_name = "row"

    def __init__(self, bucket_seconds: float = SECONDS_PER_DAY) -> None:
        self._table = Hypertable(bucket_seconds)
        self._interner = EntityInterner()
        self._max_id = 0

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def record(self, ts: float, agentid: int, operation: str,
               subject: ProcessEntity, obj: Entity, amount: int = 0,
               failcode: int = 0) -> Event:
        """Build, intern, store, and return one event (agent write path)."""
        subject = self._interner.intern(subject)
        obj = self._interner.intern(obj)
        operation = validate_operation(obj.entity_type, operation)
        # _max_id also tracks ingested ids, so recorded events never reuse
        # an archived event's id (all backends allocate this way).
        event = Event(id=self._max_id + 1, ts=ts, agentid=agentid,
                      operation=operation, subject=subject, object=obj,
                      amount=amount, failcode=failcode)
        self._table.add(event)
        self._max_id = event.id
        return event

    def ingest(self, events: Iterable[Event]) -> int:
        """Store pre-built events, interning their entities. Returns count."""
        count = 0
        for event in events:
            subject = self._interner.intern(event.subject)
            obj = self._interner.intern(event.object)
            if subject is not event.subject or obj is not event.object:
                event = Event(id=event.id, ts=event.ts, agentid=event.agentid,
                              operation=event.operation, subject=subject,
                              object=obj, amount=event.amount,
                              failcode=event.failcode)
            self._table.add(event)
            if event.id > self._max_id:
                self._max_id = event.id
            count += 1
        return count

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def partitions(self, window: Window | None,
                   agentids: set[int] | None) -> list[Partition]:
        return self._table.prune(window, agentids)

    def scan(self, window: Window | None = None,
             agentids: set[int] | None = None) -> list[Event]:
        """All events matching the spatial/temporal bounds (full scan)."""
        events: list[Event] = []
        for partition in self._table.prune(window, agentids):
            if window is None:
                events.extend(partition.events())
            else:
                events.extend(partition.events_in(window))
        events.sort(key=lambda e: (e.ts, e.id))
        return events

    def candidates(self, profile: PatternProfile,
                   spec: "ScanSpec | None" = None) -> list[Event]:
        """Cheapest index-backed superset of events matching the profile.

        The returned list still requires residual predicate evaluation
        (named attribute comparisons the indexes do not cover), but it is
        already restricted by the best single index per partition and
        clipped to the time window.  The spec's identity bindings add the
        per-identity posting lists as candidate access paths — after
        propagation those sets are tiny, so they usually win the costing
        outright.  Its temporal bounds tighten the window (partition zone
        pruning) and add the binary-searched time-index range scan as its
        own costed access path, so a narrowed sliver of a bucket never
        pays for a broad posting list.
        """
        spec = _resolved(spec)
        if spec.unsatisfiable:
            return []
        window = spec.clamped()
        out: list[Event] = []
        for partition in self._table.prune(window, spec.agentids):
            paths = _access_paths(partition, profile, spec.bindings, window)
            fetched = _cheapest(paths)()
            if window is not None:
                fetched = clip_to_window(fetched, window.start, window.end)
            out.extend(fetched)
        return out

    def select(self, profile: PatternProfile,
               predicate: "CompiledPredicate",
               spec: "ScanSpec | None" = None) -> tuple[list[Event], int]:
        """Fetch candidates and apply the fused residual predicate.

        A pushed :class:`~repro.storage.backend.ScanOrder` limit takes
        the costed ordered path below; everything else goes through the
        shared candidates-plus-residual implementation.  Binding/bounds
        hints keep the shared path — their post-filters interact with
        early termination, and the scheduler never pushes an order
        alongside them.
        """
        spec = _resolved(spec)
        order, limit = spec.order, spec.effective_limit
        if (order is not None and limit is not None
                and spec.bindings is None and spec.bounds is None):
            return self._select_ordered(profile, predicate, spec, order,
                                        limit)
        from repro.storage.backend import select_via_candidates
        return select_via_candidates(self, profile, predicate, spec)

    def _select_ordered(self, profile: PatternProfile,
                        predicate: "CompiledPredicate", spec: "ScanSpec",
                        order: "ScanOrder", limit: int,
                        ) -> tuple[list[Event], int]:
        """Costed per-partition top-k, then a global bounded merge.

        Each partition chooses between its two physical orders: when the
        cheapest posting path is already small (within a few multiples of
        ``limit``), fetching those candidates and heap-selecting beats
        walking rows; otherwise the sorted time index is walked from the
        cheap end chunk-at-a-time, stopping as soon as the partition's
        own first/last ``limit`` survivors are decided.  The union of
        per-partition winners provably contains the global winners, so a
        final bounded merge finishes the job.  ``fetched`` counts rows
        actually examined — the early-termination saving is visible in
        execution reports.
        """
        from repro.storage.backend import take_ordered
        if spec.unsatisfiable:
            return [], 0
        window = spec.clamped()
        test = predicate.event_predicate
        winners: list[Event] = []
        fetched = 0
        for partition in self._table.prune(window, spec.agentids):
            paths = _access_paths(partition, profile, None, window)
            cheapest = min(path.cost for path in paths)
            if cheapest <= limit * _ORDERED_COST_FACTOR:
                candidates = _cheapest(paths)()
                if window is not None:
                    candidates = clip_to_window(candidates, window.start,
                                                window.end)
                fetched += len(candidates)
                winners.extend(take_ordered(
                    (event for event in candidates if test(event)),
                    order, limit))
                continue
            events, lo, hi = partition.time_index.ordered_span(window)
            if order.descending:
                part, walked = _last_survivors(events, lo, hi, test, limit)
            else:
                part, walked = _first_survivors(events, lo, hi, test, limit)
            fetched += walked
            winners.extend(part)
        return take_ordered(winners, order, limit), fetched

    def estimate(self, profile: PatternProfile,
                 spec: "ScanSpec | None" = None) -> int:
        """Estimated match cardinality (the pruning-power signal)."""
        spec = _resolved(spec)
        if spec.unsatisfiable:
            return 0
        # The same window tightening ``candidates`` applies, so the
        # estimate never diverges from what the scan would fetch.
        window = spec.clamped()
        return sum(
            estimate_partition(partition, profile, window, spec.bindings,
                               spec.histograms)
            for partition in self._table.prune(window, spec.agentids))

    def access_path(self, profile: PatternProfile,
                    spec: "ScanSpec | None" = None) -> "AccessPathInfo":
        """The costed physical path ``candidates`` would take (no fetch)."""
        from repro.storage.backend import AccessPathInfo
        spec = _resolved(spec)
        if spec.unsatisfiable:
            return AccessPathInfo("unsatisfiable", 0)
        window = spec.clamped()
        chosen: dict[str, int] = {}
        considered: dict[str, int] = {}
        for partition in self._table.prune(window, spec.agentids):
            paths = _access_paths(partition, profile, spec.bindings, window)
            for path in paths:
                considered[path.name] = (considered.get(path.name, 0)
                                         + path.cost)
            best = min(paths, key=lambda path: path.cost)
            chosen[best.name] = chosen.get(best.name, 0) + best.cost
        if not chosen:
            return AccessPathInfo("no-partitions", 0)
        dominant = max(chosen, key=lambda name: (chosen[name], name))
        name = (dominant if len(chosen) == 1
                else f"{dominant}+{len(chosen) - 1} other")
        return AccessPathInfo(
            name=name, rows=sum(chosen.values()),
            considered=tuple(sorted(considered.items())))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def span(self) -> Window | None:
        return self._table.span

    @property
    def agentids(self) -> set[int]:
        return self._table.agentids

    @property
    def entity_count(self) -> int:
        return len(self._interner)

    @property
    def dedup_ratio(self) -> float:
        return self._interner.dedup_ratio

    @property
    def partition_count(self) -> int:
        return self._table.partition_count

    @property
    def bucket_seconds(self) -> float:
        return self._table.bucket_seconds

    def __len__(self) -> int:
        return len(self._table)


#: Cost multiple of the pushed limit under which a partition's cheapest
#: posting path wins over the ordered time-index walk: a candidate set
#: within a few multiples of ``k`` is cheaper to heap-select than rows
#: are to walk, while an unselective path (cost ≈ partition size) loses
#: to a walk that stops at the k-th survivor.
_ORDERED_COST_FACTOR = 4


def _first_survivors(events: list[Event], lo: int, hi: int,
                     test: Callable[[Event], bool], k: int,
                     ) -> tuple[list[Event], int]:
    """First ``k`` survivors of a ``(ts, id)``-sorted span, walk count."""
    from repro.storage.backend import ORDERED_CHUNK
    out: list[Event] = []
    pos = lo
    while pos < hi and len(out) < k:
        nxt = min(hi, pos + ORDERED_CHUNK)
        out.extend(event for event in events[pos:nxt] if test(event))
        pos = nxt
    return out[:k], pos - lo


def _last_survivors(events: list[Event], lo: int, hi: int,
                    test: Callable[[Event], bool], k: int,
                    ) -> tuple[list[Event], int]:
    """Best ``k`` survivors under ``(-ts, id)``, walking from the tail.

    The walk may only stop once no earlier row can still win: an earlier
    row tied with the provisional k-th timestamp has a smaller id and
    would displace it, so the stop test is *strictly* earlier-than.
    """
    import heapq
    from repro.storage.backend import ORDERED_CHUNK
    key = lambda event: (-event.ts, event.id)  # noqa: E731
    collected: list[Event] = []
    pos = hi
    while pos > lo:
        nxt = max(lo, pos - ORDERED_CHUNK)
        chunk = [event for event in events[nxt:pos] if test(event)]
        if chunk:
            collected = chunk + collected
        pos = nxt
        if len(collected) >= k and pos > lo:
            best = heapq.nsmallest(k, collected, key=key)
            if events[pos - 1].ts < best[-1].ts:
                return best, hi - pos
    if len(collected) > k:
        return heapq.nsmallest(k, collected, key=key), hi - pos
    collected.sort(key=key)
    return collected, hi - pos


class AccessPath(NamedTuple):
    """One costed physical way to fetch a partition's candidates."""

    name: str
    cost: int                                # exactly known result size
    fetch: Callable[[], Sequence[Event]]


def _cheapest(paths: Sequence[AccessPath]) -> Callable[[], Sequence[Event]]:
    return min(paths, key=lambda path: path.cost).fetch


def _access_paths(partition: Partition, profile: PatternProfile,
                  bindings: "IdentityBindings | None" = None,
                  window: Window | None = None) -> list[AccessPath]:
    """Enumerate every candidate access path for this partition.

    Candidate paths are costed by their (exactly known) result sizes; the
    caller picks the smallest.  Falls back to the event-type posting
    list, then to a full partition read.  A time window adds the
    binary-searched time-index range scan as a path of its own, so a
    narrowed temporal bound beats every posting list once it covers fewer
    events; propagated identity bindings add the posting-list
    intersection over their (usually tiny) identity sets.
    """
    paths: list[AccessPath] = []
    if window is not None:
        count = partition.time_index.count_range(window.start, window.end)
        paths.append(AccessPath("time-range", count,
                                lambda: partition.events_in(window)))
    if bindings is not None:
        compact = bindings.compact
        if bindings.subjects is not None:
            subject_ids = bindings.subjects
            paths.append(AccessPath(
                "id-postings(subject)",
                partition.by_subject_id.count_many(subject_ids,
                                                   compact=compact),
                lambda: partition.by_subject_id.lookup_many(
                    subject_ids, compact=compact)))
        if bindings.objects is not None:
            object_ids = bindings.objects
            paths.append(AccessPath(
                "id-postings(object)",
                partition.by_object_id.count_many(object_ids,
                                                  compact=compact),
                lambda: partition.by_object_id.lookup_many(
                    object_ids, compact=compact)))
    if profile.subject_exact is not None:
        count = partition.by_subject_name.count(profile.subject_exact)
        paths.append(AccessPath(
            "posting(subject)", count,
            lambda: partition.by_subject_name.lookup(profile.subject_exact)))
    if profile.object_exact is not None and profile.event_type is not None:
        key = (profile.event_type, profile.object_exact)
        paths.append(AccessPath(
            "posting(object)", partition.by_object_value.count(key),
            lambda: partition.by_object_value.lookup(key)))
    if profile.event_type is not None and profile.operations:
        ops = sorted(profile.operations)
        count = sum(partition.by_type_operation.count(
            (profile.event_type, op)) for op in ops)

        def _by_ops() -> list[Event]:
            merged: list[Event] = []
            for op in ops:
                merged.extend(partition.by_type_operation.lookup(
                    (profile.event_type, op)))
            return merged

        paths.append(AccessPath("posting(type+op)", count, _by_ops))
    if profile.subject_like is not None:
        count = partition.by_subject_name.count_like(profile.subject_like)
        paths.append(AccessPath(
            "posting(subject-like)", count,
            lambda: partition.by_subject_name.lookup_like(
                profile.subject_like)))
    if profile.object_like is not None and profile.event_type is not None:
        # Resolve the matching keys once: the key scan is cheap (distinct
        # attribute values, not events) and gives the exact path cost.
        regex = like_to_regex(profile.object_like)
        matched_keys = [
            key for key in partition.by_object_value.keys()
            if key[0] == profile.event_type and isinstance(key[1], str)
            and regex.match(key[1])]
        count = sum(partition.by_object_value.count(key)
                    for key in matched_keys)

        def _by_object_like() -> list[Event]:
            matched: list[Event] = []
            for key in matched_keys:
                matched.extend(partition.by_object_value.lookup(key))
            return matched

        paths.append(AccessPath("posting(object-like)", count,
                                _by_object_like))
    if profile.event_type is not None:
        paths.append(AccessPath(
            "posting(type)", partition.by_type.count(profile.event_type),
            lambda: partition.by_type.lookup(profile.event_type)))
    if not paths:
        paths.append(AccessPath("full-partition", len(partition),
                                partition.events))
    return paths
