"""The durability tier: WAL-backed stores, checkpoints, and recovery.

Nothing in the in-memory backends survives a restart; this module makes
any registered backend crash-safe by wrapping it in a
:class:`DurableStore` that owns an on-disk directory:

    <dir>/
        wal.log                — the write-ahead log (current tail)
        checkpoint-<n>.wal     — versioned snapshot segments (same
                                 CRC-framed batch format as the WAL, so
                                 segment corruption is detected too)
        MANIFEST               — which checkpoint is authoritative

The write path is write-*ahead*: every ``ingest``/``record`` batch is
appended (and, under the default sync policy, fsynced) to the WAL before
it reaches the wrapped backend, so an acknowledged batch is always
recoverable.  Reads delegate untouched — the wrapped backend keeps its
scan machinery, access paths, and statistics, and the engine never
notices the wrapper.

``checkpoint()`` bounds recovery time: it snapshots the wrapped
backend's full contents to a new versioned segment, swaps the manifest
atomically (tmp + fsync + rename + directory fsync), then truncates the
WAL.  Every crash window in that sequence is recoverable:

* crash before the manifest swap → the old checkpoint plus the full WAL
  still cover everything (the orphan segment is overwritten later);
* crash after the swap but before the WAL reset → the WAL's prefix
  duplicates the checkpoint, and replay's idempotent dedup
  (:class:`~repro.storage.dedup.ReplayDeduper`) drops it.

``recover(path)`` — equivalently, constructing a :class:`DurableStore`
over an existing directory — rebuilds the backend by loading the
manifest's segment and replaying WAL batches past it, deduplicated, in
log order.  Because batches are framed with CRCs and replay stops at the
first torn frame, the recovered state is always the longest
cleanly-committed prefix of the original ingest — the property the
crash-recovery suite asserts byte-identical query results on.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.errors import StorageError
from repro.model.entities import Entity, ProcessEntity
from repro.model.events import Event
from repro.model.timeutil import SECONDS_PER_DAY, Window
from repro.storage.backend import (AccessPathInfo, ScanSpec, StorageBackend,
                                   create_backend)
from repro.storage.dedup import ReplayDeduper
from repro.storage.faults import FaultInjector, resolve_injector
from repro.storage.stats import PatternProfile
from repro.storage.wal import WriteAheadLog, fsync_directory

if TYPE_CHECKING:
    from repro.engine.filters import CompiledPredicate

WAL_NAME = "wal.log"
MANIFEST_NAME = "MANIFEST"
MANIFEST_VERSION = 1

#: Chunk size for streaming a checkpoint segment back into the backend.
_LOAD_CHUNK = 4096


@dataclass
class RecoveryStats:
    """What one recovery pass found and applied."""

    checkpoint: int = 0            # manifest's checkpoint counter (0: none)
    checkpoint_events: int = 0     # events loaded from the segment
    wal_batches: int = 0           # cleanly-framed batches replayed
    wal_events: int = 0            # events those batches carried
    deduplicated: int = 0          # replay duplicates dropped
    applied: int = 0               # events actually (re)ingested

    def describe(self) -> str:
        return (f"checkpoint #{self.checkpoint} "
                f"({self.checkpoint_events} events) + "
                f"{self.wal_batches} WAL batches "
                f"({self.wal_events} events, "
                f"{self.deduplicated} duplicates dropped) -> "
                f"{self.applied + self.checkpoint_events} events recovered")


@dataclass
class _Manifest:
    checkpoint: int = 0
    segment: str | None = None
    backend: str | None = None
    extra: dict = field(default_factory=dict)


def _read_manifest(path: Path) -> _Manifest:
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.exists():
        return _Manifest()
    try:
        data = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise StorageError(f"{manifest_path}: unreadable manifest: {exc}"
                           ) from None
    if data.get("version", MANIFEST_VERSION) > MANIFEST_VERSION:
        raise StorageError(
            f"{manifest_path}: manifest version {data.get('version')} is "
            f"newer than this build understands ({MANIFEST_VERSION})")
    return _Manifest(checkpoint=int(data.get("checkpoint", 0)),
                     segment=data.get("segment"),
                     backend=data.get("backend"))


def _write_manifest(path: Path, manifest: _Manifest) -> None:
    """Atomic manifest swap: tmp + fsync + rename + directory fsync."""
    payload = json.dumps({
        "version": MANIFEST_VERSION,
        "checkpoint": manifest.checkpoint,
        "segment": manifest.segment,
        "backend": manifest.backend,
    }, indent=2, sort_keys=True)
    tmp = path / (MANIFEST_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path / MANIFEST_NAME)
    fsync_directory(path)


class DurableStore:
    """Any registered backend, made crash-safe behind a WAL + checkpoints.

    ``backend`` names a registry backend to create (or is an already-built
    store to wrap).  Opening a directory that already holds durable state
    *is* recovery: the manifest's checkpoint segment is loaded and the
    WAL replayed (deduplicated) before the store accepts new writes; the
    pass is summarized in :attr:`recovery`.

    ``auto_checkpoint`` (events) bounds the WAL between checkpoints: once
    that many events have been appended since the last checkpoint, the
    next ingest triggers one.  ``sync`` is the WAL fsync policy
    (``always``/``close``/``never``).  ``faults`` threads the
    fault-injection layer through the WAL and the checkpoint sequence.
    """

    def __init__(self, path: str | Path,
                 backend: str | StorageBackend = "row",
                 bucket_seconds: float = SECONDS_PER_DAY,
                 sync: str = "always",
                 auto_checkpoint: int | None = None,
                 faults: FaultInjector | None = None) -> None:
        if auto_checkpoint is not None and auto_checkpoint <= 0:
            raise StorageError("auto_checkpoint must be positive")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._faults = resolve_injector(faults)
        manifest = _read_manifest(self.path)
        if isinstance(backend, str):
            # A reopened directory remembers which backend it snapshots;
            # an explicit mismatch is honored (the caller may migrate).
            name = backend if backend != "row" or manifest.backend is None \
                else manifest.backend
            self._inner: StorageBackend = create_backend(name, bucket_seconds)
        else:
            self._inner = backend
        self._manifest = manifest
        self._manifest.backend = getattr(self._inner, "backend_name",
                                         type(self._inner).__name__)
        self._auto_checkpoint = auto_checkpoint
        self._since_checkpoint = 0
        self.recovery = self._load_existing()
        self._wal = WriteAheadLog(self.path / WAL_NAME, sync=sync,
                                  faults=self._faults)
        self.backend_name = f"durable[{self._manifest.backend}]"
        self._closed = False

    # ------------------------------------------------------------------
    # Recovery (runs on open)
    # ------------------------------------------------------------------
    def _load_existing(self) -> RecoveryStats:
        stats = RecoveryStats(checkpoint=self._manifest.checkpoint)
        deduper = ReplayDeduper()
        inner = self._inner
        if self._manifest.segment is not None:
            segment = self.path / self._manifest.segment
            if not segment.exists():
                raise StorageError(
                    f"{self.path}: manifest names missing checkpoint "
                    f"segment {self._manifest.segment!r}")
            # A manifest-named segment was fully written and fsynced
            # before the swap, so unlike the WAL a torn frame here is
            # after-the-fact corruption — and silently recovering a
            # *partial* checkpoint would break the prefix property.  The
            # trailer record carries the event count to verify against.
            from repro.storage.wal import RT_NOTE, decode_event_batch
            loaded = 0
            trailer: int | None = None
            for record in WriteAheadLog.replay(segment):
                if record.rtype == RT_NOTE:
                    trailer = int(json.loads(record.payload)["events"])
                    continue
                batch = decode_event_batch(record.payload)
                loaded += len(batch)
                admitted = deduper.admit_batch(batch)
                if admitted:
                    inner.ingest(admitted)
                    stats.checkpoint_events += len(admitted)
            if trailer is None or trailer != loaded:
                raise StorageError(
                    f"{segment}: checkpoint segment is corrupt "
                    f"(loaded {loaded} events, trailer says "
                    f"{'missing' if trailer is None else trailer})")
        for batch in WriteAheadLog.replay_events(self.path / WAL_NAME):
            stats.wal_batches += 1
            stats.wal_events += len(batch)
            admitted = deduper.admit_batch(batch)
            if admitted:
                inner.ingest(admitted)
                stats.applied += len(admitted)
        stats.deduplicated = deduper.duplicates
        self._since_checkpoint = stats.applied
        return stats

    # ------------------------------------------------------------------
    # Write path (write-ahead)
    # ------------------------------------------------------------------
    def ingest(self, events: Iterable[Event]) -> int:
        self._check_open()
        batch = list(events)
        if not batch:
            return 0
        self._wal.append_events(batch)
        count = self._inner.ingest(batch)
        self._since_checkpoint += len(batch)
        if (self._auto_checkpoint is not None
                and self._since_checkpoint >= self._auto_checkpoint):
            self.checkpoint()
        return count

    def record(self, ts: float, agentid: int, operation: str,
               subject: ProcessEntity, obj: Entity, amount: int = 0,
               failcode: int = 0) -> Event:
        self._check_open()
        event = self._inner.record(ts, agentid, operation, subject, obj,
                                   amount=amount, failcode=failcode)
        self._wal.append_events([event])
        self._since_checkpoint += 1
        return event

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Snapshot the backend, swap the manifest, truncate the WAL.

        Returns the new checkpoint number.  Crash-safe at every step —
        see the module docstring for the window-by-window argument.
        """
        self._check_open()
        faults = self._faults
        self._wal.sync()
        number = self._manifest.checkpoint + 1
        segment_name = f"checkpoint-{number:06d}.wal"
        tmp = self.path / (segment_name + ".tmp")
        faults.crash_point("checkpoint.segment")
        self._write_segment(tmp)
        with open(tmp, "rb") as handle:
            os.fsync(handle.fileno())
        os.replace(tmp, self.path / segment_name)
        fsync_directory(self.path)
        faults.crash_point("checkpoint.manifest")
        previous_segment = self._manifest.segment
        self._manifest = _Manifest(checkpoint=number, segment=segment_name,
                                   backend=self._manifest.backend)
        _write_manifest(self.path, self._manifest)
        faults.crash_point("checkpoint.truncate")
        self._wal.reset()
        self._since_checkpoint = 0
        if previous_segment is not None and previous_segment != segment_name:
            # The old segment is no longer reachable from the manifest;
            # best-effort cleanup (recovery never depends on its absence).
            try:
                os.unlink(self.path / previous_segment)
            except OSError:
                pass
        return number

    def _write_segment(self, tmp: Path) -> None:
        """Snapshot the backend to ``tmp`` in the CRC-framed batch format.

        Ends with a count trailer so a torn segment is *detected* on
        load instead of silently recovered as a partial checkpoint.
        """
        from repro.storage.wal import RT_NOTE
        # A crashed earlier checkpoint may have left a stale tmp; opening
        # it for append would splice old batches under the new trailer.
        tmp.unlink(missing_ok=True)
        events = self._inner.scan()
        with WriteAheadLog(tmp, sync="never") as segment:
            for start in range(0, len(events), _LOAD_CHUNK):
                segment.append_events(events[start:start + _LOAD_CHUNK])
            segment.append(RT_NOTE, json.dumps(
                {"events": len(events)}).encode("utf-8"))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("durable store is closed")

    def close(self) -> None:
        """Sync and close the WAL (the wrapped backend stays queryable)."""
        if self._closed:
            return
        self._wal.close()
        self._closed = True

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def wal_size(self) -> int:
        """Bytes of cleanly-framed WAL since the last checkpoint."""
        return self._wal.size

    @property
    def inner(self) -> StorageBackend:
        """The wrapped backend (reads go straight to it)."""
        return self._inner

    # ------------------------------------------------------------------
    # Read path: pure delegation
    # ------------------------------------------------------------------
    def scan(self, window: Window | None = None,
             agentids: set[int] | None = None) -> list[Event]:
        return self._inner.scan(window, agentids)

    def candidates(self, profile: PatternProfile,
                   spec: ScanSpec | None = None) -> list[Event]:
        return self._inner.candidates(profile, spec)

    def select(self, profile: PatternProfile,
               predicate: "CompiledPredicate",
               spec: ScanSpec | None = None) -> tuple[list[Event], int]:
        return self._inner.select(profile, predicate, spec)

    def estimate(self, profile: PatternProfile,
                 spec: ScanSpec | None = None) -> int:
        return self._inner.estimate(profile, spec)

    def access_path(self, profile: PatternProfile,
                    spec: ScanSpec | None = None) -> AccessPathInfo:
        return self._inner.access_path(profile, spec)

    # ------------------------------------------------------------------
    # Introspection: pure delegation
    # ------------------------------------------------------------------
    @property
    def span(self) -> Window | None:
        return self._inner.span

    @property
    def agentids(self) -> set[int]:
        return self._inner.agentids

    @property
    def entity_count(self) -> int:
        return self._inner.entity_count

    @property
    def dedup_ratio(self) -> float:
        return self._inner.dedup_ratio

    @property
    def partition_count(self) -> int:
        return self._inner.partition_count

    @property
    def bucket_seconds(self) -> float:
        return self._inner.bucket_seconds

    def __len__(self) -> int:
        return len(self._inner)


def recover(path: str | Path, backend: str = "row",
            bucket_seconds: float = SECONDS_PER_DAY,
            sync: str = "always") -> DurableStore:
    """Rebuild a durable store's state from its directory.

    Loads the manifest's checkpoint segment, replays the WAL past it
    with idempotent dedup, and returns the (re-openable, appendable)
    store.  ``recover(path).recovery`` summarizes the pass.  Running it
    twice — or over a log whose prefix a checkpoint already applied —
    yields the same state: the replay-idempotence suite locks this in.
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no durable store at {path}")
    return DurableStore(path, backend=backend,
                        bucket_seconds=bucket_seconds, sync=sync)
