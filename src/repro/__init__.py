"""AIQL reproduction — a query system for efficiently investigating complex
attack behaviors over system monitoring data.

Reproduces Gao et al., "A Query System for Efficiently Investigating Complex
Attack Behaviors for Enterprise Security" (VLDB 2019 demo; full system in
USENIX ATC 2018), as a pure-Python library:

* :mod:`repro.model` — system entities and SVO events;
* :mod:`repro.storage` — partitioned, indexed, deduplicating event store;
* :mod:`repro.lang` — the AIQL language (multievent, dependency, anomaly);
* :mod:`repro.engine` — the optimized query engine;
* :mod:`repro.baselines` — SQL and graph-database comparison baselines;
* :mod:`repro.telemetry` — simulated enterprise + APT attack scenarios;
* :mod:`repro.investigate` — the paper's investigation query catalogs;
* :mod:`repro.ui` — CLI REPL and web UI.

Quickstart::

    from repro import AiqlSession
    from repro.telemetry import build_demo_scenario

    session = AiqlSession()
    session.ingest(build_demo_scenario().events())
    print(session.query('''
        proc p["%powershell.exe"] write ip i as e1
        return distinct p, i
    ''').rows)
"""

from repro.core.results import QueryResult
from repro.core.session import AiqlSession
from repro.engine.executor import EngineOptions
from repro.errors import (DataModelError, ExecutionError, ParseError,
                          QueryError, ReproError, SemanticError, StorageError,
                          TranslationError)

__version__ = "1.0.0"

__all__ = [
    "AiqlSession", "QueryResult", "EngineOptions",
    "DataModelError", "ExecutionError", "ParseError", "QueryError",
    "ReproError", "SemanticError", "StorageError", "TranslationError",
    "__version__",
]
