"""Public API: the AIQL session facade and query results."""

from repro.core.results import QueryResult
from repro.core.session import AiqlSession

__all__ = ["AiqlSession", "QueryResult"]
