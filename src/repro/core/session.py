"""AiqlSession: the library's public facade.

A session owns a :class:`~repro.storage.backend.StorageBackend` and exposes
the full investigation loop the demo walks through: ingest monitoring data,
issue AIQL queries (all three classes), inspect plans, and check syntax.

>>> from repro import AiqlSession
>>> session = AiqlSession()                  # row store by default
>>> session = AiqlSession(backend="columnar")  # batch-scanning store
>>> # ... ingest events (see repro.telemetry) ...
>>> result = session.query('proc p["%cmd.exe"] start proc c as e1 return c')
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Iterable

from repro.analysis.diagnostics import AiqlAnalysisError, Diagnostic
from repro.core.results import QueryResult
from repro.engine.executor import DEFAULT_OPTIONS, EngineOptions, execute, explain
from repro.errors import StorageError
from repro.lang.ast import Query
from repro.lang.errors import AiqlSyntaxError, check_syntax
from repro.lang.parser import parse, parse_with_spans
from repro.lang.semantics import analyze_query
from repro.model.events import Event
from repro.model.timeutil import SECONDS_PER_DAY
from repro.obs.metrics import REGISTRY, MetricsSnapshot
from repro.obs.trace import Tracer
from repro.storage.backend import StorageBackend, create_backend
from repro.storage.ingest import IngestPipeline, IngestStats

if TYPE_CHECKING:
    from repro.stream.continuous import ContinuousQuery
    from repro.stream.session import StreamSession


def _surface(diagnostics: list[Diagnostic], source: str | None) -> None:
    """Fail on analyzer errors; print warnings and continue."""
    if any(d.is_error for d in diagnostics):
        raise AiqlAnalysisError(source or "", diagnostics)
    if diagnostics:
        import sys
        for diagnostic in diagnostics:
            print(diagnostic.render(source), file=sys.stderr)


class AiqlSession:
    """One investigation session over one storage backend."""

    def __init__(self, store: StorageBackend | None = None,
                 options: EngineOptions = DEFAULT_OPTIONS,
                 bucket_seconds: float = SECONDS_PER_DAY,
                 backend: str = "row",
                 max_workers: int | None = None,
                 durable_dir: "str | None" = None,
                 sync: str = "always",
                 shards: int | None = None,
                 shard_backend: str | None = None) -> None:
        if durable_dir is not None and store is not None:
            raise StorageError(
                "pass either an explicit store or durable_dir, not both — "
                "a durable session owns its backend via the recovery dir")
        if ((shards is not None or shard_backend is not None)
                and not (store is None and durable_dir is None
                         and (backend == "sharded"
                              or backend.startswith("sharded(")))):
            raise StorageError(
                "shards/shard_backend configure backend='sharded' only")
        if durable_dir is not None:
            # Crash-safe tier: WAL every ingested batch and recover the
            # wrapped backend from disk on reopen (see repro.storage.durable).
            from repro.storage.durable import DurableStore
            store = DurableStore(durable_dir, backend=backend,
                                 bucket_seconds=bucket_seconds, sync=sync)
        elif store is None and (shards is not None
                                or shard_backend is not None):
            # Scatter-gather tier with explicit fan-out:
            # AiqlSession(backend="sharded", shards=4, shard_backend=...)
            from repro.storage.sharded import ShardedStore, parse_backend_name
            inner, default_shards = parse_backend_name(backend)
            store = ShardedStore(
                shards=shards if shards is not None else default_shards,
                backend=shard_backend if shard_backend is not None else inner,
                bucket_seconds=bucket_seconds)
        elif store is None:
            store = create_backend(backend, bucket_seconds)
        self.store = store
        # ``max_workers`` overrides the option set's worker count (None in
        # the defaults means size-to-machine); benchmarks and the CLI use
        # it to pin the sub-query fan-out explicitly.
        if max_workers is not None:
            options = replace(options, max_workers=max_workers)
        self.options = options
        self._stream = None
        self._last_tracer: Tracer | None = None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, events: Iterable[Event], batch_size: int = 1000,
               merge_window: float | None = None) -> IngestStats:
        """Load events through the batch-commit pipeline."""
        with IngestPipeline(self.store, batch_size=batch_size,
                            merge_window=merge_window) as pipeline:
            pipeline.add_all(events)
        return pipeline.stats

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    @classmethod
    def recover(cls, durable_dir: str, *,
                options: EngineOptions = DEFAULT_OPTIONS,
                bucket_seconds: float = SECONDS_PER_DAY,
                backend: str = "row", sync: str = "always",
                max_workers: int | None = None) -> "AiqlSession":
        """Open a session over a crash-recovered durable directory.

        Replays the checkpoint and the surviving WAL suffix (torn tails
        dropped, duplicates deduplicated) and returns a queryable
        session; the recovery tally is on ``session.store.recovery``.
        Raises :class:`~repro.errors.StorageError` if ``durable_dir``
        does not exist.
        """
        from repro.storage.durable import recover as recover_store
        store = recover_store(durable_dir, backend=backend,
                              bucket_seconds=bucket_seconds, sync=sync)
        return cls(store=store, options=options, max_workers=max_workers)

    def checkpoint(self) -> int:
        """Snapshot a durable store and truncate its WAL.

        Only meaningful for durable sessions; raises
        :class:`~repro.errors.StorageError` otherwise.
        """
        checkpoint = getattr(self.store, "checkpoint", None)
        if checkpoint is None:
            raise StorageError(
                "checkpoint() needs a durable session — construct with "
                "AiqlSession(durable_dir=...)")
        return checkpoint()

    # ------------------------------------------------------------------
    # Streaming / continuous queries
    # ------------------------------------------------------------------
    def stream(self, **kwargs) -> "StreamSession":
        """The session's live feed (created on first use).

        Events published through it are appended to this session's store
        *and* evaluated against every standing query registered via
        :meth:`register`.  Keyword arguments (``batch_size``,
        ``lateness``, ``threaded``, ...) configure the feed on first
        creation; see :class:`repro.stream.session.StreamSession`.
        """
        if self._stream is None or self._stream.closed:
            from repro.stream.session import StreamSession
            self._stream = StreamSession(self.store, **kwargs)
        elif kwargs:
            # Silently discarding configuration would be a footgun:
            # register() creates the stream lazily, so a later
            # stream(batch_size=...) call would otherwise be a no-op.
            raise StorageError(
                "the session's stream is already active; configure it on "
                "first use (before register()) or close() it first")
        return self._stream

    def register(self, source: "str | Query", callback=None,
                 name: str | None = None,
                 retain_results: bool = True) -> "ContinuousQuery":
        """Register a standing query on this session's live feed.

        ``source`` is AIQL text (or an already-parsed query) of any of
        the three query classes; ``callback(standing, row)`` fires for
        every match/alert as the stream produces it.  The returned handle
        exposes ``result()`` — after the stream is closed, byte-identical
        to :meth:`query` on the fully-ingested store.  For unbounded
        tailing pass ``retain_results=False``: matches reach the callback
        only, and nothing accumulates.
        """
        if isinstance(source, str):
            parsed = self._analyzed(source)
        else:
            parsed = source
            _surface(analyze_query(parsed), None)
        return self.stream().register(parsed, callback=callback, name=name,
                                      retain_results=retain_results)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def parse(self, source: str) -> Query:
        """Parse AIQL text (raises AiqlSyntaxError with diagnostics)."""
        return parse(source)

    def query(self, source: str,
              options: EngineOptions | None = None,
              trace: bool = False) -> QueryResult:
        """Parse, lint, and execute an AIQL query.

        The semantic analyzer runs on every query before execution:
        error diagnostics raise :class:`AiqlAnalysisError` (the query
        could never mean what was written), warnings are printed to
        stderr and the query proceeds.

        ``trace=True`` records a hierarchical span tree for this one
        query (parse → analyze → plan → schedule → per-pattern scan →
        join → project), retrievable afterwards via :meth:`last_trace`
        or exportable with ``repro query --trace-out``.
        """
        opts = options if options is not None else self.options
        if not trace:
            parsed = self._analyzed(source)
            return execute(self.store, parsed, opts)
        tracer = Tracer()
        self._last_tracer = tracer
        with tracer.span("query"):
            with tracer.span("parse"):
                parsed, spans = parse_with_spans(source, check=False)
            with tracer.span("analyze"):
                _surface(analyze_query(parsed, spans), source)
            return execute(self.store, parsed, replace(opts, tracer=tracer))

    def _analyzed(self, source: str) -> Query:
        """Parse with spans and run the semantic analyzer.

        ``check=False``: the analyzer re-runs every legacy parser check
        with source spans attached, so the span-less versions would only
        shadow the better diagnostics.
        """
        parsed, spans = parse_with_spans(source, check=False)
        _surface(analyze_query(parsed, spans), source)
        return parsed

    def explain(self, source: str) -> str:
        """Describe the execution plan without running the query."""
        return explain(self.store, parse(source), self.options)

    def check(self, source: str) -> AiqlSyntaxError | None:
        """Syntax-check a query; None means it parses."""
        return check_syntax(source)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics(self) -> MetricsSnapshot:
        """The merged metrics snapshot for everything this process ran.

        The process-local registry plus — for a sharded store — every
        worker's registry, gathered over the shard RPC and merged
        (counters sum, gauges last-write, histogram buckets add).  Scan
        work under sharding happens only worker-side, so the merged
        ``storage.scan.*`` totals equal what a single-node run of the
        same queries would report.
        """
        snapshots = [REGISTRY.snapshot()]
        worker_metrics = getattr(self.store, "worker_metrics", None)
        if worker_metrics is not None:
            snapshots.extend(worker_metrics())
        return MetricsSnapshot.merged(snapshots)

    def last_trace(self) -> Tracer | None:
        """The span tree of the most recent ``query(..., trace=True)``."""
        return self._last_tracer

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def event_count(self) -> int:
        return len(self.store)

    @property
    def entity_count(self) -> int:
        return self.store.entity_count

    @property
    def backend_name(self) -> str:
        """Registry name of the active storage backend."""
        return getattr(self.store, "backend_name", type(self.store).__name__)

    def describe(self) -> str:
        """One-line store summary for the UI status area."""
        span = self.store.span
        span_text = str(span) if span is not None else "(empty)"
        text = (f"{len(self.store)} events, {self.store.entity_count} "
                f"entities, {self.store.partition_count} partitions, "
                f"agents={sorted(self.store.agentids)}, span={span_text}, "
                f"backend={self.backend_name}")
        coordinator_stats = getattr(self.store, "coordinator_stats", None)
        if coordinator_stats is not None:
            stats = coordinator_stats()
            text += (f", shards={stats['shards']}, "
                     f"restarts={stats['restarts']}")
            if stats["restarts_by_shard"]:
                per_shard = ",".join(
                    f"{index}:{count}" for index, count
                    in stats["restarts_by_shard"].items())
                text += f" ({per_shard})"
        return text
