"""Query results: typed rows plus the execution report.

The web UI's result table supports sorting and searching (§3); those
operations live here so the CLI, the web UI, and tests share one
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.errors import ExecutionError

if TYPE_CHECKING:
    from repro.engine.scheduler import ExecutionReport


@dataclass
class QueryResult:
    """The outcome of executing one AIQL query."""

    columns: list[str]
    rows: list[tuple]
    elapsed: float
    kind: str
    report: str = ""
    # The structured execution report behind the ``report`` text — per
    # pattern estimates, actual rows, and elapsed time.  The EXPLAIN
    # ANALYZE surface reads this; ``None`` for engines that don't
    # produce one.
    execution: "ExecutionReport | None" = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def to_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> list[object]:
        """All values of one column."""
        try:
            index = self.columns.index(name)
        except ValueError:
            raise ExecutionError(
                f"no column {name!r} (have: {', '.join(self.columns)})"
            ) from None
        return [row[index] for row in self.rows]

    def sorted_by(self, name: str, descending: bool = False) -> "QueryResult":
        """A copy of this result ordered by one column (UI sort feature)."""
        index = self.columns.index(name) if name in self.columns else None
        if index is None:
            raise ExecutionError(
                f"no column {name!r} (have: {', '.join(self.columns)})")
        ordered = sorted(self.rows,
                         key=lambda row: _sort_key(row[index]),
                         reverse=descending)
        return QueryResult(columns=list(self.columns), rows=ordered,
                           elapsed=self.elapsed, kind=self.kind,
                           report=self.report, execution=self.execution)

    def search(self, needle: str) -> "QueryResult":
        """Rows whose textual form contains the needle (UI search feature)."""
        lowered = needle.lower()
        kept = [row for row in self.rows
                if any(lowered in str(cell).lower() for cell in row)]
        return QueryResult(columns=list(self.columns), rows=kept,
                           elapsed=self.elapsed, kind=self.kind,
                           report=self.report, execution=self.execution)

    def first(self) -> dict[str, object]:
        """The first row as a dict; raises when the result is empty."""
        if not self.rows:
            raise ExecutionError("result is empty")
        return dict(zip(self.columns, self.rows[0]))


def _sort_key(value: object) -> tuple:
    """Total order over mixed cell types: None < numbers < strings."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))
