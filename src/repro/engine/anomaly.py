"""The sliding-window anomaly engine (§2.2.3, §2.3).

"For an anomaly query, the engine partitions the events into sliding
windows by the timestamp, computes the aggregate results, and enforces the
filters."  The filters may reference *historical* aggregate results
(``amt[1]``), which is what lets AIQL express frequency-based anomaly
models such as moving averages.

Execution pipeline:

1. fetch the pattern's matching events (reusing the multievent planner and
   the partitioned parallel executor);
2. enumerate sliding windows over the query's time window;
3. per window, group events (``group by``) and evaluate each return-clause
   aggregate per group;
4. record aggregates into the per-group history ring, then evaluate the
   ``having`` expression — emitting one result row per (window, group) that
   satisfies it.

Groups keep being evaluated after they stop producing events (with
empty-set aggregate values) so that spike-then-silence patterns and decays
remain expressible; a group is only evaluated after it first appears.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable

from repro.errors import SemanticError
from repro.lang.ast import (AggCall, AnomalyQuery, BinOp, Expr, HistoryRef,
                            Literal, MultieventQuery, NotOp, ReturnItem,
                            VarRef, expr_history_refs)
from repro.model.entities import DEFAULT_ATTRIBUTE, canonical_attribute
from repro.model.events import Event, canonical_event_attribute
from repro.model.timeutil import Window, format_timestamp, sliding_windows
from repro.obs.clock import monotonic
from repro.obs.trace import NULL_TRACER
from repro.engine.aggregates import GroupHistory, aggregate
from repro.engine.options import DEFAULT_OPTIONS, EngineOptions
from repro.engine.parallel import execute_plan
from repro.engine.planner import plan_multievent
from repro.engine.scheduler import ExecutionReport
from repro.storage.backend import StorageBackend


@dataclass
class AnomalyOutput:
    columns: list[str]
    rows: list[tuple]
    report: ExecutionReport


class AnomalyWindowEvaluator:
    """Per-window evaluation state of one anomaly query.

    One instance owns everything the §2.2.3 semantics thread *between*
    windows — known groups, per-group aggregate history, empty-streak
    steady-state caches — while :meth:`evaluate` scores a single window
    pane.  The batch executor drives it over ``sliding_windows`` of the
    final span; the continuous-query runtime drives the *same* instance
    incrementally as the watermark closes panes, which is what makes
    stream and batch results identical by construction.
    """

    def __init__(self, query: AnomalyQuery) -> None:
        if len(query.patterns) != 1:
            raise SemanticError(
                "anomaly queries aggregate over exactly one event pattern")
        self.query = query
        self.pattern = query.patterns[0]
        self.columns = ["window"] + [item.name for item in query.return_items]
        self._group_getters = _group_getters(query, self.pattern)
        self._display_getters = _display_getters(query, self.pattern)
        self._agg_specs = _aggregate_specs(query, self.pattern)
        self._history_depth = _history_depth(query)
        self._history = GroupHistory(self._history_depth)
        self._evaluator = _HavingEvaluator(query, self.pattern, self._history)
        self._known_groups: dict[tuple, tuple] = {}  # key -> display values
        # Steady-state fast path: after `history_depth` consecutive empty
        # windows a group's aggregates and history ring are constant, so
        # the having decision is too — cache it and skip re-evaluation.
        self._empty_streak: dict[tuple, int] = {}
        self._steady_state: dict[tuple, tuple] = {}  # key -> (passes, cells)

    def evaluate(self, window: Window, events: list[Event]) -> list[tuple]:
        """Score one window pane; ``events`` are the in-window matches
        in ``(ts, id)`` order.  Returns the emitted result rows."""
        query = self.query
        rows: list[tuple] = []
        by_group: dict[tuple, list[Event]] = {}
        for event in events:
            key = tuple(getter(event) for getter in self._group_getters)
            by_group.setdefault(key, []).append(event)
            if key not in self._known_groups:
                self._known_groups[key] = tuple(
                    getter(event) for getter in self._display_getters)
        for key in self._known_groups:
            group_events = by_group.get(key, [])
            if group_events:
                self._empty_streak[key] = 0
                self._steady_state.pop(key, None)
            else:
                streak = self._empty_streak.get(key, 0) + 1
                self._empty_streak[key] = streak
                cached = self._steady_state.get(key)
                if cached is not None:
                    passes, cells = cached
                    if passes:
                        rows.append((format_timestamp(window.start),)
                                    + cells)
                    continue
            current: dict[str, object] = {}
            for alias, func, arg_getter in self._agg_specs:
                values = [arg_getter(evt) for evt in group_events]
                value = aggregate(func, values)
                self._history.record(key, alias, value)
                current[alias] = value
            passes = (query.having is None
                      or self._evaluator.passes(key, group_events, current))
            if passes:
                row = _render_row(window, query, key,
                                  self._known_groups[key], current,
                                  self._group_getters)
                rows.append(row)
            if not group_events and self._empty_streak[key] >= self._history_depth:
                cells = (_render_row(window, query, key,
                                     self._known_groups[key], current,
                                     self._group_getters)[1:]
                         if passes else ())
                self._steady_state[key] = (passes, cells)
        return rows


def execute_anomaly(store: StorageBackend, query: AnomalyQuery,
                    options: EngineOptions = DEFAULT_OPTIONS,
                    ) -> AnomalyOutput:
    """Run an anomaly query against the store."""
    started = monotonic()
    tracer = options.tracer or NULL_TRACER
    evaluator = AnomalyWindowEvaluator(query)

    events = _fetch_events(store, query, options)
    events.sort(key=lambda evt: (evt.ts, evt.id))
    timestamps = [evt.ts for evt in events]

    span = query.header.window or store.span
    if span is None:
        report = ExecutionReport()
        report.elapsed = monotonic() - started
        return AnomalyOutput(columns=evaluator.columns, rows=[],
                             report=report)

    rows: list[tuple] = []
    with tracer.span("windows", events=len(events)) as window_span:
        panes = 0
        for window in sliding_windows(span, query.window_spec.width,
                                      query.window_spec.step):
            panes += 1
            lo = bisect.bisect_left(timestamps, window.start)
            hi = bisect.bisect_left(timestamps, window.end)
            rows.extend(evaluator.evaluate(window, events[lo:hi]))
        window_span.set(panes=panes, rows=len(rows))
    report = ExecutionReport()
    report.joined_rows = len(rows)
    report.elapsed = monotonic() - started
    return AnomalyOutput(columns=evaluator.columns, rows=rows, report=report)


# ---------------------------------------------------------------------------
# Event fetching (reuses the multievent machinery on a 1-pattern plan)
# ---------------------------------------------------------------------------

def _fetch_events(store: StorageBackend, query: AnomalyQuery,
                  options: EngineOptions) -> list[Event]:
    pattern = query.patterns[0]
    wrapper = MultieventQuery(
        header=query.header, patterns=query.patterns, temporal=(),
        return_items=(ReturnItem(VarRef(pattern.event_var)),))
    plan = plan_multievent(wrapper)
    if options.row_limit is not None:
        # The limit applies to windowed anomaly rows, not the raw fetch.
        from dataclasses import replace
        options = replace(options, row_limit=None)
    result = execute_plan(store, plan, options)
    return [binding[pattern.event_var] for binding in result.rows]  # type: ignore


# ---------------------------------------------------------------------------
# Getter compilation
# ---------------------------------------------------------------------------

def _entity_role(pattern, variable: str) -> str:
    if pattern.subject.variable == variable:
        return "subject"
    if pattern.object.variable == variable:
        return "object"
    raise SemanticError(f"unknown variable {variable!r} in anomaly pattern")


def _value_getter(pattern, ref: VarRef,
                  default_to_identity: bool) -> Callable[[Event], object]:
    """Compile a VarRef into an event-value getter.

    For a bare entity variable, grouping uses the entity *identity* (so two
    distinct processes with the same name stay distinct groups) while
    display uses the default attribute; ``default_to_identity`` selects
    which behaviour the caller wants.
    """
    if ref.variable == pattern.event_var:
        attr = canonical_event_attribute(ref.attribute or "id")
        return lambda event: getattr(event, attr)
    role = _entity_role(pattern, ref.variable)
    entity_type = (pattern.subject.entity_type if role == "subject"
                   else pattern.object.entity_type)
    if ref.attribute is None:
        if default_to_identity:
            if role == "subject":
                return lambda event: event.subject.identity
            return lambda event: event.object.identity
        attr = DEFAULT_ATTRIBUTE[entity_type]
    else:
        attr = canonical_attribute(entity_type, ref.attribute)
    if role == "subject":
        return lambda event: getattr(event.subject, attr)
    return lambda event: getattr(event.object, attr)


def _group_getters(query: AnomalyQuery, pattern):
    return [_value_getter(pattern, ref, default_to_identity=True)
            for ref in query.group_by]


def _display_getters(query: AnomalyQuery, pattern):
    return [_value_getter(pattern, ref, default_to_identity=False)
            for ref in query.group_by]


def _aggregate_specs(query: AnomalyQuery, pattern):
    """(alias, func, arg getter) for every aggregate in the return clause."""
    specs = []
    for item in query.return_items:
        if not isinstance(item.expr, AggCall):
            continue
        call = item.expr
        if call.arg is None:
            arg_getter: Callable[[Event], object] = lambda event: 1
        elif (call.arg.variable == pattern.event_var
              and call.arg.attribute is None):
            # count(evt): each event contributes itself.
            arg_getter = lambda event: event.id
        else:
            arg_getter = _value_getter(pattern, call.arg,
                                       default_to_identity=False)
        specs.append((item.name, call.func, arg_getter))
    if not specs:
        raise SemanticError("anomaly queries must aggregate at least one "
                            "value (e.g. avg(evt.amount))")
    return specs


def _history_depth(query: AnomalyQuery) -> int:
    depth = 1
    if query.having is not None:
        for ref in expr_history_refs(query.having):
            depth = max(depth, ref.offset + 1)
    return depth


def _render_row(window: Window, query: AnomalyQuery, group_key: tuple,
                display: tuple, aggregates: dict[str, object],
                group_getters) -> tuple:
    # Map each group-by ref to its display value for non-aggregate items.
    display_by_ref = {str(ref): display[i]
                      for i, ref in enumerate(query.group_by)}
    cells: list[object] = [format_timestamp(window.start)]
    for item in query.return_items:
        if isinstance(item.expr, AggCall):
            cells.append(aggregates[item.name])
        elif isinstance(item.expr, VarRef):
            key = str(item.expr)
            if key not in display_by_ref:
                raise SemanticError(
                    f"return item {key!r} must appear in group by "
                    f"(or be aggregated)")
            cells.append(display_by_ref[key])
        else:
            raise SemanticError(
                f"unsupported return expression {item.expr!r}")
    return tuple(cells)


# ---------------------------------------------------------------------------
# Having evaluation
# ---------------------------------------------------------------------------

class _HavingEvaluator:
    """Evaluates a having expression for one (window, group).

    Semantics: arithmetic involving an unresolved value (missing history,
    empty-set min/max) yields None, and any comparison or boolean operation
    on None is false — so anomalies only fire once enough history exists.
    """

    def __init__(self, query: AnomalyQuery, pattern,
                 history: GroupHistory) -> None:
        self._query = query
        self._pattern = pattern
        self._history = history
        self._group_refs = {str(ref): index
                            for index, ref in enumerate(query.group_by)}

    def passes(self, group: tuple, events: list[Event],
               current: dict[str, object]) -> bool:
        value = self._eval(self._query.having, group, events, current)
        return bool(value) if value is not None else False

    def _eval(self, expr: Expr, group: tuple, events: list[Event],
              current: dict[str, object]) -> object:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, HistoryRef):
            return self._history.lookup(group, expr.alias, expr.offset)
        if isinstance(expr, AggCall):
            alias = str(expr)
            if alias in current:
                return current[alias]
            # Aggregate not in the return clause: compute on the fly.
            if expr.arg is None:
                values: list[object] = [1] * len(events)
            else:
                getter = _value_getter(self._pattern, expr.arg,
                                       default_to_identity=False)
                values = [getter(evt) for evt in events]
            return aggregate(expr.func, values)
        if isinstance(expr, VarRef):
            name = str(expr)
            if expr.attribute is None and expr.variable in current:
                return current[expr.variable]
            if name in self._group_refs:
                index = self._group_refs[name]
                return group[index]
            raise SemanticError(f"having references unknown name {name!r}")
        if isinstance(expr, NotOp):
            inner = self._eval(expr.operand, group, events, current)
            if inner is None:
                return False
            return not inner
        if isinstance(expr, BinOp):
            return self._binop(expr, group, events, current)
        raise SemanticError(f"unsupported having expression {expr!r}")

    def _binop(self, expr: BinOp, group: tuple, events: list[Event],
               current: dict[str, object]) -> object:
        left = self._eval(expr.left, group, events, current)
        right = self._eval(expr.right, group, events, current)
        op = expr.op
        if op == "and":
            return bool(left) and bool(right)
        if op == "or":
            return bool(left) or bool(right)
        if left is None or right is None:
            return None
        if op == "+":
            return left + right  # type: ignore[operator]
        if op == "-":
            return left - right  # type: ignore[operator]
        if op == "*":
            return left * right  # type: ignore[operator]
        if op == "/":
            return left / right if right else None  # type: ignore[operator]
        if op == "%":
            return left % right if right else None  # type: ignore[operator]
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        try:
            if op == "<":
                return left < right  # type: ignore[operator]
            if op == "<=":
                return left <= right  # type: ignore[operator]
            if op == ">":
                return left > right  # type: ignore[operator]
            if op == ">=":
                return left >= right  # type: ignore[operator]
        except TypeError:
            return None
        raise SemanticError(f"unknown operator {op!r} in having")
