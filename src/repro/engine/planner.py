"""Query planning: one synthesized data query per event pattern.

§2.3: "Aiql addresses this challenge by synthesizing a SQL data query for
every event pattern and schedules the execution of these data queries using
our optimized scheduling strategy".  In this reproduction the synthesized
data query targets our own storage substrate instead of SQL, but the shape
is identical: a :class:`DataQuery` is the index-visible *profile* (what the
store can answer from postings) plus a fused *residual predicate* (the exact
semantics).

Planning also performs the constraint chaining the language promises: a
variable reused across patterns (``f1`` in Query 1) carries the union of all
its bracket constraints to every occurrence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from typing import Callable

from repro.errors import SemanticError
from repro.lang.ast import (AttributeRelation, Constraint, EventPattern,
                            MultieventQuery, TemporalRelation, VarRef)
from repro.model.entities import DEFAULT_ATTRIBUTE, canonical_attribute
from repro.model.events import canonical_event_attribute, validate_operation
from repro.model.timeutil import Window
from repro.engine.filters import (CompiledPredicate, EventPredicate,
                                  _compare, compile_atoms, entity_atom,
                                  global_atom, type_operation_atoms)
from repro.storage.backend import ScanOrder
from repro.storage.stats import PatternProfile


@dataclass(frozen=True, slots=True)
class DataQuery:
    """Everything needed to fetch and filter one pattern's matches.

    ``compiled`` carries the residual predicate in both evaluation modes
    (structured atoms for batch backends, fused per-event callable for
    row-at-a-time backends); ``predicate`` is the fused form, kept as its
    own field for direct per-event use.
    """

    index: int                       # position in the query's pattern list
    pattern: EventPattern
    event_type: str                  # the object entity type
    operations: frozenset[str]
    profile: PatternProfile
    predicate: EventPredicate
    compiled: CompiledPredicate
    agentids: frozenset[int] | None  # spatial pruning for this pattern
    subject_var: str
    object_var: str

    @property
    def event_var(self) -> str:
        return self.pattern.event_var

    @property
    def variables(self) -> tuple[str, str]:
        return (self.subject_var, self.object_var)


@dataclass(frozen=True, slots=True)
class RelationCheck:
    """A compiled ``with`` attribute relation, evaluated on bindings."""

    left_var: str
    right_var: str
    predicate: Callable[[dict], bool]

    def holds(self, binding: dict) -> bool:
        return self.predicate(binding)


@dataclass(frozen=True, slots=True)
class QueryPlan:
    """A planned multievent query, ready for the scheduler."""

    query: MultieventQuery
    data_queries: tuple[DataQuery, ...]
    window: Window | None
    agentids: frozenset[int] | None
    temporal: tuple[TemporalRelation, ...]  # normalized to 'before'
    variable_types: dict[str, str]
    relations: tuple[RelationCheck, ...] = ()
    #: Per-pattern needed-column sets (``None`` = the pattern's consumers
    #: are not statically known, fetch everything).  Derived from the
    #: return/sort/``with`` clauses plus join variables; the scheduler
    #: lowers them into each scan's :attr:`ScanSpec.projection`.
    projections: tuple[frozenset[str] | None, ...] = ()
    #: Pushed-down ``top N`` over time order, only ever set for
    #: single-pattern non-distinct queries whose result order is the
    #: canonical ``(ts, id)`` (or its descending mirror).
    scan_order: ScanOrder | None = None

    def shared_variables(self) -> dict[str, list[int]]:
        """Entity variable -> indexes of patterns where it appears."""
        shared: dict[str, list[int]] = {}
        for data_query in self.data_queries:
            for variable in set(data_query.variables):
                shared.setdefault(variable, []).append(data_query.index)
        return {var: idxs for var, idxs in shared.items() if len(idxs) > 1}

    def temporal_closure(self) -> dict[tuple[str, str], float]:
        """Transitive closure of the plan's ``before`` constraint graph.

        ``(u, v) -> d`` means u's event must precede v's (strictly) with
        ``v.ts - u.ts <= d``; ``d`` is ``inf`` when every path between
        them has an unbounded hop.  Each direct ``u before v [within d]``
        is an edge of weight ``d`` (or ``inf``); a chain composes because
        the deltas add — ``u before v within d1`` and ``v before w within
        d2`` force ``0 < w.ts - u.ts <= d1 + d2`` for any complete match,
        even though u and w share no relation (or variable).  The closure
        is the all-pairs *shortest* path, so the tightest derivable bound
        survives when multiple chains connect a pair.

        This is what lets the scheduler narrow *every* reachable
        pattern's bounds from one executed pattern, not just its direct
        temporal partners.
        """
        return temporal_closure(self.temporal)


def temporal_closure(temporal: tuple[TemporalRelation, ...],
                     ) -> dict[tuple[str, str], float]:
    """All-pairs shortest ``within`` totals over normalized before-edges.

    Floyd–Warshall over the (tiny) event-variable graph.  Presence of a
    key means precedence is derivable; the value is the minimal summed
    ``within`` across connecting paths, ``inf`` when unbounded.
    """
    dist: dict[tuple[str, str], float] = {}
    nodes: set[str] = set()
    for rel in temporal:
        nodes.add(rel.left)
        nodes.add(rel.right)
        weight = rel.within if rel.within is not None else math.inf
        key = (rel.left, rel.right)
        if key not in dist or weight < dist[key]:
            dist[key] = weight
    for via in nodes:
        for src in nodes:
            first = dist.get((src, via))
            if first is None:
                continue
            for dst in nodes:
                second = dist.get((via, dst))
                if second is None:
                    continue
                key = (src, dst)
                total = first + second
                if key not in dist or total < dist[key]:
                    dist[key] = total
    return dist


def _merge_variable_constraints(
        patterns: tuple[EventPattern, ...],
) -> dict[str, tuple[str, tuple[Constraint, ...]]]:
    """Union bracket constraints per entity variable (constraint chaining)."""
    merged: dict[str, tuple[str, list[Constraint]]] = {}
    for pattern in patterns:
        for entity in (pattern.subject, pattern.object):
            entry = merged.setdefault(entity.variable,
                                      (entity.entity_type, []))
            if entry[0] != entity.entity_type:
                raise SemanticError(
                    f"variable {entity.variable!r} used as both {entry[0]} "
                    f"and {entity.entity_type}")
            for constraint in entity.constraints:
                if constraint not in entry[1]:
                    entry[1].append(constraint)
    return {var: (etype, tuple(cons))
            for var, (etype, cons) in merged.items()}


def _split_agent_pin(constraints: tuple[Constraint, ...],
                     ) -> tuple[frozenset[int] | None,
                                tuple[Constraint, ...]]:
    """Extract agentid equality pins usable for partition pruning."""
    pins: frozenset[int] | None = None
    for constraint in constraints:
        if constraint.attribute != "agentid":
            continue
        if constraint.op == "=":
            values = frozenset({int(constraint.value)})  # type: ignore
        elif constraint.op == "in":
            values = frozenset(int(v) for v in constraint.value)  # type: ignore
        else:
            continue
        pins = values if pins is None else (pins & values)
    return pins, constraints


def _index_profile(event_type: str, operations: frozenset[str],
                   subject_constraints: tuple[Constraint, ...],
                   object_constraints: tuple[Constraint, ...],
                   ) -> PatternProfile:
    """Extract the parts of the constraints the posting indexes can answer."""
    subject_exact = subject_like = None
    for constraint in subject_constraints:
        attr = constraint.attribute
        if attr == "agentid":
            continue
        resolved = (DEFAULT_ATTRIBUTE["proc"] if attr is None
                    else canonical_attribute("proc", attr))
        if resolved != "exe_name":
            continue
        if constraint.op == "=" and isinstance(constraint.value, str):
            subject_exact = constraint.value
        elif constraint.op == "like" and subject_exact is None:
            subject_like = str(constraint.value)
    object_exact = object_like = None
    default = DEFAULT_ATTRIBUTE[event_type]
    for constraint in object_constraints:
        attr = constraint.attribute
        if attr == "agentid":
            continue
        resolved = (default if attr is None
                    else canonical_attribute(event_type, attr))
        if resolved != default:
            continue
        if constraint.op == "=" and isinstance(constraint.value, str):
            object_exact = constraint.value
        elif constraint.op == "like" and object_exact is None:
            object_like = str(constraint.value)
    return PatternProfile(event_type=event_type, operations=operations,
                          subject_exact=subject_exact,
                          subject_like=subject_like,
                          object_exact=object_exact,
                          object_like=object_like)


def plan_multievent(query: MultieventQuery) -> QueryPlan:
    """Build the execution plan for a multievent query."""
    header = query.header
    global_agents = header.agentids()
    global_atoms = [global_atom(c) for c in header.constraints
                    if not _is_agent_pin(c)]
    merged = _merge_variable_constraints(query.patterns)
    data_queries: list[DataQuery] = []
    for index, pattern in enumerate(query.patterns):
        subject_type, subject_constraints = merged[pattern.subject.variable]
        object_type, object_constraints = merged[pattern.object.variable]
        if subject_type != "proc":
            raise SemanticError(
                f"pattern {index + 1}: event subjects must be processes, "
                f"got {subject_type!r} for {pattern.subject.variable!r}")
        operations = frozenset(
            validate_operation(object_type, op) for op in pattern.operations)
        # The residual predicate must re-check event type and operation:
        # the store's best access path may be a subject-name index whose
        # posting lists span all event types.
        atoms = list(type_operation_atoms(object_type, operations))
        atoms.extend(global_atoms)
        atoms.extend(entity_atom(c, "proc", "subject")
                     for c in subject_constraints)
        atoms.extend(entity_atom(c, object_type, "object")
                     for c in object_constraints)
        compiled = compile_atoms(atoms)
        subject_pin, _ = _split_agent_pin(subject_constraints)
        agentids = _combine_agents(global_agents, subject_pin)
        profile = _index_profile(object_type, operations,
                                 subject_constraints, object_constraints)
        data_queries.append(DataQuery(
            index=index, pattern=pattern, event_type=object_type,
            operations=operations, profile=profile,
            predicate=compiled.event_predicate, compiled=compiled,
            agentids=agentids,
            subject_var=pattern.subject.variable,
            object_var=pattern.object.variable))
    temporal = tuple(rel.normalized() for rel in query.temporal)
    variable_types = {var: etype for var, (etype, _c) in merged.items()}
    event_vars = {pattern.event_var for pattern in query.patterns}
    relations = tuple(
        _compile_relation(relation, variable_types, event_vars)
        for relation in query.relations)
    queries = tuple(data_queries)
    return QueryPlan(query=query, data_queries=queries,
                     window=header.window,
                     agentids=(frozenset(global_agents)
                               if global_agents is not None else None),
                     temporal=temporal, variable_types=variable_types,
                     relations=relations,
                     projections=_derive_projections(query, queries),
                     scan_order=_derive_scan_order(query, queries))


def _derive_projections(query: MultieventQuery,
                        data_queries: tuple[DataQuery, ...],
                        ) -> tuple[frozenset[str] | None, ...]:
    """Per-pattern column sets the rest of the query actually consumes.

    A pattern's scan only needs a column when the return clause, a sort
    key, or a ``with`` attribute relation reads it, or when its entity
    side is a join variable shared with another pattern.  Filter-only
    attributes are *not* needed: backends evaluate the residual
    predicate before gathering, so a constrained-but-never-returned
    column never leaves the scan.  ``ts``/``id`` are implied (they carry
    the result order and temporal joins) and stay out of the sets.  A
    reference that does not resolve statically makes that pattern's
    projection ``None`` (fetch everything); projection is an
    optimization hint, never the place semantic errors surface.
    """
    refs = [item.expr for item in query.return_items
            if isinstance(item.expr, VarRef)]
    refs.extend(key.expr for key in query.sort_by)
    for relation in query.relations:
        refs.append(relation.left)
        refs.append(relation.right)
    shared: dict[str, int] = {}
    for dq in data_queries:
        for variable in set(dq.variables):
            shared[variable] = shared.get(variable, 0) + 1
    projections: list[frozenset[str] | None] = []
    for dq in data_queries:
        needed: set[str] = set()
        opaque = False
        for ref in refs:
            variable = ref.variable
            if variable == dq.event_var:
                try:
                    attribute = canonical_event_attribute(
                        ref.attribute or "id")
                except Exception:
                    opaque = True
                    break
                if attribute not in ("id", "ts"):
                    needed.add(attribute)
            else:
                if variable == dq.subject_var:
                    needed.add("subject")
                if variable == dq.object_var:
                    needed.add("object")
        if opaque:
            projections.append(None)
            continue
        for variable in set(dq.variables):
            if shared.get(variable, 0) > 1:
                if variable == dq.subject_var:
                    needed.add("subject")
                if variable == dq.object_var:
                    needed.add("object")
        projections.append(frozenset(needed))
    return tuple(projections)


def _derive_scan_order(query: MultieventQuery,
                       data_queries: tuple[DataQuery, ...],
                       ) -> ScanOrder | None:
    """Lower ``top N`` into a scan-level order when that is sound.

    Only a single-pattern plan can push its result order into the scan
    (a join reorders rows), only without ``distinct`` (dedup below the
    cut could surface rows past the first N survivors), and only when
    the result order is the canonical time order: no ``sort by``, or a
    single ``sort by <event>.ts [desc]`` on the pattern's event
    variable.  Descending maps to the ``(-ts, id)`` comparator — the
    exact order the executor's stable descending sort produces.
    """
    if query.top is None or query.distinct or len(data_queries) != 1:
        return None
    descending = False
    if query.sort_by:
        if len(query.sort_by) != 1:
            return None
        key = query.sort_by[0]
        ref = key.expr
        if ref.variable != data_queries[0].event_var:
            return None
        try:
            attribute = canonical_event_attribute(ref.attribute or "id")
        except Exception:
            return None
        if attribute != "ts":
            return None
        descending = key.descending
    return ScanOrder(descending=descending, limit=query.top)


def binding_getter(ref: VarRef, variable_types: dict[str, str],
                   event_vars: set[str]) -> Callable[[dict], object]:
    """Compile a VarRef into a getter over a joined binding.

    Shared by attribute relations, projection, and sort keys: an event
    variable resolves through the event attribute registry (default
    ``id``), an entity variable through its type's registry (default
    attribute when none is written).
    """
    variable = ref.variable
    if variable in event_vars:
        attribute = canonical_event_attribute(ref.attribute or "id")
        return lambda binding: getattr(binding[variable], attribute)
    entity_type = variable_types.get(variable)
    if entity_type is None:
        raise SemanticError(f"unknown variable {variable!r}")
    if ref.attribute is None:
        attribute = DEFAULT_ATTRIBUTE[entity_type]
    else:
        try:
            attribute = canonical_attribute(entity_type, ref.attribute)
        except Exception as exc:
            raise SemanticError(str(exc)) from None
    return lambda binding: getattr(binding[variable], attribute)


def _compile_relation(relation: AttributeRelation,
                      variable_types: dict[str, str],
                      event_vars: set[str]) -> RelationCheck:
    left = binding_getter(relation.left, variable_types, event_vars)
    right = binding_getter(relation.right, variable_types, event_vars)
    op = relation.op

    def predicate(binding: dict) -> bool:
        return _compare(op, left(binding), right(binding))

    return RelationCheck(left_var=relation.left.variable,
                         right_var=relation.right.variable,
                         predicate=predicate)


def _is_agent_pin(constraint: Constraint) -> bool:
    return (constraint.attribute == "agentid"
            and constraint.op in ("=", "in"))


def _combine_agents(global_agents: set[int] | None,
                    pattern_pin: frozenset[int] | None,
                    ) -> frozenset[int] | None:
    if global_agents is None and pattern_pin is None:
        return None
    if global_agents is None:
        return pattern_pin
    if pattern_pin is None:
        return frozenset(global_agents)
    return frozenset(global_agents) & pattern_pin
