"""The optimized scheduler: pruning-power ordering + binding propagation.

This is the first key insight of §2.3: "for a query with multiple event
patterns, we prioritize the search of event patterns with higher pruning
power, maximizing the reduction of irrelevant events as early as possible."

Concretely the scheduler:

1. estimates each data query's match cardinality from storage statistics
   and executes the most selective pattern first;
2. after each pattern executes, *propagates bindings* to the remaining
   patterns — shared entity variables restrict candidates to already-seen
   entity identities, and temporal relationships narrow the remaining
   patterns' time windows;
3. short-circuits to an empty result the moment any pattern has no match.

Both optimizations are individually toggleable so the ablation benchmark
can measure their contribution.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.model.events import Event
from repro.model.timeutil import Window
from repro.engine.planner import DataQuery, QueryPlan
from repro.storage.backend import IdentityBindings, StorageBackend


@dataclass
class PatternExecution:
    """Trace of one data query's execution (for explain/report output)."""

    event_var: str
    estimate: int
    fetched: int
    matched: int
    elapsed: float


@dataclass
class ExecutionReport:
    """What the engine did for one query — shown in the UI status area."""

    order: list[str] = field(default_factory=list)
    patterns: list[PatternExecution] = field(default_factory=list)
    short_circuited: bool = False
    joined_rows: int = 0
    elapsed: float = 0.0

    def describe(self) -> str:
        lines = [f"pattern order: {' -> '.join(self.order) or '(none)'}"]
        for trace in self.patterns:
            lines.append(
                f"  {trace.event_var}: estimate={trace.estimate} "
                f"fetched={trace.fetched} matched={trace.matched} "
                f"({trace.elapsed * 1000:.1f} ms)")
        if self.short_circuited:
            lines.append("  short-circuited: a pattern had no matches")
        lines.append(f"joined rows: {self.joined_rows}")
        lines.append(f"total: {self.elapsed * 1000:.1f} ms")
        return "\n".join(lines)


@dataclass
class ScheduledMatches:
    """Per-pattern candidate lists in execution order, ready to join."""

    order: list[DataQuery]
    events: dict[int, list[Event]]  # data-query index -> matches
    report: ExecutionReport


class Scheduler:
    """Executes a plan's data queries in pruning-power order.

    Works against any :class:`~repro.storage.backend.StorageBackend`; each
    pattern's fetch-and-filter goes through the backend's ``select`` so a
    batch-evaluating substrate can push the residual predicate into its
    scan.

    With ``pushdown`` enabled (the default), propagated identity-binding
    sets travel *into* the backend as
    :class:`~repro.storage.backend.IdentityBindings` hints, pruning
    candidates inside the scan; the in-engine post-filter stays as a
    correctness fallback for backends that ignore the hint.  Remaining
    patterns are also re-estimated under the current bindings after each
    step, so pruning-power ordering reacts to propagation.
    """

    def __init__(self, store: StorageBackend, *, prioritize: bool = True,
                 propagate: bool = True, pushdown: bool = True) -> None:
        self._store = store
        self._prioritize = prioritize
        self._propagate = propagate
        self._pushdown = pushdown

    def run(self, plan: QueryPlan,
            window: Window | None = None,
            agentids: frozenset[int] | None = None) -> ScheduledMatches:
        """Fetch and filter matches for every pattern.

        ``window``/``agentids`` optionally override the plan's own bounds —
        the parallel executor uses this to run the same plan per partition.
        """
        base_window = window if window is not None else plan.window
        started = time.perf_counter()
        report = ExecutionReport()

        estimates = {
            dq.index: self._store.estimate(
                dq.profile, base_window, _agents(dq, agentids))
            for dq in plan.data_queries
        }
        ordered = list(plan.data_queries)
        if self._prioritize:
            ordered.sort(key=lambda dq: (estimates[dq.index], dq.index))

        # Binding state threaded through pattern executions.
        identity_sets: dict[str, set[tuple]] = {}
        ts_bounds: dict[str, tuple[float, float]] = {}
        matches: dict[int, list[Event]] = {}

        for position, dq in enumerate(ordered):
            step_started = time.perf_counter()
            effective = self._narrow_window(dq, plan, base_window, ts_bounds,
                                            matches)
            bindings = (self._bindings_for(dq, identity_sets)
                        if self._propagate else None)
            survivors, fetched = self._store.select(
                dq.profile, dq.compiled, effective, _agents(dq, agentids),
                bindings if self._pushdown else None)
            if bindings is not None:
                # Correctness fallback: exact even when the backend
                # ignored (or only partially applied) the pushdown hint.
                admits = bindings.admits
                survivors = [event for event in survivors
                             if admits(event)]
            matches[dq.index] = survivors
            report.patterns.append(PatternExecution(
                event_var=dq.event_var, estimate=estimates[dq.index],
                fetched=fetched, matched=len(survivors),
                elapsed=time.perf_counter() - step_started))
            if not survivors:
                report.short_circuited = True
                report.order = [d.event_var for d in ordered]
                report.elapsed = time.perf_counter() - started
                return ScheduledMatches(order=ordered, events={
                    d.index: matches.get(d.index, [])
                    for d in plan.data_queries}, report=report)
            if self._propagate:
                self._update_bindings(dq, survivors, identity_sets,
                                      ts_bounds)
                self._reorder_remaining(ordered, position, dq, estimates,
                                        base_window, agentids,
                                        identity_sets)
        report.order = [dq.event_var for dq in ordered]
        report.elapsed = time.perf_counter() - started
        return ScheduledMatches(order=ordered, events=matches, report=report)

    def _reorder_remaining(self, ordered: list[DataQuery], position: int,
                           executed: DataQuery, estimates: dict[int, int],
                           base_window: Window | None,
                           agentids: frozenset[int] | None,
                           identity_sets: dict[str, set[tuple]]) -> None:
        """Re-estimate unexecuted patterns under the current bindings.

        Binding propagation changes pruning power mid-flight: a pattern
        that looked expensive upfront may be nearly free once its entity
        variables are pinned.  Only the patterns sharing a variable the
        just-executed pattern bound can have changed cost, so only those
        are re-estimated.  Only worth re-sorting when at least two
        patterns remain, and only meaningful when the backend sees the
        bindings (``pushdown``).
        """
        remaining = ordered[position + 1:]
        if not (self._prioritize and self._pushdown and len(remaining) > 1):
            return
        updated_vars = {executed.subject_var, executed.object_var}
        changed = False
        for dq in remaining:
            if updated_vars.isdisjoint(dq.variables):
                continue
            estimates[dq.index] = self._store.estimate(
                dq.profile, base_window, _agents(dq, agentids),
                self._bindings_for(dq, identity_sets))
            changed = True
        if not changed:
            return
        remaining.sort(key=lambda dq: (estimates[dq.index], dq.index))
        ordered[position + 1:] = remaining

    # ------------------------------------------------------------------
    # Binding propagation
    # ------------------------------------------------------------------
    def _narrow_window(self, dq: DataQuery, plan: QueryPlan,
                       base: Window | None,
                       ts_bounds: dict[str, tuple[float, float]],
                       matches: dict[int, list[Event]],
                       ) -> Window | None:
        """Clip this pattern's window using executed temporal partners.

        For ``u before v``: once u has matched with earliest timestamp t0,
        v's candidates need ``ts > t0`` (weakest sound bound over all
        possible partners); symmetrically once v has matched with latest
        timestamp t1, u needs ``ts < t1``.  ``within d`` tightens the other
        side of the interval.

        Inclusivity matters at the edges: windows are half-open, so an
        *exclusive* bound (strict ``before``) maps onto the window end
        directly, while the *inclusive* ``within`` bound
        (``v.ts - u.ts <= d``) must nudge the end one ulp up — otherwise a
        partner event exactly at ``t1 + d`` is silently dropped and the
        optimization changes results.
        """
        if not self._propagate:
            return base
        lo, hi = (-float("inf"), float("inf"))
        var = dq.event_var
        for rel in plan.temporal:
            if rel.right == var and rel.left in ts_bounds:
                partner_lo, partner_hi = ts_bounds[rel.left]
                lo = max(lo, partner_lo)
                if rel.within is not None:
                    hi = min(hi, math.nextafter(partner_hi + rel.within,
                                                math.inf))
            elif rel.left == var and rel.right in ts_bounds:
                partner_lo, partner_hi = ts_bounds[rel.right]
                hi = min(hi, partner_hi)
                if rel.within is not None:
                    lo = max(lo, partner_lo - rel.within)
        if lo == -float("inf") and hi == float("inf"):
            return base
        if base is not None:
            lo = max(lo, base.start)
            hi = min(hi, base.end)
        if lo >= hi:
            # Empty window: no event can satisfy the temporal constraints.
            return Window(lo, lo)
        if lo == -float("inf") or hi == float("inf"):
            span = self._store.span
            if span is None:
                return base
            lo = max(lo, span.start)
            hi = min(hi, span.end)
            if lo >= hi:
                return Window(lo, lo)
        return Window(lo, hi)

    @staticmethod
    def _bindings_for(dq: DataQuery,
                      identity_sets: dict[str, set[tuple]],
                      ) -> IdentityBindings | None:
        """Pushdown hint for one pattern from the propagated binding state."""
        subjects = identity_sets.get(dq.subject_var)
        objects = identity_sets.get(dq.object_var)
        if subjects is None and objects is None:
            return None
        return IdentityBindings(
            subjects=frozenset(subjects) if subjects is not None else None,
            objects=frozenset(objects) if objects is not None else None)

    def _update_bindings(self, dq: DataQuery, events: list[Event],
                         identity_sets: dict[str, set[tuple]],
                         ts_bounds: dict[str, tuple[float, float]]) -> None:
        subject_ids = {event.subject.identity for event in events}
        object_ids = {event.object.identity for event in events}
        for var, ids in ((dq.subject_var, subject_ids),
                         (dq.object_var, object_ids)):
            existing = identity_sets.get(var)
            identity_sets[var] = ids if existing is None else existing & ids
        timestamps = [event.ts for event in events]
        ts_bounds[dq.event_var] = (min(timestamps), max(timestamps))


def _agents(dq: DataQuery,
            override: frozenset[int] | None) -> set[int] | None:
    own = dq.agentids
    if override is None:
        return set(own) if own is not None else None
    if own is None:
        return set(override)
    return set(own & override)
