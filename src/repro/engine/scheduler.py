"""The optimized scheduler: pruning-power ordering + binding propagation.

This is the first key insight of §2.3: "for a query with multiple event
patterns, we prioritize the search of event patterns with higher pruning
power, maximizing the reduction of irrelevant events as early as possible."

Concretely the scheduler:

1. estimates each data query's match cardinality from storage statistics
   and executes the most selective pattern first;
2. after each pattern executes, *propagates bindings* to the remaining
   patterns — shared entity variables restrict candidates to already-seen
   entity identities, and temporal relationships narrow the remaining
   patterns' time windows;
3. short-circuits to an empty result the moment any pattern has no match.

Both optimizations are individually toggleable so the ablation benchmark
can measure their contribution.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass, field, replace

from repro.model.events import Event
from repro.model.timeutil import Window
from repro.obs.clock import monotonic
from repro.obs.trace import NULL_TRACER
from repro.engine.options import DEFAULT_OPTIONS, EngineOptions
from repro.engine.planner import DataQuery, QueryPlan
from repro.storage.backend import (IdentityBindings, ScanOrder, ScanSpec,
                                   StorageBackend, TemporalBounds)


def annotate_path(name: str, spec: ScanSpec) -> str:
    """Append the spec's projection/order pushdowns to an access-path name.

    The explain surface's rendering of the vectorized levers: which
    columns the scan was asked to gather and whether a top-k limit was
    pushed into it (``first``/``last`` = ascending/descending time
    order).
    """
    parts = [name]
    if spec.projection is not None:
        parts.append(f"proj=[{','.join(sorted(spec.projection)) or '-'}]")
    if spec.order is not None and spec.order.limit is not None:
        direction = "last" if spec.order.descending else "first"
        parts.append(f"limit={spec.order.limit}({direction})")
    return " ".join(parts)


def describe_spec(spec: ScanSpec) -> str:
    """Compact one-line ScanSpec summary for span attributes.

    Binding sets and windows can be huge; the trace wants their *shape*
    (set sizes, bound presence), not their contents.
    """
    parts = []
    if spec.window is not None:
        parts.append(f"window=[{spec.window.start:.0f},{spec.window.end:.0f})")
    if spec.agentids is not None:
        parts.append(f"agents={len(spec.agentids)}")
    if spec.bindings is not None:
        subjects = spec.bindings.subjects
        objects = spec.bindings.objects
        parts.append("bindings=subj:%s/obj:%s" % (
            "-" if subjects is None else len(subjects),
            "-" if objects is None else len(objects)))
    if spec.bounds is not None:
        parts.append("bounds=(%s,%s)" % (
            "-inf" if spec.bounds.lo == -math.inf else f"{spec.bounds.lo:.0f}",
            "inf" if spec.bounds.hi == math.inf else f"{spec.bounds.hi:.0f}"))
    if spec.projection is not None:
        parts.append(f"proj=[{','.join(sorted(spec.projection)) or '-'}]")
    if spec.order is not None and spec.order.limit is not None:
        direction = "last" if spec.order.descending else "first"
        parts.append(f"order={direction}:{spec.order.limit}")
    return " ".join(parts) or "full-scan"


@dataclass
class PatternExecution:
    """Trace of one data query's execution (for explain/report output)."""

    event_var: str
    estimate: int
    fetched: int
    matched: int
    elapsed: float
    path: str = ""          # chosen access path (explain mode only)


@dataclass
class ExecutionReport:
    """What the engine did for one query — shown in the UI status area."""

    order: list[str] = field(default_factory=list)
    patterns: list[PatternExecution] = field(default_factory=list)
    short_circuited: bool = False
    joined_rows: int = 0
    elapsed: float = 0.0

    def aggregated(self) -> "list[PatternExecution]":
        """Per-pattern totals across partitions, in execution order.

        The parallel executor concatenates one :class:`PatternExecution`
        per pattern *per partition*; the EXPLAIN ANALYZE surface wants
        one line per pattern, so sum counts and elapsed per event
        variable (keeping the first recorded access path).
        """
        by_var: dict[str, PatternExecution] = {}
        for trace in self.patterns:
            agg = by_var.get(trace.event_var)
            if agg is None:
                by_var[trace.event_var] = PatternExecution(
                    event_var=trace.event_var, estimate=trace.estimate,
                    fetched=trace.fetched, matched=trace.matched,
                    elapsed=trace.elapsed, path=trace.path)
            else:
                agg.estimate += trace.estimate
                agg.fetched += trace.fetched
                agg.matched += trace.matched
                agg.elapsed += trace.elapsed
                if not agg.path:
                    agg.path = trace.path
        ordered = [var for var in dict.fromkeys(self.order) if var in by_var]
        ordered += [var for var in by_var if var not in ordered]
        return [by_var[var] for var in ordered]

    def describe(self) -> str:
        lines = [f"pattern order: {' -> '.join(self.order) or '(none)'}"]
        for trace in self.patterns:
            path = f" path={trace.path}" if trace.path else ""
            lines.append(
                f"  {trace.event_var}:{path} estimate={trace.estimate} "
                f"fetched={trace.fetched} matched={trace.matched} "
                f"({trace.elapsed * 1000:.1f} ms)")
        if self.short_circuited:
            lines.append("  short-circuited: a pattern had no matches")
        lines.append(f"joined rows: {self.joined_rows}")
        lines.append(f"total: {self.elapsed * 1000:.1f} ms")
        return "\n".join(lines)


@dataclass
class ScheduledMatches:
    """Per-pattern candidate lists in execution order, ready to join."""

    order: list[DataQuery]
    events: dict[int, list[Event]]  # data-query index -> matches
    report: ExecutionReport


class Scheduler:
    """Executes a plan's data queries in pruning-power order.

    Works against any :class:`~repro.storage.backend.StorageBackend`; each
    pattern's fetch-and-filter goes through the backend's ``select`` so a
    batch-evaluating substrate can push the residual predicate into its
    scan.  One :class:`~repro.engine.options.EngineOptions` value carries
    every toggle — the scan-facing ones are lowered into the
    :class:`~repro.storage.backend.ScanSpec` each scan receives.

    With ``pushdown`` enabled (the default), propagated identity-binding
    sets and temporal bounds travel *into* the backend inside the spec,
    pruning candidates during the scan; the in-engine post-filters stay
    as a correctness fallback for backends that ignore the hints.
    Remaining patterns are also re-estimated under the current bindings
    and bounds after each step, so pruning-power ordering reacts to
    propagation.

    Temporal bounds are *transitive*: a chain ``e1 before e2``, ``e2
    before e3`` narrows e3 the moment e1 executes, even though they share
    no relation or variable, via the plan's shortest-path closure over
    the temporal-constraint graph.  Narrowing is also *two-sided*: after
    each execution the recorded span of every already-executed pattern is
    re-tightened against its partners' spans (an executed broad pattern
    shrinks retroactively once a later anchor pins the chain), so the
    bounds derived from it stop covering events that can no longer pair.
    ``temporal_pushdown`` and ``bitmap_bindings`` (both subordinate to
    ``pushdown``) let the ablation benchmark isolate the temporal-bounds
    scan pushdown and the large-binding-set bitmap/bloom representation;
    with either off, the exact post-filters carry the full restriction
    and results are identical.
    """

    def __init__(self, store: StorageBackend,
                 options: EngineOptions = DEFAULT_OPTIONS) -> None:
        self._store = store
        self._options = options
        self._prioritize = options.prioritize
        self._propagate = options.propagate
        self._pushdown = options.pushdown
        self._temporal = options.pushdown and options.temporal_pushdown
        self._bitmap = options.pushdown and options.bitmap_bindings
        self._histograms = options.histogram_estimates
        self._projection = options.projection_pushdown
        self._topk = options.topk_pushdown
        self._explain = options.explain
        self._verify = options.verify_plans
        self._tracer = options.tracer or NULL_TRACER
        self._trace_on = options.tracer is not None

    def _spec(self, window: Window | None,
              agentids: set[int] | None,
              bindings: IdentityBindings | None = None,
              bounds: TemporalBounds | None = None,
              projection: frozenset[str] | None = None,
              order: ScanOrder | None = None) -> ScanSpec:
        return ScanSpec(window=window, agentids=agentids,
                        bindings=bindings, bounds=bounds,
                        histograms=self._histograms,
                        projection=projection, order=order)

    def run(self, plan: QueryPlan,
            window: Window | None = None,
            agentids: frozenset[int] | None = None) -> ScheduledMatches:
        """Fetch and filter matches for every pattern.

        ``window``/``agentids`` optionally override the plan's own bounds —
        the parallel executor uses this to run the same plan per partition.
        """
        base_window = window if window is not None else plan.window
        started = monotonic()
        report = ExecutionReport()

        estimates = {
            dq.index: self._store.estimate(
                dq.profile, self._spec(base_window, _agents(dq, agentids)))
            for dq in plan.data_queries
        }
        ordered = list(plan.data_queries)
        if self._prioritize:
            ordered.sort(key=lambda dq: (estimates[dq.index], dq.index))

        projections = plan.projections if self._projection else ()
        # A pushed ScanOrder truncates at the backend; that is only sound
        # when no post-filter can thin the survivors further (the planner
        # already restricts it to single-pattern plans, where no bindings
        # or bounds ever propagate — the guard below keeps it that way).
        scan_order = plan.scan_order if self._topk else None

        # Binding state threaded through pattern executions.
        closure = plan.temporal_closure() if self._propagate else {}
        identity_sets: dict[str, set[tuple]] = {}
        ts_bounds: dict[str, tuple[float, float]] = {}
        matches: dict[int, list[Event]] = {}
        executed: list[tuple[DataQuery, list[Event]]] = []

        for position, dq in enumerate(ordered):
            step_started = monotonic()
            bounds = (self._bounds_for(dq, closure, ts_bounds)
                      if self._propagate else None)
            bindings = (self._bindings_for(dq, identity_sets)
                        if self._propagate else None)
            spec = self._spec(base_window, _agents(dq, agentids),
                              bindings if self._pushdown else None,
                              bounds if self._temporal else None,
                              projection=(projections[dq.index]
                                          if projections else None),
                              order=(scan_order
                                     if bindings is None and bounds is None
                                     else None))
            if self._verify:
                # Soundness gate: re-derive what this spec may claim from
                # the plan and the current propagation state, before the
                # backend acts on any of its hints.
                from repro.engine.verify import verify_spec
                verify_spec(plan, dq, spec, closure=closure,
                            identity_sets=identity_sets,
                            ts_bounds=ts_bounds)
            with self._tracer.span("scan", pattern=dq.event_var) as scan_span:
                survivors, fetched = self._store.select(
                    dq.profile, dq.compiled, spec)
                if bindings is not None:
                    # Correctness fallback: exact even when the backend
                    # ignored (or only partially applied) the pushdown
                    # hint.
                    admits = bindings.admits
                    survivors = [event for event in survivors
                                 if admits(event)]
                if bounds is not None:
                    # Same fallback for the temporal hint — and the entire
                    # restriction when temporal pushdown is ablated off.
                    in_bounds = bounds.admits
                    survivors = [event for event in survivors
                                 if in_bounds(event.ts)]
            matches[dq.index] = survivors
            step_elapsed = monotonic() - step_started
            # Path introspection happens off the clock: it re-costs the
            # scan (a COUNT on sqlite) and must not pollute the timing
            # the explain surface reports.
            path = (annotate_path(
                        self._store.access_path(dq.profile, spec).name, spec)
                    if self._explain else "")
            if self._trace_on:
                # Attribute hydration is also off the clock (and off the
                # hot path entirely — the null tracer skips it).
                scan_span.set(spec=describe_spec(spec),
                              estimate=estimates[dq.index],
                              fetched=fetched, matched=len(survivors),
                              bytes_hydrated=_shallow_bytes(survivors),
                              path=path)
            report.patterns.append(PatternExecution(
                event_var=dq.event_var, estimate=estimates[dq.index],
                fetched=fetched, matched=len(survivors),
                elapsed=step_elapsed, path=path))
            if not survivors:
                report.short_circuited = True
                report.order = [d.event_var for d in ordered]
                report.elapsed = monotonic() - started
                return ScheduledMatches(order=ordered, events={
                    d.index: matches.get(d.index, [])
                    for d in plan.data_queries}, report=report)
            if self._propagate:
                executed.append((dq, survivors))
                self._update_bindings(dq, survivors, identity_sets,
                                      ts_bounds)
                self._narrow_executed_spans(closure, ts_bounds, executed)
                self._reorder_remaining(ordered, position, dq, estimates,
                                        base_window, agentids,
                                        identity_sets, closure, ts_bounds)
        report.order = [dq.event_var for dq in ordered]
        report.elapsed = monotonic() - started
        return ScheduledMatches(order=ordered, events=matches, report=report)

    def explain(self, plan: QueryPlan,
                window: Window | None = None,
                agentids: frozenset[int] | None = None,
                ) -> list[tuple[DataQuery, int, "object"]]:
        """Static per-pattern scan decisions, without executing.

        Returns ``(data query, statistics-based estimate, access path)``
        triples — the plan half of the ``explain()`` surface; the
        execution half (actual rows) comes from running with
        ``options.explain`` on.
        """
        base_window = window if window is not None else plan.window
        projections = plan.projections if self._projection else ()
        scan_order = plan.scan_order if self._topk else None
        decisions = []
        for dq in plan.data_queries:
            spec = self._spec(base_window, _agents(dq, agentids),
                              projection=(projections[dq.index]
                                          if projections else None),
                              order=scan_order)
            # Diagnostic path: estimate and access_path may re-cost the
            # same scan (sqlite answers both with a COUNT); explain is
            # explicitly requested and never on the execution hot path.
            estimate = self._store.estimate(dq.profile, spec)
            info = self._store.access_path(dq.profile, spec)
            decisions.append((dq, estimate,
                              replace(info, name=annotate_path(info.name,
                                                               spec))))
        return decisions

    def _reorder_remaining(self, ordered: list[DataQuery], position: int,
                           executed: DataQuery, estimates: dict[int, int],
                           base_window: Window | None,
                           agentids: frozenset[int] | None,
                           identity_sets: dict[str, set[tuple]],
                           closure: dict[tuple[str, str], float],
                           ts_bounds: dict[str, tuple[float, float]],
                           ) -> None:
        """Re-estimate unexecuted patterns under bindings and bounds.

        Binding propagation changes pruning power mid-flight: a pattern
        that looked expensive upfront may be nearly free once its entity
        variables are pinned or its time interval collapses.  Only the
        patterns sharing a variable the just-executed pattern bound — or
        reachable from it through the temporal closure — can have changed
        cost, so only those are re-estimated.  Only worth re-sorting when
        at least two patterns remain, and only meaningful when the
        backend sees the hints (``pushdown``).
        """
        remaining = ordered[position + 1:]
        if not (self._prioritize and self._pushdown and len(remaining) > 1):
            return
        updated_vars = {executed.subject_var, executed.object_var}
        executed_var = executed.event_var
        changed = False
        for dq in remaining:
            temporally_linked = (
                self._temporal
                and ((executed_var, dq.event_var) in closure
                     or (dq.event_var, executed_var) in closure))
            if updated_vars.isdisjoint(dq.variables) and not temporally_linked:
                continue
            estimates[dq.index] = self._store.estimate(
                dq.profile, self._spec(
                    base_window, _agents(dq, agentids),
                    self._bindings_for(dq, identity_sets),
                    (self._bounds_for(dq, closure, ts_bounds)
                     if self._temporal else None)))
            changed = True
        if not changed:
            return
        remaining.sort(key=lambda dq: (estimates[dq.index], dq.index))
        ordered[position + 1:] = remaining

    # ------------------------------------------------------------------
    # Binding propagation
    # ------------------------------------------------------------------
    @staticmethod
    def _bounds_for(dq: DataQuery,
                    closure: dict[tuple[str, str], float],
                    ts_bounds: dict[str, tuple[float, float]],
                    ) -> TemporalBounds | None:
        """Timestamp bounds for this pattern from executed partners.

        For every executed pattern u reachable through the temporal
        closure: if u precedes this pattern (total ``within`` D over the
        tightest chain), candidates need ``ts > u_min`` — the weakest
        sound bound over all possible partner events — and, when D is
        finite, ``ts <= u_max + D`` (the ``within`` bound is inclusive).
        Symmetrically when this pattern precedes u: ``ts < u_max`` and,
        with finite D, ``ts >= u_min - D``.

        Inclusivity is carried per side instead of being folded into a
        half-open window here, so each backend lowers it exactly — a
        partner event exactly at ``u_max + D`` must survive, one exactly
        at ``u_min`` must not.  Equal bound values keep the *strict*
        variant (the tighter of the two sound restrictions).
        """
        lo, hi = -math.inf, math.inf
        lo_strict = hi_strict = False
        var = dq.event_var
        for partner, (partner_lo, partner_hi) in ts_bounds.items():
            if partner == var:
                continue
            delay = closure.get((partner, var))
            if delay is not None:      # partner (transitively) before var
                if partner_lo > lo or (partner_lo == lo and not lo_strict):
                    lo, lo_strict = partner_lo, True
                if delay != math.inf and partner_hi + delay < hi:
                    hi, hi_strict = partner_hi + delay, False
            delay = closure.get((var, partner))
            if delay is not None:      # var (transitively) before partner
                if partner_hi < hi or (partner_hi == hi and not hi_strict):
                    hi, hi_strict = partner_hi, True
                if delay != math.inf and partner_lo - delay > lo:
                    lo, lo_strict = partner_lo - delay, False
        if lo == -math.inf and hi == math.inf:
            return None
        return TemporalBounds(lo=lo, hi=hi, lo_strict=lo_strict,
                              hi_strict=hi_strict)

    def _narrow_executed_spans(self, closure: dict[tuple[str, str], float],
                               ts_bounds: dict[str, tuple[float, float]],
                               executed: list[tuple[DataQuery, list[Event]]],
                               ) -> None:
        """Two-sided interval narrowing over the executed patterns.

        The bounds a remaining pattern derives from an executed partner u
        use u's recorded ``(min ts, max ts)`` span — but a pattern that
        executed *later* can invalidate much of that span.  With ``e1
        before e2 within d`` and e2 executed first over a broad interval,
        e1's single match at t pins e2's *usable* events to ``(t, t+d]``;
        any bound still derived from e2's full span is sound but loose.

        After each execution, re-tighten every executed pattern's span to
        the events of it that survive the bounds induced by its partners'
        current spans, iterating to a fixpoint (the graphs are tiny).
        Dropping span-mass here is sound because ``_bounds_for`` is
        sound: an event outside those bounds cannot appear in any
        complete match, so no remaining pattern needs to pair with it.
        """
        if len(executed) < 2 or not closure:
            return
        for _round in range(len(executed)):
            changed = False
            for dq, events in executed:
                var = dq.event_var
                current = ts_bounds.get(var)
                if current is None:
                    continue
                bounds = self._bounds_for(dq, closure, ts_bounds)
                if bounds is None or not bounds:
                    continue
                admits = bounds.admits
                narrowed_lo = math.inf
                narrowed_hi = -math.inf
                for event in events:
                    ts = event.ts
                    if current[0] <= ts <= current[1] and admits(ts):
                        if ts < narrowed_lo:
                            narrowed_lo = ts
                        if ts > narrowed_hi:
                            narrowed_hi = ts
                if narrowed_lo > narrowed_hi:
                    # No executed event survives its partners' bounds: the
                    # join is already doomed, and the current (wider) span
                    # stays sound for the remaining scans.
                    continue
                narrowed = (max(narrowed_lo, current[0]),
                            min(narrowed_hi, current[1]))
                if narrowed != current:
                    ts_bounds[var] = narrowed
                    changed = True
            if not changed:
                break

    def _bindings_for(self, dq: DataQuery,
                      identity_sets: dict[str, set[tuple]],
                      ) -> IdentityBindings | None:
        """Pushdown hint for one pattern from the propagated binding state."""
        subjects = identity_sets.get(dq.subject_var)
        objects = identity_sets.get(dq.object_var)
        if subjects is None and objects is None:
            return None
        return IdentityBindings(
            subjects=frozenset(subjects) if subjects is not None else None,
            objects=frozenset(objects) if objects is not None else None,
            compact=self._bitmap)

    def _update_bindings(self, dq: DataQuery, events: list[Event],
                         identity_sets: dict[str, set[tuple]],
                         ts_bounds: dict[str, tuple[float, float]]) -> None:
        subject_ids = {event.subject.identity for event in events}
        object_ids = {event.object.identity for event in events}
        for var, ids in ((dq.subject_var, subject_ids),
                         (dq.object_var, object_ids)):
            existing = identity_sets.get(var)
            identity_sets[var] = ids if existing is None else existing & ids
        timestamps = [event.ts for event in events]
        ts_bounds[dq.event_var] = (min(timestamps), max(timestamps))


def _shallow_bytes(events: list[Event]) -> int:
    """Shallow memory of the survivor objects the scan hydrated.

    Only computed when tracing is on; an honest lower bound (entity
    payloads are shared/interned, so deep sizes would double-count).
    """
    return sum(sys.getsizeof(event) for event in events)


def _agents(dq: DataQuery,
            override: frozenset[int] | None) -> set[int] | None:
    own = dq.agentids
    if override is None:
        return set(own) if own is not None else None
    if own is None:
        return set(override)
    return set(own & override)
