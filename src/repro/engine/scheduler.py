"""The optimized scheduler: pruning-power ordering + binding propagation.

This is the first key insight of §2.3: "for a query with multiple event
patterns, we prioritize the search of event patterns with higher pruning
power, maximizing the reduction of irrelevant events as early as possible."

Concretely the scheduler:

1. estimates each data query's match cardinality from storage statistics
   and executes the most selective pattern first;
2. after each pattern executes, *propagates bindings* to the remaining
   patterns — shared entity variables restrict candidates to already-seen
   entity identities, and temporal relationships narrow the remaining
   patterns' time windows;
3. short-circuits to an empty result the moment any pattern has no match.

Both optimizations are individually toggleable so the ablation benchmark
can measure their contribution.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.model.events import Event
from repro.model.timeutil import Window
from repro.engine.planner import DataQuery, QueryPlan
from repro.storage.backend import (IdentityBindings, StorageBackend,
                                   TemporalBounds)


@dataclass
class PatternExecution:
    """Trace of one data query's execution (for explain/report output)."""

    event_var: str
    estimate: int
    fetched: int
    matched: int
    elapsed: float


@dataclass
class ExecutionReport:
    """What the engine did for one query — shown in the UI status area."""

    order: list[str] = field(default_factory=list)
    patterns: list[PatternExecution] = field(default_factory=list)
    short_circuited: bool = False
    joined_rows: int = 0
    elapsed: float = 0.0

    def describe(self) -> str:
        lines = [f"pattern order: {' -> '.join(self.order) or '(none)'}"]
        for trace in self.patterns:
            lines.append(
                f"  {trace.event_var}: estimate={trace.estimate} "
                f"fetched={trace.fetched} matched={trace.matched} "
                f"({trace.elapsed * 1000:.1f} ms)")
        if self.short_circuited:
            lines.append("  short-circuited: a pattern had no matches")
        lines.append(f"joined rows: {self.joined_rows}")
        lines.append(f"total: {self.elapsed * 1000:.1f} ms")
        return "\n".join(lines)


@dataclass
class ScheduledMatches:
    """Per-pattern candidate lists in execution order, ready to join."""

    order: list[DataQuery]
    events: dict[int, list[Event]]  # data-query index -> matches
    report: ExecutionReport


class Scheduler:
    """Executes a plan's data queries in pruning-power order.

    Works against any :class:`~repro.storage.backend.StorageBackend`; each
    pattern's fetch-and-filter goes through the backend's ``select`` so a
    batch-evaluating substrate can push the residual predicate into its
    scan.

    With ``pushdown`` enabled (the default), propagated identity-binding
    sets travel *into* the backend as
    :class:`~repro.storage.backend.IdentityBindings` hints and propagated
    temporal bounds as :class:`~repro.storage.backend.TemporalBounds`,
    pruning candidates inside the scan; the in-engine post-filters stay
    as a correctness fallback for backends that ignore the hints.
    Remaining patterns are also re-estimated under the current bindings
    and bounds after each step, so pruning-power ordering reacts to
    propagation.

    Temporal bounds are *transitive*: a chain ``e1 before e2``, ``e2
    before e3`` narrows e3 the moment e1 executes, even though they share
    no relation or variable, via the plan's shortest-path closure over
    the temporal-constraint graph.  ``temporal_pushdown`` and
    ``bitmap_bindings`` (both subordinate to ``pushdown``) let the
    ablation benchmark isolate the temporal-bounds scan pushdown and the
    large-binding-set bitmap representation; with either off, the exact
    post-filters carry the full restriction and results are identical.
    """

    def __init__(self, store: StorageBackend, *, prioritize: bool = True,
                 propagate: bool = True, pushdown: bool = True,
                 temporal_pushdown: bool = True,
                 bitmap_bindings: bool = True) -> None:
        self._store = store
        self._prioritize = prioritize
        self._propagate = propagate
        self._pushdown = pushdown
        self._temporal = pushdown and temporal_pushdown
        self._bitmap = pushdown and bitmap_bindings

    def run(self, plan: QueryPlan,
            window: Window | None = None,
            agentids: frozenset[int] | None = None) -> ScheduledMatches:
        """Fetch and filter matches for every pattern.

        ``window``/``agentids`` optionally override the plan's own bounds —
        the parallel executor uses this to run the same plan per partition.
        """
        base_window = window if window is not None else plan.window
        started = time.perf_counter()
        report = ExecutionReport()

        estimates = {
            dq.index: self._store.estimate(
                dq.profile, base_window, _agents(dq, agentids))
            for dq in plan.data_queries
        }
        ordered = list(plan.data_queries)
        if self._prioritize:
            ordered.sort(key=lambda dq: (estimates[dq.index], dq.index))

        # Binding state threaded through pattern executions.
        closure = plan.temporal_closure() if self._propagate else {}
        identity_sets: dict[str, set[tuple]] = {}
        ts_bounds: dict[str, tuple[float, float]] = {}
        matches: dict[int, list[Event]] = {}

        for position, dq in enumerate(ordered):
            step_started = time.perf_counter()
            bounds = (self._bounds_for(dq, closure, ts_bounds)
                      if self._propagate else None)
            bindings = (self._bindings_for(dq, identity_sets)
                        if self._propagate else None)
            survivors, fetched = self._store.select(
                dq.profile, dq.compiled, base_window,
                _agents(dq, agentids),
                bindings if self._pushdown else None,
                bounds if self._temporal else None)
            if bindings is not None:
                # Correctness fallback: exact even when the backend
                # ignored (or only partially applied) the pushdown hint.
                admits = bindings.admits
                survivors = [event for event in survivors
                             if admits(event)]
            if bounds is not None:
                # Same fallback for the temporal hint — and the entire
                # restriction when temporal pushdown is ablated off.
                in_bounds = bounds.admits
                survivors = [event for event in survivors
                             if in_bounds(event.ts)]
            matches[dq.index] = survivors
            report.patterns.append(PatternExecution(
                event_var=dq.event_var, estimate=estimates[dq.index],
                fetched=fetched, matched=len(survivors),
                elapsed=time.perf_counter() - step_started))
            if not survivors:
                report.short_circuited = True
                report.order = [d.event_var for d in ordered]
                report.elapsed = time.perf_counter() - started
                return ScheduledMatches(order=ordered, events={
                    d.index: matches.get(d.index, [])
                    for d in plan.data_queries}, report=report)
            if self._propagate:
                self._update_bindings(dq, survivors, identity_sets,
                                      ts_bounds)
                self._reorder_remaining(ordered, position, dq, estimates,
                                        base_window, agentids,
                                        identity_sets, closure, ts_bounds)
        report.order = [dq.event_var for dq in ordered]
        report.elapsed = time.perf_counter() - started
        return ScheduledMatches(order=ordered, events=matches, report=report)

    def _reorder_remaining(self, ordered: list[DataQuery], position: int,
                           executed: DataQuery, estimates: dict[int, int],
                           base_window: Window | None,
                           agentids: frozenset[int] | None,
                           identity_sets: dict[str, set[tuple]],
                           closure: dict[tuple[str, str], float],
                           ts_bounds: dict[str, tuple[float, float]],
                           ) -> None:
        """Re-estimate unexecuted patterns under bindings and bounds.

        Binding propagation changes pruning power mid-flight: a pattern
        that looked expensive upfront may be nearly free once its entity
        variables are pinned or its time interval collapses.  Only the
        patterns sharing a variable the just-executed pattern bound — or
        reachable from it through the temporal closure — can have changed
        cost, so only those are re-estimated.  Only worth re-sorting when
        at least two patterns remain, and only meaningful when the
        backend sees the hints (``pushdown``).
        """
        remaining = ordered[position + 1:]
        if not (self._prioritize and self._pushdown and len(remaining) > 1):
            return
        updated_vars = {executed.subject_var, executed.object_var}
        executed_var = executed.event_var
        changed = False
        for dq in remaining:
            temporally_linked = (
                self._temporal
                and ((executed_var, dq.event_var) in closure
                     or (dq.event_var, executed_var) in closure))
            if updated_vars.isdisjoint(dq.variables) and not temporally_linked:
                continue
            estimates[dq.index] = self._store.estimate(
                dq.profile, base_window, _agents(dq, agentids),
                self._bindings_for(dq, identity_sets),
                (self._bounds_for(dq, closure, ts_bounds)
                 if self._temporal else None))
            changed = True
        if not changed:
            return
        remaining.sort(key=lambda dq: (estimates[dq.index], dq.index))
        ordered[position + 1:] = remaining

    # ------------------------------------------------------------------
    # Binding propagation
    # ------------------------------------------------------------------
    @staticmethod
    def _bounds_for(dq: DataQuery,
                    closure: dict[tuple[str, str], float],
                    ts_bounds: dict[str, tuple[float, float]],
                    ) -> TemporalBounds | None:
        """Timestamp bounds for this pattern from executed partners.

        For every executed pattern u reachable through the temporal
        closure: if u precedes this pattern (total ``within`` D over the
        tightest chain), candidates need ``ts > u_min`` — the weakest
        sound bound over all possible partner events — and, when D is
        finite, ``ts <= u_max + D`` (the ``within`` bound is inclusive).
        Symmetrically when this pattern precedes u: ``ts < u_max`` and,
        with finite D, ``ts >= u_min - D``.

        Inclusivity is carried per side instead of being folded into a
        half-open window here, so each backend lowers it exactly — a
        partner event exactly at ``u_max + D`` must survive, one exactly
        at ``u_min`` must not.  Equal bound values keep the *strict*
        variant (the tighter of the two sound restrictions).
        """
        lo, hi = -math.inf, math.inf
        lo_strict = hi_strict = False
        var = dq.event_var
        for partner, (partner_lo, partner_hi) in ts_bounds.items():
            delay = closure.get((partner, var))
            if delay is not None:      # partner (transitively) before var
                if partner_lo > lo or (partner_lo == lo and not lo_strict):
                    lo, lo_strict = partner_lo, True
                if delay != math.inf and partner_hi + delay < hi:
                    hi, hi_strict = partner_hi + delay, False
            delay = closure.get((var, partner))
            if delay is not None:      # var (transitively) before partner
                if partner_hi < hi or (partner_hi == hi and not hi_strict):
                    hi, hi_strict = partner_hi, True
                if delay != math.inf and partner_lo - delay > lo:
                    lo, lo_strict = partner_lo - delay, False
        if lo == -math.inf and hi == math.inf:
            return None
        return TemporalBounds(lo=lo, hi=hi, lo_strict=lo_strict,
                              hi_strict=hi_strict)

    def _bindings_for(self, dq: DataQuery,
                      identity_sets: dict[str, set[tuple]],
                      ) -> IdentityBindings | None:
        """Pushdown hint for one pattern from the propagated binding state."""
        subjects = identity_sets.get(dq.subject_var)
        objects = identity_sets.get(dq.object_var)
        if subjects is None and objects is None:
            return None
        return IdentityBindings(
            subjects=frozenset(subjects) if subjects is not None else None,
            objects=frozenset(objects) if objects is not None else None,
            compact=self._bitmap)

    def _update_bindings(self, dq: DataQuery, events: list[Event],
                         identity_sets: dict[str, set[tuple]],
                         ts_bounds: dict[str, tuple[float, float]]) -> None:
        subject_ids = {event.subject.identity for event in events}
        object_ids = {event.object.identity for event in events}
        for var, ids in ((dq.subject_var, subject_ids),
                         (dq.object_var, object_ids)):
            existing = identity_sets.get(var)
            identity_sets[var] = ids if existing is None else existing & ids
        timestamps = [event.ts for event in events]
        ts_bounds[dq.event_var] = (min(timestamps), max(timestamps))


def _agents(dq: DataQuery,
            override: frozenset[int] | None) -> set[int] | None:
    own = dq.agentids
    if override is None:
        return set(own) if own is not None else None
    if own is None:
        return set(override)
    return set(own & override)
