"""Dependency query rewriting.

§2.3: "For a dependency query, the parser compiles it to a semantically
equivalent multievent query for execution."  This module is that compiler
(the *Dependency Query Rewriting* box of Figure 1).

A path ``n0 ->[op1] n1 <-[op2] n2 ...`` becomes one event pattern per edge:
the arrow orientation picks the subject (``X ->[op] Y`` makes X the acting
process; ``X <-[op] Y`` makes Y act on X), and chained nodes become shared
entity variables, which the planner turns into identity joins.

The direction keyword fixes the temporal order along the path (§2.2.2:
"The forward keyword specifies the temporal order of the events: left event
occurs earlier"); ``backward`` is the mirror image used to track toward an
attack's entry point.
"""

from __future__ import annotations

from repro.errors import SemanticError
from repro.lang.ast import (DependencyQuery, EventPattern, MultieventQuery,
                            TemporalRelation)

EVENT_VAR_PREFIX = "dep_evt"


def rewrite_dependency(query: DependencyQuery) -> MultieventQuery:
    """Compile a dependency query to its equivalent multievent query."""
    node_vars = {node.variable for node in query.nodes}
    patterns: list[EventPattern] = []
    for position, edge in enumerate(query.edges):
        left = query.nodes[position]
        right = query.nodes[position + 1]
        if edge.subject_side == "left":
            subject, obj = left, right
        else:
            subject, obj = right, left
        if subject.entity_type != "proc":
            raise SemanticError(
                f"edge {position + 1}: the subject {subject.variable!r} "
                f"must be a process")
        event_var = _fresh_event_var(position + 1, node_vars)
        patterns.append(EventPattern(subject=subject,
                                     operations=edge.operations,
                                     object=obj, event_var=event_var))
    temporal = _temporal_chain([p.event_var for p in patterns],
                               query.direction)
    return MultieventQuery(header=query.header, patterns=tuple(patterns),
                           temporal=temporal,
                           return_items=query.return_items,
                           distinct=query.distinct,
                           sort_by=query.sort_by, top=query.top)


def _fresh_event_var(index: int, node_vars: set[str]) -> str:
    candidate = f"{EVENT_VAR_PREFIX}{index}"
    while candidate in node_vars:
        candidate = "_" + candidate
    return candidate


def _temporal_chain(event_vars: list[str],
                    direction: str) -> tuple[TemporalRelation, ...]:
    """Adjacent-pair ordering along the path.

    ``forward``: events happen left-to-right along the path (information
    flows with time).  ``backward``: the path is written from the artifact
    being investigated back toward its origin, so each edge's event happened
    *after* the next one.
    """
    relations = []
    for left, right in zip(event_vars, event_vars[1:]):
        if direction == "forward":
            relations.append(TemporalRelation(left, "before", right))
        elif direction == "backward":
            relations.append(TemporalRelation(right, "before", left))
        else:
            raise SemanticError(f"unknown tracking direction {direction!r}")
    return tuple(relations)
