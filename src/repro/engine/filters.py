"""Predicate compilation: AIQL constraints -> fast event filters.

Constraints appear in three positions — entity brackets on a pattern's
subject, entity brackets on its object, and global header clauses — and all
compile to plain callables over :class:`~repro.model.events.Event` so the
executor evaluates one fused residual predicate per candidate event.

Batch-compilation mode: every constraint also lowers to a structured
:class:`Atom` (``<target.attribute> <op> <value>``), and a pattern's full
residual predicate is a :class:`CompiledPredicate` — the atom conjunction
plus the fused per-event callable derived from it.  Storage backends that
evaluate column batches (the columnar store) consume the atoms directly;
row-at-a-time backends call the fused form.  Both derive from the same
:func:`value_test` per atom, so the two evaluation modes agree by
construction.

Comparison semantics match SQLite (the relational baseline) so differential
tests agree: ``=`` on strings is case-sensitive, ``like`` is
case-insensitive, ordered comparisons between a number and a string are
False rather than an error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import SemanticError
from repro.lang.ast import Constraint
from repro.model.entities import DEFAULT_ATTRIBUTE, canonical_attribute
from repro.model.events import Event, canonical_event_attribute
from repro.storage.indexes import like_to_regex

EventPredicate = Callable[[Event], bool]
ValueTest = Callable[[object], bool]

_NUMERIC = (int, float)


def _compare(op: str, left: object, right: object) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "in":
        return left in right  # type: ignore[operator]
    # Ordered comparisons: numbers with numbers, strings with strings.
    if isinstance(left, _NUMERIC) and isinstance(right, _NUMERIC):
        pass
    elif isinstance(left, str) and isinstance(right, str):
        pass
    else:
        return False
    if op == "<":
        return left < right  # type: ignore[operator]
    if op == "<=":
        return left <= right  # type: ignore[operator]
    if op == ">":
        return left > right  # type: ignore[operator]
    if op == ">=":
        return left >= right  # type: ignore[operator]
    raise SemanticError(f"unknown comparison operator {op!r}")


@dataclass(frozen=True, slots=True)
class Atom:
    """One batchable conjunct: ``<target.attribute> <op> <value>``.

    ``target`` names where the left-hand side lives: ``"event"`` for
    event-level attributes (including the virtual ``event_type``),
    ``"subject"``/``"object"`` for entity attributes.  An atom is pure
    data — backends decide how to evaluate it (per event, per distinct
    dictionary value, or per column batch).
    """

    target: str      # "event" | "subject" | "object"
    attribute: str   # canonical attribute name
    op: str
    value: object

    def make_test(self) -> ValueTest:
        """The value-level test this atom applies to its left-hand side."""
        return value_test(self.op, self.value)


def value_test(op: str, value: object) -> ValueTest:
    """Compile ``<op> <value>`` to a test over candidate left-hand values.

    This is the single source of comparison semantics: the per-event
    predicates and the columnar batch evaluator both call tests built here,
    which is what keeps the two execution modes in exact agreement.
    """
    if op == "like":
        if not isinstance(value, str):
            raise SemanticError("like patterns must be strings")
        regex = like_to_regex(value)
        return lambda candidate: (isinstance(candidate, str)
                                  and regex.match(candidate) is not None)
    return lambda candidate: _compare(op, candidate, value)


def atom_predicate(atom: Atom) -> EventPredicate:
    """Lower one atom to a per-event callable (row-at-a-time mode)."""
    test = atom.make_test()
    attribute = atom.attribute
    if atom.target == "subject":
        return lambda event: test(getattr(event.subject, attribute))
    if atom.target == "object":
        # Unguarded on purpose: the pattern's type-guard atom runs first in
        # the fused conjunction, so the object is of the expected type by
        # the time this atom evaluates.
        return lambda event: test(getattr(event.object, attribute))
    if atom.target != "event":
        raise SemanticError(f"unknown atom target {atom.target!r}")
    return lambda event: test(getattr(event, attribute))


def entity_atom(constraint: Constraint, entity_type: str, role: str) -> Atom:
    """Lower one bracket constraint on the subject or object to an atom."""
    attribute = constraint.attribute
    if attribute is None:
        attribute = DEFAULT_ATTRIBUTE[entity_type]
    else:
        attribute = canonical_attribute(entity_type, attribute)
    if constraint.op == "like" and not isinstance(constraint.value, str):
        raise SemanticError("like patterns must be strings")
    return Atom(target=role, attribute=attribute, op=constraint.op,
                value=constraint.value)


def global_atom(constraint: Constraint) -> Atom:
    """Lower a header constraint (applies to the event itself) to an atom."""
    if constraint.attribute is None:
        raise SemanticError("global constraints need an attribute name")
    attribute = canonical_event_attribute(constraint.attribute)
    if constraint.op == "like" and not isinstance(constraint.value, str):
        raise SemanticError("like patterns must be strings")
    return Atom(target="event", attribute=attribute, op=constraint.op,
                value=constraint.value)


def type_operation_atoms(event_type: str,
                         operations: frozenset[str]) -> tuple[Atom, Atom]:
    """The guard every pattern predicate starts with.

    The store's best access path may be a subject-name index whose posting
    lists span all event types, so the residual must re-check both.
    """
    return (Atom("event", "event_type", "=", event_type),
            Atom("event", "operation", "in", operations))


def compile_entity_constraint(constraint: Constraint, entity_type: str,
                              role: str) -> EventPredicate:
    """Compile one bracket constraint against the subject or object."""
    return atom_predicate(entity_atom(constraint, entity_type, role))


def compile_global_constraint(constraint: Constraint) -> EventPredicate:
    """Compile a header constraint (applies to the event itself)."""
    return atom_predicate(global_atom(constraint))


@dataclass(frozen=True, slots=True)
class CompiledPredicate:
    """A pattern's full residual predicate in both evaluation modes.

    ``atoms`` is the structured conjunction for batch evaluation;
    ``event_predicate`` the fused per-event form.  The two are built from
    the same atoms and always agree.
    """

    atoms: tuple[Atom, ...]
    event_predicate: EventPredicate

    def __call__(self, event: Event) -> bool:
        return self.event_predicate(event)


def compile_atoms(atoms: Sequence[Atom]) -> CompiledPredicate:
    """Fuse an atom conjunction into a :class:`CompiledPredicate`."""
    atoms = tuple(atoms)
    return CompiledPredicate(
        atoms=atoms,
        event_predicate=conjunction([atom_predicate(a) for a in atoms]))


def conjunction(predicates: list[EventPredicate]) -> EventPredicate:
    """AND-fuse predicates; the empty conjunction accepts everything."""
    if not predicates:
        return lambda event: True
    if len(predicates) == 1:
        return predicates[0]

    def fused(event: Event) -> bool:
        return all(predicate(event) for predicate in predicates)

    return fused
