"""Predicate compilation: AIQL constraints -> fast event filters.

Constraints appear in three positions — entity brackets on a pattern's
subject, entity brackets on its object, and global header clauses — and all
compile to plain callables over :class:`~repro.model.events.Event` so the
executor evaluates one fused residual predicate per candidate event.

Comparison semantics match SQLite (the relational baseline) so differential
tests agree: ``=`` on strings is case-sensitive, ``like`` is
case-insensitive, ordered comparisons between a number and a string are
False rather than an error.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SemanticError
from repro.lang.ast import Constraint
from repro.model.entities import DEFAULT_ATTRIBUTE, canonical_attribute
from repro.model.events import Event, canonical_event_attribute
from repro.storage.indexes import like_to_regex

EventPredicate = Callable[[Event], bool]

_NUMERIC = (int, float)


def _compare(op: str, left: object, right: object) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "in":
        return left in right  # type: ignore[operator]
    # Ordered comparisons: numbers with numbers, strings with strings.
    if isinstance(left, _NUMERIC) and isinstance(right, _NUMERIC):
        pass
    elif isinstance(left, str) and isinstance(right, str):
        pass
    else:
        return False
    if op == "<":
        return left < right  # type: ignore[operator]
    if op == "<=":
        return left <= right  # type: ignore[operator]
    if op == ">":
        return left > right  # type: ignore[operator]
    if op == ">=":
        return left >= right  # type: ignore[operator]
    raise SemanticError(f"unknown comparison operator {op!r}")


def _value_getter(entity_type: str, attribute: str | None,
                  role: str) -> Callable[[Event], object]:
    """Build an accessor for a constraint's left-hand side.

    ``role`` is ``"subject"`` or ``"object"``; ``agentid`` on an entity
    resolves to the entity's own agent id (which for network objects is the
    observing host).
    """
    if attribute is None:
        attribute = DEFAULT_ATTRIBUTE[entity_type]
    else:
        attribute = canonical_attribute(entity_type, attribute)
    if role == "subject":
        return lambda event: getattr(event.subject, attribute)
    return lambda event: getattr(event.object, attribute)


def compile_entity_constraint(constraint: Constraint, entity_type: str,
                              role: str) -> EventPredicate:
    """Compile one bracket constraint against the subject or object."""
    getter = _value_getter(entity_type, constraint.attribute, role)
    if constraint.op == "like":
        if not isinstance(constraint.value, str):
            raise SemanticError("like patterns must be strings")
        regex = like_to_regex(constraint.value)
        return lambda event: (isinstance(value := getter(event), str)
                              and regex.match(value) is not None)
    op, value = constraint.op, constraint.value
    return lambda event: _compare(op, getter(event), value)


def compile_global_constraint(constraint: Constraint) -> EventPredicate:
    """Compile a header constraint (applies to the event itself)."""
    if constraint.attribute is None:
        raise SemanticError("global constraints need an attribute name")
    attribute = canonical_event_attribute(constraint.attribute)
    if constraint.op == "like":
        if not isinstance(constraint.value, str):
            raise SemanticError("like patterns must be strings")
        regex = like_to_regex(constraint.value)
        return lambda event: (isinstance(
            value := getattr(event, attribute), str)
            and regex.match(value) is not None)
    op, value = constraint.op, constraint.value
    return lambda event: _compare(op, getattr(event, attribute), value)


def conjunction(predicates: list[EventPredicate]) -> EventPredicate:
    """AND-fuse predicates; the empty conjunction accepts everything."""
    if not predicates:
        return lambda event: True
    if len(predicates) == 1:
        return predicates[0]

    def fused(event: Event) -> bool:
        return all(predicate(event) for predicate in predicates)

    return fused
