"""Engine feature toggles, shared by every execution layer.

One frozen options object travels from the session facade through the
executor, the parallel partitioner, the anomaly engine, and the scheduler
— instead of an ever-growing keyword tail duplicated at each hop.  The
ablation benchmark flips individual flags to measure each optimization's
contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.obs.trace import Tracer


@dataclass(frozen=True, slots=True)
class EngineOptions:
    """Feature toggles for the engine's optimizations.

    Defaults are the paper's configuration.  ``pushdown`` controls whether
    propagated identity bindings and temporal bounds are handed to the
    storage backend inside the :class:`~repro.storage.backend.ScanSpec`
    (on) or applied by post-filtering survivors in the engine (off);
    results are identical either way.  ``temporal_pushdown`` and
    ``bitmap_bindings`` are finer-grained levers under ``pushdown``: the
    first isolates the temporal-bounds scan pushdown (off = exact
    post-filtering of the propagated bounds), the second the dense
    bitmap/bloom/intersection representation of large binding sets (off =
    per-element set probes).  ``histogram_estimates`` selects the
    per-partition equi-depth timestamp histograms for windowed
    cardinality estimates (off = the old uniform-time scaling; ordering
    may differ, results never do).  ``vectorized`` enables the columnar
    batch fast path for single-pattern queries: the backend returns
    projected column slices (:class:`~repro.storage.backend.ColumnBatch`)
    and the engine builds result rows without materializing per-event
    ``Event`` objects or per-binding dicts.  ``projection_pushdown``
    threads the set of columns the query actually consumes into each
    pattern's scan; ``topk_pushdown`` lowers a ``top N`` over time order
    into the scan as a :class:`~repro.storage.backend.ScanOrder` so
    backends stop materializing past the first/last N survivors.  All
    three are byte-identical levers — results never change, only where
    the work happens.  ``explain`` makes the scheduler record
    the chosen access path per pattern in the execution report (the
    ``repro query --explain`` surface).  ``verify_plans`` re-derives
    every :class:`~repro.storage.backend.ScanSpec` the scheduler emits
    from the plan and query alone and raises
    :class:`~repro.engine.verify.PlanVerificationError` on any unsound
    pushdown (a projection missing a consumed column, a temporal bound
    tighter than the closure implies, an order limit where post-filters
    could still thin survivors, a binding set not justified by executed
    partners) — a debugging/CI harness, off by default.  ``max_workers``
    of ``None`` sizes the sub-query pool to the machine
    (:data:`repro.engine.parallel.DEFAULT_WORKERS`).
    """

    prioritize: bool = True      # pruning-power pattern ordering
    propagate: bool = True       # binding propagation between patterns
    partition: bool = True       # spatial/temporal sub-query parallelism
    pushdown: bool = True        # bindings/bounds pushed into backend scans
    temporal_pushdown: bool = True   # temporal bounds as scan predicates
    bitmap_bindings: bool = True     # bitmap/bloom large-binding-set tiers
    histogram_estimates: bool = True  # equi-depth ts histograms in estimates
    vectorized: bool = True      # columnar batch path, no per-row Events
    projection_pushdown: bool = True  # needed-column sets into ScanSpec
    topk_pushdown: bool = True   # ts-ordered limit into ScanSpec
    explain: bool = False        # record access paths in execution reports
    verify_plans: bool = False   # statically check every emitted ScanSpec
    max_workers: int | None = None
    row_limit: int | None = None
    # Span sink for this execution; None = tracing off.  Excluded from
    # equality/hash/repr: a tracer is a per-query collection vessel, not
    # a behavioural lever (results are identical with or without one).
    tracer: "Tracer | None" = field(default=None, compare=False, repr=False)


DEFAULT_OPTIONS = EngineOptions()
