"""Plan-soundness verification: re-derive every pushdown, independently.

With :attr:`~repro.engine.options.EngineOptions.verify_plans` on, the
scheduler hands each :class:`~repro.storage.backend.ScanSpec` it is about
to execute to :func:`verify_spec`, together with the propagation state
the spec was derived from.  The verifier recomputes, from the query plan
and that state alone, what a sound spec is allowed to claim:

* **projection** — a pushed column set must cover every column the rest
  of the query consumes for this pattern (return/sort/``with`` reads
  plus join-variable sides); a scan that gathers less would build rows
  with missing fields;
* **temporal bounds** — a pushed bound must not be tighter than the
  interval implied by the temporal closure and the executed partners'
  recorded spans; a tighter bound could drop events that still have
  partners;
* **scan order** — a pushed order/limit truncates *inside* the backend,
  which is only sound when nothing downstream can thin survivors: a
  single-pattern plan, a ``top N`` without ``distinct``, canonical time
  order, and no bindings/bounds on the same scan;
* **identity bindings** — a pushed binding set must be exactly the
  propagated identity set of its variable: anything smaller may exclude
  events whose entities still have join partners, anything larger (or a
  set with no executed partner at all) restricts on evidence the plan
  does not have.

The checks are deliberately written against the *query* and the raw
propagation state, not by calling the scheduler's own derivation helpers
— a bug in those helpers is exactly what this module exists to catch.
Violations raise :class:`PlanVerificationError` (an
:class:`~repro.errors.ExecutionError`).
"""

from __future__ import annotations

import math

from repro.engine.planner import DataQuery, QueryPlan
from repro.errors import ExecutionError
from repro.lang.ast import MultieventQuery, VarRef
from repro.model.events import canonical_event_attribute
from repro.storage.backend import ScanSpec, TemporalBounds


class PlanVerificationError(ExecutionError):
    """A scheduler-emitted ScanSpec failed static soundness checks."""


def verify_spec(plan: QueryPlan, dq: DataQuery, spec: ScanSpec, *,
                closure: dict[tuple[str, str], float],
                identity_sets: dict[str, set[tuple]],
                ts_bounds: dict[str, tuple[float, float]]) -> None:
    """Check one emitted spec against its plan and propagation state."""
    problems: list[str] = []
    _check_projection(plan, dq, spec, problems)
    _check_bounds(dq, spec, closure, ts_bounds, problems)
    _check_order(plan, dq, spec, problems)
    _check_bindings(dq, spec, identity_sets, problems)
    if problems:
        raise PlanVerificationError(
            f"unsound scan spec for pattern {dq.event_var!r}: "
            + "; ".join(problems))


# ---------------------------------------------------------------------------
# Projection: pushed columns must cover every consumed column
# ---------------------------------------------------------------------------

def consumed_columns(query: MultieventQuery, plan: QueryPlan,
                     dq: DataQuery) -> frozenset[str] | None:
    """Columns this pattern's scan must gather, or None for *everything*.

    ``None`` means the consumers are not statically known (an
    unresolvable reference, a non-variable return item) — the only sound
    projection then is no projection at all.
    """
    refs: list[VarRef] = []
    for item in query.return_items:
        if not isinstance(item.expr, VarRef):
            return None
        refs.append(item.expr)
    refs.extend(key.expr for key in query.sort_by)
    for relation in query.relations:
        refs.append(relation.left)
        refs.append(relation.right)
    needed: set[str] = set()
    for ref in refs:
        if ref.variable == dq.event_var:
            try:
                attribute = canonical_event_attribute(ref.attribute or "id")
            except Exception:
                return None
            # id/ts always travel with a scan result (they carry result
            # order and temporal joins); only the payload columns count.
            if attribute not in ("id", "ts"):
                needed.add(attribute)
        else:
            if ref.variable == dq.subject_var:
                needed.add("subject")
            if ref.variable == dq.object_var:
                needed.add("object")
    counts: dict[str, int] = {}
    for other in plan.data_queries:
        for variable in set(other.variables):
            counts[variable] = counts.get(variable, 0) + 1
    if counts.get(dq.subject_var, 0) > 1:
        needed.add("subject")
    if counts.get(dq.object_var, 0) > 1:
        needed.add("object")
    return frozenset(needed)


def _check_projection(plan: QueryPlan, dq: DataQuery, spec: ScanSpec,
                      problems: list[str]) -> None:
    if spec.projection is None:
        return
    required = consumed_columns(plan.query, plan, dq)
    if required is None:
        problems.append(
            "projection pushed although the pattern's consumers are not "
            "statically known")
        return
    missing = required - spec.projection
    if missing:
        problems.append(
            f"projection {sorted(spec.projection)} is missing consumed "
            f"column(s) {sorted(missing)}")


# ---------------------------------------------------------------------------
# Temporal bounds: never tighter than the closure implies
# ---------------------------------------------------------------------------

def implied_bounds(dq: DataQuery,
                   closure: dict[tuple[str, str], float],
                   ts_bounds: dict[str, tuple[float, float]],
                   ) -> TemporalBounds | None:
    """Tightest sound bound interval for this pattern, re-derived.

    For an executed partner u with recorded span ``[u_lo, u_hi]``:
    ``u`` before this pattern within D forces ``ts > u_lo`` (strict) and
    ``ts <= u_lo + ... u_hi + D`` (inclusive, finite D only); the
    symmetric rules apply when this pattern precedes u.  The weakest
    bound over all partner events is the sound one per partner; the
    tightest across partners survives.
    """
    lo, hi = -math.inf, math.inf
    lo_strict = hi_strict = False
    var = dq.event_var
    for partner, (partner_lo, partner_hi) in ts_bounds.items():
        if partner == var:
            continue
        delay = closure.get((partner, var))
        if delay is not None:
            if partner_lo > lo or (partner_lo == lo and not lo_strict):
                lo, lo_strict = partner_lo, True
            if delay != math.inf and partner_hi + delay < hi:
                hi, hi_strict = partner_hi + delay, False
        delay = closure.get((var, partner))
        if delay is not None:
            if partner_hi < hi or (partner_hi == hi and not hi_strict):
                hi, hi_strict = partner_hi, True
            if delay != math.inf and partner_lo - delay > lo:
                lo, lo_strict = partner_lo - delay, False
    if lo == -math.inf and hi == math.inf:
        return None
    return TemporalBounds(lo=lo, hi=hi, lo_strict=lo_strict,
                          hi_strict=hi_strict)


def _check_bounds(dq: DataQuery, spec: ScanSpec,
                  closure: dict[tuple[str, str], float],
                  ts_bounds: dict[str, tuple[float, float]],
                  problems: list[str]) -> None:
    bounds = spec.bounds
    if bounds is None:
        return
    implied = implied_bounds(dq, closure, ts_bounds)
    if implied is None:
        if bounds.lo != -math.inf or bounds.hi != math.inf:
            problems.append(
                "temporal bounds pushed although no executed partner "
                "implies any")
        return
    # The spec may be looser than implied (that only costs work), never
    # tighter: every timestamp the implied interval admits must survive.
    lower_ok = (bounds.lo < implied.lo
                or (bounds.lo == implied.lo
                    and (not bounds.lo_strict or implied.lo_strict)))
    upper_ok = (bounds.hi > implied.hi
                or (bounds.hi == implied.hi
                    and (not bounds.hi_strict or implied.hi_strict)))
    if not lower_ok:
        problems.append(
            f"lower temporal bound {_side(bounds.lo, bounds.lo_strict, '>')} "
            f"is tighter than the implied "
            f"{_side(implied.lo, implied.lo_strict, '>')}")
    if not upper_ok:
        problems.append(
            f"upper temporal bound {_side(bounds.hi, bounds.hi_strict, '<')} "
            f"is tighter than the implied "
            f"{_side(implied.hi, implied.hi_strict, '<')}")


def _side(value: float, strict: bool, direction: str) -> str:
    op = direction if strict else direction + "="
    return f"(ts {op} {value})"


# ---------------------------------------------------------------------------
# Scan order: truncation only where nothing downstream can thin survivors
# ---------------------------------------------------------------------------

def _check_order(plan: QueryPlan, dq: DataQuery, spec: ScanSpec,
                 problems: list[str]) -> None:
    order = spec.order
    if order is None:
        return
    query = plan.query
    if len(plan.data_queries) != 1:
        problems.append(
            "order/limit pushed into a multi-pattern plan (the join "
            "reorders rows)")
    if spec.bindings is not None or spec.bounds is not None:
        problems.append(
            "order/limit pushed together with bindings/bounds (post-"
            "filters could thin survivors below the cut)")
    if query.distinct:
        problems.append(
            "order/limit pushed despite 'distinct' (dedup below the cut "
            "could surface rows past the first N)")
    if query.top is None:
        if order.limit is not None:
            problems.append(
                f"scan limit {order.limit} pushed although the query has "
                f"no 'top N'")
    elif order.limit is not None and order.limit < query.top:
        problems.append(
            f"scan limit {order.limit} is smaller than the query's "
            f"top {query.top}")
    descending = False
    if query.sort_by:
        sound_sort = False
        if len(query.sort_by) == 1:
            key = query.sort_by[0]
            if key.expr.variable == dq.event_var:
                try:
                    attribute = canonical_event_attribute(
                        key.expr.attribute or "id")
                except Exception:
                    attribute = None
                sound_sort = attribute == "ts"
                descending = key.descending
        if not sound_sort:
            problems.append(
                "order/limit pushed although the query's sort order is "
                "not the scan's time order")
    if order.descending != descending:
        problems.append(
            f"scan order direction (descending={order.descending}) does "
            f"not match the query's (descending={descending})")


# ---------------------------------------------------------------------------
# Identity bindings: exactly the propagated identity sets
# ---------------------------------------------------------------------------

def _check_bindings(dq: DataQuery, spec: ScanSpec,
                    identity_sets: dict[str, set[tuple]],
                    problems: list[str]) -> None:
    if spec.bindings is None:
        return
    for side, variable, ids in (
            ("subject", dq.subject_var, spec.bindings.subjects),
            ("object", dq.object_var, spec.bindings.objects)):
        if ids is None:
            continue
        known = identity_sets.get(variable)
        if known is None:
            problems.append(
                f"{side} bindings pushed for {variable!r} although no "
                f"executed pattern bound it")
            continue
        missing = frozenset(known) - ids
        extra = ids - frozenset(known)
        if missing:
            noun = ("identity that still has" if len(missing) == 1
                    else "identities that still have")
            problems.append(
                f"{side} binding set for {variable!r} excludes "
                f"{len(missing)} propagated {noun} join partners")
        if extra:
            problems.append(
                f"{side} binding set for {variable!r} admits {len(extra)} "
                f"identit{'y' if len(extra) == 1 else 'ies'} no executed "
                f"pattern produced")
