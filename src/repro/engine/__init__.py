"""The optimized AIQL query execution engine (§2.3)."""

from repro.engine.options import DEFAULT_OPTIONS, EngineOptions
from repro.engine.executor import execute, explain
from repro.engine.dependency import rewrite_dependency
from repro.engine.planner import DataQuery, QueryPlan, plan_multievent
from repro.engine.scheduler import ExecutionReport, Scheduler
from repro.engine.parallel import (execute_plan, spatially_partitionable,
                                   temporally_partitionable)

__all__ = [
    "DEFAULT_OPTIONS", "EngineOptions", "execute", "explain",
    "rewrite_dependency", "DataQuery", "QueryPlan", "plan_multievent",
    "ExecutionReport", "Scheduler", "execute_plan",
    "spatially_partitionable", "temporally_partitionable",
]
