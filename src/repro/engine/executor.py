"""Top-level query execution: dispatch, projection, and reporting.

This is the *AIQL Query Execution Engine* box of Figure 1.  It accepts a
parsed query of any of the three classes, routes it through the right
machinery (dependency queries are first rewritten to multievent queries,
§2.3), and projects the joined bindings through the ``return`` clause with
the context-aware shortcuts of §2.2.1.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SemanticError
from repro.obs.clock import monotonic
from repro.obs.trace import NULL_TRACER
from repro.lang.ast import (AnomalyQuery, DependencyQuery, MultieventQuery,
                            Query, ReturnItem, VarRef)
from repro.core.results import QueryResult
from repro.engine.anomaly import execute_anomaly
from repro.engine.dependency import rewrite_dependency
from repro.engine.joiner import Binding
from repro.engine.options import DEFAULT_OPTIONS, EngineOptions
from repro.engine.parallel import execute_plan, merge_reports
from repro.engine.planner import QueryPlan, plan_multievent
from repro.engine.scheduler import Scheduler
from repro.storage.backend import StorageBackend

__all__ = ["DEFAULT_OPTIONS", "EngineOptions", "execute", "explain",
           "project_bindings"]


def execute(store: StorageBackend, query: Query,
            options: EngineOptions = DEFAULT_OPTIONS) -> QueryResult:
    """Execute a parsed AIQL query and return its result table."""
    if isinstance(query, MultieventQuery):
        return _execute_multievent(store, query, options)
    if isinstance(query, DependencyQuery):
        rewritten = rewrite_dependency(query)
        result = _execute_multievent(store, rewritten, options)
        return QueryResult(columns=result.columns, rows=result.rows,
                           elapsed=result.elapsed, kind="dependency",
                           report=result.report, execution=result.execution)
    if isinstance(query, AnomalyQuery):
        output = execute_anomaly(store, query, options)
        return QueryResult(columns=output.columns, rows=output.rows,
                           elapsed=output.report.elapsed, kind="anomaly",
                           report=output.report.describe(),
                           execution=output.report)
    raise SemanticError(f"unknown query type: {type(query).__name__}")


def explain(store: StorageBackend, query: Query,
            options: EngineOptions = DEFAULT_OPTIONS) -> str:
    """Describe how the engine would execute a query (plan + estimates).

    Per pattern, the statistics-based estimate and the access path the
    backend would choose for the scan — the static half of the
    ``--explain`` surface.  Actual per-pattern row counts come from
    executing with ``options.explain`` on and reading the report.
    """
    if isinstance(query, DependencyQuery):
        inner = rewrite_dependency(query)
        return ("dependency query compiled to multievent query:\n"
                + explain(store, inner, options))
    if isinstance(query, AnomalyQuery):
        spec = query.window_spec
        return (f"anomaly query: 1 pattern, window={spec.width:.0f}s "
                f"step={spec.step:.0f}s, sliding-window aggregation")
    plan = plan_multievent(query)
    lines = ["multievent query plan:"]
    decisions = Scheduler(store, options).explain(plan)
    for dq, estimate, info in sorted(decisions,
                                     key=lambda entry: (entry[1],
                                                        entry[0].index)):
        ops = "||".join(sorted(dq.operations))
        lines.append(f"  {dq.event_var}: {dq.event_type}/{ops} "
                     f"estimated {estimate} events via {info.name}")
    from repro.engine.parallel import (spatially_partitionable,
                                       temporally_partitionable)
    if spatially_partitionable(plan):
        lines.append("  partitioning: spatial (one sub-query per agent)")
    elif temporally_partitionable(plan):
        lines.append("  partitioning: temporal (one sub-query per bucket)")
    else:
        lines.append("  partitioning: none (cross-host join)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Multievent execution + projection
# ---------------------------------------------------------------------------

def _execute_multievent(store: StorageBackend, query: MultieventQuery,
                        options: EngineOptions) -> QueryResult:
    started = monotonic()
    tracer = options.tracer or NULL_TRACER
    with tracer.span("plan"):
        plan = plan_multievent(query)
    if options.vectorized:
        from repro.engine.vectorized import execute_vectorized
        fast = execute_vectorized(store, plan, query, options)
        if fast is not None:
            columns, rows, report = fast
            elapsed = monotonic() - started
            report.elapsed = elapsed
            return QueryResult(columns=columns, rows=rows, elapsed=elapsed,
                               kind="multievent", report=report.describe(),
                               execution=report)
    parallel = execute_plan(store, plan, options)
    with tracer.span("project") as span:
        columns, rows = project_bindings(plan, query, parallel.rows)
        span.set(bindings=len(parallel.rows), rows=len(rows))
    report = merge_reports(parallel.reports)
    report.joined_rows = len(parallel.rows)
    elapsed = monotonic() - started
    report.elapsed = elapsed
    return QueryResult(columns=columns, rows=rows, elapsed=elapsed,
                       kind="multievent", report=report.describe(),
                       execution=report)


def project_bindings(plan: QueryPlan, query: MultieventQuery,
                     bindings: list[Binding],
                     ) -> tuple[list[str], list[tuple]]:
    """Project joined bindings through a query's return clause.

    Shared by the optimized engine and the graph baseline so that both
    produce identical result tables from their (differently computed)
    binding sets.  Applies the stable result order (or the explicit
    ``sort by``), ``distinct``, and ``top``.
    """
    projectors = [_compile_projection(item, plan)
                  for item in query.return_items]
    columns = [item.name for item in query.return_items]
    if query.top is not None and not query.distinct:
        # Bounded heap instead of full-sort-then-slice: nsmallest on the
        # composite (sort keys, time order) key returns exactly the rows
        # the stable multi-pass sort would have put first, in the same
        # order, without ordering the entire binding set.  Unsound under
        # ``distinct`` (dedup below the cut can promote later rows), so
        # that combination keeps the full sort.
        chosen = heapq.nsmallest(query.top, bindings,
                                 key=_composite_sort_key(query, plan))
        return columns, [tuple(project(binding) for project in projectors)
                         for binding in chosen]
    if query.sort_by:
        ordered = _sorted_by_keys(bindings, query, plan)
    else:
        ordered = _ordered(bindings, plan)
    rows = [tuple(project(binding) for project in projectors)
            for binding in ordered]
    if query.distinct:
        rows = list(dict.fromkeys(rows))
    if query.top is not None:
        rows = rows[:query.top]
    return columns, rows


def _sorted_by_keys(bindings: list[Binding], query: MultieventQuery,
                    plan: QueryPlan) -> list[Binding]:
    from repro.engine.planner import binding_getter
    event_vars = {dq.event_var for dq in plan.data_queries}
    getters = [(binding_getter(key.expr, plan.variable_types, event_vars),
                key.descending) for key in query.sort_by]
    ordered = _ordered(bindings, plan)  # stable tiebreak: time order
    for getter, descending in reversed(getters):
        ordered.sort(key=lambda b: _null_safe_key(getter(b)),
                     reverse=descending)
    return ordered


class _Reversed:
    """Inverts comparison order of a wrapped key (descending sort keys).

    Wrapping a key in ``_Reversed`` inside a composite tuple makes a
    single ascending sort reproduce what a stable ``reverse=True`` pass
    on that key would: larger values first, equal values decided by the
    tuple's remaining components exactly as a stable sort preserves
    their relative order.
    """

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value  # type: ignore[operator]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value

    def __hash__(self) -> int:  # pragma: no cover - keys are never hashed
        return hash(self.value)


def _composite_sort_key(query: MultieventQuery,
                        plan: QueryPlan) -> Callable[[Binding], tuple]:
    """One key function equivalent to the stable multi-pass sort.

    Reversed stable single-key sorts compose into a lexicographic
    comparison of ``(key1, key2, ..., time order)`` with descending keys
    order-inverted — which is what lets ``heapq.nsmallest`` select a
    ``top N`` without sorting everything.
    """
    from repro.engine.planner import binding_getter
    event_var_set = {dq.event_var for dq in plan.data_queries}
    getters = [(binding_getter(key.expr, plan.variable_types, event_var_set),
                key.descending) for key in query.sort_by]
    event_vars = [dq.event_var for dq in plan.data_queries]

    def key(binding: Binding) -> tuple:
        parts: list[object] = []
        for getter, descending in getters:
            part = _null_safe_key(getter(binding))
            parts.append(_Reversed(part) if descending else part)
        parts.append(tuple((binding[var].ts, binding[var].id)  # type: ignore
                           for var in event_vars))
        return tuple(parts)

    return key


def _null_safe_key(value: object) -> tuple:
    if value is None:
        return (0, 0)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (1, value)
    return (2, str(value))


def _ordered(rows: list[Binding], plan: QueryPlan) -> list[Binding]:
    """Stable result order: by the (timestamp, id) of the declared patterns.

    Event ids break timestamp ties so the order is a property of the
    binding set alone, not of join generation order — which is what lets
    the continuous-query runtime reproduce batch results byte-for-byte
    from matches discovered in a different order.
    """
    event_vars = [dq.event_var for dq in plan.data_queries]

    def key(binding: Binding) -> tuple:
        return tuple((binding[var].ts, binding[var].id)  # type: ignore
                     for var in event_vars)

    return sorted(rows, key=key)


def _compile_projection(item: ReturnItem,
                        plan: QueryPlan) -> Callable[[Binding], object]:
    from repro.engine.planner import binding_getter
    expr = item.expr
    if not isinstance(expr, VarRef):
        raise SemanticError(
            f"multievent return items must be variables or attributes, "
            f"got {expr!r}")
    event_vars = {dq.event_var for dq in plan.data_queries}
    return binding_getter(expr, plan.variable_types, event_vars)
