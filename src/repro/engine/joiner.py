"""Multi-way joining of pattern matches into result bindings.

After the scheduler produces per-pattern candidate lists, the joiner
assembles them into complete bindings (one event per event variable) such
that

* shared entity variables bind to the *same interned entity* in every
  pattern where they appear (attribute relationships, §2.2.1), and
* every temporal relationship holds (``before`` is strict ``<`` on
  timestamps, matching the SQL baseline's ``e1.ts < e2.ts``).

Patterns join in the scheduler's execution order with hash joins on the
shared-variable identity tuples; temporal predicates are applied as soon as
both endpoint events are bound, keeping intermediates small.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.errors import ExecutionError
from repro.model.events import Event
from repro.engine.planner import DataQuery, QueryPlan
from repro.engine.scheduler import ScheduledMatches

# A binding maps event variables to events and entity variables to entities.
Binding = dict[str, object]

DEFAULT_ROW_LIMIT = 2_000_000


@dataclass(frozen=True, slots=True)
class TemporalCheck:
    """A compiled temporal relation: left strictly before right."""

    left: str
    right: str
    within: float | None

    def holds(self, binding: Binding) -> bool:
        left_evt: Event = binding[self.left]   # type: ignore[assignment]
        right_evt: Event = binding[self.right]  # type: ignore[assignment]
        if not left_evt.ts < right_evt.ts:
            return False
        if self.within is not None:
            return right_evt.ts - left_evt.ts <= self.within
        return True


def join(plan: QueryPlan, scheduled: ScheduledMatches,
         row_limit: int = DEFAULT_ROW_LIMIT) -> list[Binding]:
    """Assemble complete bindings from per-pattern matches."""
    checks = [TemporalCheck(rel.left, rel.right, rel.within)
              for rel in plan.temporal]
    relation_checks = list(plan.relations)
    rows: list[Binding] = [{}]
    bound_vars: set[str] = set()
    for dq in scheduled.order:
        events = scheduled.events.get(dq.index, [])
        if not events:
            return []
        rows = _extend(rows, dq, events, row_limit)
        bound_vars.update((dq.event_var, dq.subject_var, dq.object_var))
        ready = [check for check in checks
                 if check.left in bound_vars and check.right in bound_vars]
        if ready:
            rows = [row for row in rows
                    if all(check.holds(row) for check in ready)]
            checks = [check for check in checks if check not in ready]
        ready_relations = [check for check in relation_checks
                           if check.left_var in bound_vars
                           and check.right_var in bound_vars]
        if ready_relations:
            rows = [row for row in rows
                    if all(check.holds(row) for check in ready_relations)]
            relation_checks = [check for check in relation_checks
                               if check not in ready_relations]
        if not rows:
            return []
    return rows


def _extend(rows: list[Binding], dq: DataQuery, events: list[Event],
            row_limit: int) -> list[Binding]:
    """Hash-join the accumulated rows with one pattern's matches."""
    if not rows:
        return []
    sample = rows[0]
    join_vars = [var for var in dict.fromkeys(dq.variables)
                 if var in sample]
    out: list[Binding] = []
    if join_vars:
        buckets: dict[tuple, list[Event]] = defaultdict(list)
        for event in events:
            buckets[_event_key(event, dq, join_vars)].append(event)
        for row in rows:
            key = tuple(row[var].identity  # type: ignore[attr-defined]
                        for var in join_vars)
            for event in buckets.get(key, ()):
                out.append(_bind(row, dq, event))
                if len(out) > row_limit:
                    raise ExecutionError(
                        f"join exceeded {row_limit} intermediate rows; "
                        f"add more selective constraints")
    else:
        # No shared variables yet: cross product (kept small by the
        # scheduler's most-selective-first ordering).
        for row in rows:
            for event in events:
                out.append(_bind(row, dq, event))
                if len(out) > row_limit:
                    raise ExecutionError(
                        f"join exceeded {row_limit} intermediate rows; "
                        f"add more selective constraints")
    return out


def _event_key(event: Event, dq: DataQuery, join_vars: list[str]) -> tuple:
    key = []
    for var in join_vars:
        if var == dq.subject_var:
            key.append(event.subject.identity)
        else:
            key.append(event.object.identity)
    return tuple(key)


def _bind(row: Binding, dq: DataQuery, event: Event) -> Binding:
    extended = dict(row)
    extended[dq.event_var] = event
    extended[dq.subject_var] = event.subject
    extended[dq.object_var] = event.object
    return extended
