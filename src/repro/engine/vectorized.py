"""Vectorized single-pattern execution over column batches.

The hottest AIQL shape — one event pattern, scan-filter-project — spends
most of its time in the row-at-a-time engine materializing an ``Event``
and a binding dict per survivor just to read two or three attributes
back out.  This module short-circuits that: when a backend offers
``select_batches`` (the columnar store), the fused filter runs over
struct-of-arrays columns and the result rows are built straight from the
projected column slices — ``zip`` over array slices instead of
per-row Python objects.

The fast path is taken only when it is provably byte-identical to the
general engine:

* exactly one data query, no ``with`` relations, no temporal relations
  (nothing to join, so binding semantics collapse to "one row per
  survivor");
* every return item and sort key compiles to a column getter (an
  unresolvable reference falls back so semantic errors surface in the
  one place that owns them);
* no ``row_limit`` cap (that contract belongs to the joiner).

Ordering, ``distinct``, and ``top`` replicate
:func:`repro.engine.executor.project_bindings` exactly: rows order by
the composite (sort keys, ``(ts, id)``) comparator, ``distinct``
deduplicates after ordering, and a non-distinct ``top`` uses a bounded
heap.  With ``projection_pushdown`` the scan gathers only the consumed
columns; with ``topk_pushdown`` the pushed :class:`ScanOrder` lets the
backend stop materializing past the first/last N survivors.
"""

from __future__ import annotations

import heapq
from operator import itemgetter
from typing import Callable, Sequence

from repro.lang.ast import MultieventQuery, VarRef
from repro.obs.clock import monotonic
from repro.obs.trace import NULL_TRACER
from repro.model.entities import DEFAULT_ATTRIBUTE, canonical_attribute
from repro.model.events import canonical_event_attribute
# The executor imports this module lazily inside its dispatch, so pulling
# its ordering primitives in at module top never cycles.
from repro.engine.executor import _null_safe_key, _Reversed
from repro.engine.options import EngineOptions
from repro.engine.planner import DataQuery, QueryPlan
from repro.engine.scheduler import (ExecutionReport, PatternExecution,
                                    annotate_path)
from repro.storage.backend import ColumnBatch, ScanSpec, StorageBackend

__all__ = ["execute_vectorized"]

ColumnGetter = Callable[[ColumnBatch], Sequence]


def execute_vectorized(store: StorageBackend, plan: QueryPlan,
                       query: MultieventQuery, options: EngineOptions,
                       ) -> tuple[list[str], list[tuple],
                                  ExecutionReport] | None:
    """Run a single-pattern query over column batches, or ``None``.

    ``None`` means "not eligible — use the general engine"; a non-None
    result is byte-identical to what the general engine would produce.
    """
    if (len(plan.data_queries) != 1 or plan.relations or plan.temporal
            or options.row_limit is not None):
        return None
    select_batches = getattr(store, "select_batches", None)
    if select_batches is None:
        return None
    dq = plan.data_queries[0]
    return_getters = [_column_getter(item.expr, dq, plan)
                      for item in query.return_items]
    sort_getters = [(_column_getter(key.expr, dq, plan), key.descending)
                    for key in query.sort_by]
    if any(getter is None for getter in return_getters):
        return None
    if any(getter is None for getter, _descending in sort_getters):
        return None

    started = monotonic()
    tracer = options.tracer or NULL_TRACER
    spec = ScanSpec(
        window=plan.window, agentids=dq.agentids,
        histograms=options.histogram_estimates,
        projection=(plan.projections[0] if options.projection_pushdown
                    else None),
        order=(plan.scan_order if options.topk_pushdown else None))
    if options.verify_plans:
        # Same soundness gate as the scheduler's, with the propagation
        # state this path never has (single pattern, nothing propagates).
        from repro.engine.verify import verify_spec
        verify_spec(plan, dq, spec, closure={}, identity_sets={},
                    ts_bounds={})
    with tracer.span("scan", pattern=dq.event_var, vectorized=True) as span:
        batches, fetched = select_batches(dq.profile, dq.compiled, spec)
        span.set(fetched=fetched, batches=len(batches))

    top = query.top
    batches = [batch for batch in batches if len(batch)]
    matched = sum(len(batch) for batch in batches)
    with tracer.span("project", vectorized=True) as project_span:
        if not sort_getters and top is None and not query.distinct \
                and _time_disjoint(batches):
            # No-key shortcut for the plain scan-filter-project shape:
            # each batch's rows already ascend by (ts, id), and the
            # batches do not interleave in time, so emitting them in
            # batch-start order *is* the canonical result order — no
            # per-row sort keys, no global sort, just one zip per batch.
            rows = []
            for batch in batches:
                columns = [getter(batch) for getter in return_getters]
                rows.extend(zip(*columns))
        else:
            keyed: list[tuple[tuple, tuple]] = []
            for batch in batches:
                size = len(batch)
                columns = [getter(batch) for getter in return_getters]
                time_keys = list(zip(batch.ts, batch.ids))
                if sort_getters:
                    sort_columns = [(getter(batch), descending)
                                    for getter, descending in sort_getters]
                    keys: list[tuple] = []
                    for i in range(size):
                        parts: list[object] = []
                        for column, descending in sort_columns:
                            part = _null_safe_key(column[i])
                            parts.append(_Reversed(part) if descending
                                         else part)
                        parts.append((time_keys[i],))
                        keys.append(tuple(parts))
                else:
                    keys = time_keys
                keyed.extend(zip(keys, zip(*columns)))

            first = itemgetter(0)
            if top is not None and not query.distinct:
                chosen = heapq.nsmallest(top, keyed, key=first)
            else:
                keyed.sort(key=first)
                chosen = keyed
            rows = [row for _key, row in chosen]
            if query.distinct:
                rows = list(dict.fromkeys(rows))
            if top is not None:
                rows = rows[:top]
        project_span.set(rows=len(rows))

    step_elapsed = monotonic() - started
    report = ExecutionReport()
    report.order = [dq.event_var]
    report.joined_rows = matched
    # Diagnostics mirror the scheduler's: estimate always (the report
    # surface promises it), the access path only under explain (it may
    # re-cost the scan).
    estimate = store.estimate(dq.profile, spec)
    path = (annotate_path(store.access_path(dq.profile, spec).name, spec)
            if options.explain else "")
    report.patterns.append(PatternExecution(
        event_var=dq.event_var, estimate=estimate, fetched=fetched,
        matched=matched, elapsed=step_elapsed, path=path))
    return [item.name for item in query.return_items], rows, report


def _time_disjoint(batches: list[ColumnBatch]) -> bool:
    """Sort ``batches`` by start key in place; True if they never
    interleave in time.

    Each batch's rows ascend by ``(ts, id)`` (the scan guarantees it),
    so when every batch ends strictly before the next begins the
    concatenation in batch order is already globally sorted.
    """
    batches.sort(key=lambda batch: (batch.ts[0], batch.ids[0]))
    return all(earlier.ts[-1] < later.ts[0]
               for earlier, later in zip(batches, batches[1:]))


def _column_getter(expr: object, dq: DataQuery,
                   plan: QueryPlan) -> ColumnGetter | None:
    """Compile a return/sort reference into a per-batch column producer.

    Mirrors :func:`repro.engine.planner.binding_getter` over batches:
    event attributes come from the batch's arrays (operations decoded
    through the dictionary), entity attributes decode the subject/object
    code columns through the entity vocabulary with a per-batch memo.
    When a variable names both sides of the pattern the object wins —
    the same shadowing the joiner's bind order produces.  ``None`` means
    "not compilable here"; the caller falls back to the general engine,
    which owns the semantic error for genuinely bad references.
    """
    if not isinstance(expr, VarRef):
        return None
    variable, attribute = expr.variable, expr.attribute
    if variable == dq.event_var:
        try:
            attr = canonical_event_attribute(attribute or "id")
        except Exception:
            return None
        if attr == "id":
            return lambda batch: batch.ids
        if attr == "ts":
            return lambda batch: batch.ts
        if attr == "operation":
            return lambda batch: batch.operations()
        if attr == "amount":
            return lambda batch: batch.amounts
        if attr == "failcode":
            return lambda batch: batch.failcodes
        if attr == "agentid":
            return lambda batch: [batch.agentid] * len(batch)
        return None
    if variable == dq.object_var:
        side = "objects"
    elif variable == dq.subject_var:
        side = "subjects"
    else:
        return None
    entity_type = plan.variable_types.get(variable)
    if entity_type is None:
        return None
    if attribute is None:
        attr = DEFAULT_ATTRIBUTE[entity_type]
    else:
        try:
            attr = canonical_attribute(entity_type, attribute)
        except Exception:
            return None

    def column(batch: ColumnBatch) -> list:
        codes = getattr(batch, side)
        entities = batch.entities
        decoded: dict[int, object] = {}
        out = []
        for code in codes:
            try:
                out.append(decoded[code])
            except KeyError:
                value = getattr(entities[code], attr)
                decoded[code] = value
                out.append(value)
        return out

    return column
