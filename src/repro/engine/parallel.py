"""Spatial/temporal sub-query partitioning and parallel execution.

The second key insight of §2.3: "we partition the query into independent
sub-queries along the temporal (i.e., time window) and spatial (i.e., agent
ID) dimensions and execute these sub-queries in parallel."

Partitioning is only applied when it is *sound*:

* **Spatial** — sound when every pattern of the query is transitively
  connected to every other through shared entity variables and no pattern
  uses the cross-host ``connect`` operation.  A shared entity variable
  forces identical entity identity, and identities embed the agent id, so
  every complete match binds events of a single agent; executing one
  sub-query per agent therefore loses nothing.
* **Temporal** — sound for single-pattern queries (no cross-event join can
  straddle a time slice), which covers the data-fetch phase of anomaly
  queries and simple filters.

Sub-queries run on a thread pool.  CPython threads do not add CPU
parallelism, but partitioning still pays through smaller working sets and
earlier short-circuits; the ablation benchmark quantifies it honestly.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.model.timeutil import Window
from repro.obs.trace import NULL_TRACER
from repro.engine.joiner import Binding, join
from repro.engine.options import DEFAULT_OPTIONS, EngineOptions
from repro.engine.planner import QueryPlan
from repro.engine.scheduler import ExecutionReport, Scheduler
from repro.storage.backend import StorageBackend

#: Sub-query fan-out sized to the machine.  CPython threads add no CPU
#: parallelism, so wide pools only buy overlap of working-set-bounded
#: scans; cap at 8 and never go below 2 so single-core containers still
#: overlap I/O-ish work.  Benchmarks pass an explicit ``max_workers`` to
#: stay deterministic across hosts.
DEFAULT_WORKERS = max(2, min(8, os.cpu_count() or 2))


def resolve_workers(max_workers: int | None) -> int:
    """Map the engine's ``max_workers`` option (None = auto) to a count."""
    if max_workers is None:
        return DEFAULT_WORKERS
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    return max_workers


def spatially_partitionable(plan: QueryPlan) -> bool:
    """Can this plan be split into one independent sub-query per agent?"""
    for dq in plan.data_queries:
        if "connect" in dq.operations:
            return False
    count = len(plan.data_queries)
    if count <= 1:
        return True
    # Union-find over patterns connected by shared entity variables.
    parent = list(range(count))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for _var, indexes in plan.shared_variables().items():
        root = find(indexes[0])
        for index in indexes[1:]:
            parent[find(index)] = root
    return len({find(i) for i in range(count)}) == 1


def temporally_partitionable(plan: QueryPlan) -> bool:
    """Time-slice soundness: only single-pattern plans qualify."""
    return len(plan.data_queries) <= 1


@dataclass
class ParallelResult:
    rows: list[Binding]
    reports: list[ExecutionReport]
    partitions: int


def execute_plan(store: StorageBackend, plan: QueryPlan,
                 options: EngineOptions = DEFAULT_OPTIONS) -> ParallelResult:
    """Run a planned multievent query, partitioned when sound.

    One :class:`~repro.engine.options.EngineOptions` value carries every
    toggle down through the scheduler and into the backend scans —
    the hint plumbing that used to be a per-flag keyword tail.
    """
    scheduler = Scheduler(store, options)
    partition = options.partition
    tracer = options.tracer or NULL_TRACER
    join_kwargs = ({} if options.row_limit is None
                   else {"row_limit": options.row_limit})

    def run_one(window: Window | None,
                agents: frozenset[int] | None) -> tuple[list[Binding],
                                                        ExecutionReport]:
        with tracer.span("schedule") as span:
            if agents is not None:
                span.set(agents=len(agents))
            if window is not None:
                span.set(window=f"[{window.start:.0f},{window.end:.0f})")
            scheduled = scheduler.run(plan, window=window, agentids=agents)
        with tracer.span("join") as span:
            rows = join(plan, scheduled, **join_kwargs)
            span.set(rows=len(rows))
        return rows, scheduled.report

    tasks: list[tuple[Window | None, frozenset[int] | None]] = []
    if partition and spatially_partitionable(plan):
        agents = (set(plan.agentids) if plan.agentids is not None
                  else store.agentids)
        if len(agents) > 1:
            tasks = [(None, frozenset({agent})) for agent in sorted(agents)]
    if not tasks and partition and temporally_partitionable(plan):
        window = plan.window or store.span
        if window is not None:
            slices = window.split(store.bucket_seconds)
            if len(slices) > 1:
                tasks = [(time_slice, None) for time_slice in slices]
    if not tasks:
        rows, report = run_one(None, None)
        return ParallelResult(rows=rows, reports=[report], partitions=1)

    all_rows: list[Binding] = []
    reports: list[ExecutionReport] = []
    workers = min(resolve_workers(options.max_workers), len(tasks))
    with ThreadPoolExecutor(max_workers=workers) as pool:
        for rows, report in pool.map(
                lambda task: run_one(task[0], task[1]), tasks):
            all_rows.extend(rows)
            reports.append(report)
    return ParallelResult(rows=all_rows, reports=reports,
                          partitions=len(tasks))


def merge_reports(reports: list[ExecutionReport]) -> ExecutionReport:
    """Aggregate per-partition reports into one query-level report."""
    if len(reports) == 1:
        return reports[0]
    merged = ExecutionReport()
    merged.order = reports[0].order if reports else []
    merged.elapsed = sum(report.elapsed for report in reports)
    merged.joined_rows = sum(report.joined_rows for report in reports)
    merged.short_circuited = all(
        report.short_circuited for report in reports) if reports else False
    for report in reports:
        merged.patterns.extend(report.patterns)
    return merged
