"""Aggregate functions and per-group history for anomaly queries.

AIQL anomaly queries aggregate event attributes inside sliding windows and
compare against *historical* aggregate results (``amt[1]`` is the value one
window back).  This module provides the aggregate function registry and the
:class:`GroupHistory` ring that makes history access O(1).

Empty-window conventions (documented behaviour, exercised by tests):
``count``/``sum`` are 0, ``avg``/``stddev`` are 0.0, and order-based
aggregates (``min``/``max``/``median``/``first``/``last``) are ``None``;
any comparison involving ``None`` in a having clause is false, so a group
with no events never fires an anomaly by itself.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Sequence

from repro.errors import SemanticError

Number = int | float


def _agg_count(values: Sequence[object]) -> int:
    return len(values)


def _agg_sum(values: Sequence[Number]) -> Number:
    return sum(values) if values else 0


def _agg_avg(values: Sequence[Number]) -> float:
    return sum(values) / len(values) if values else 0.0


def _agg_min(values: Sequence[Number]) -> Number | None:
    return min(values) if values else None


def _agg_max(values: Sequence[Number]) -> Number | None:
    return max(values) if values else None


def _agg_stddev(values: Sequence[Number]) -> float:
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))


def _agg_median(values: Sequence[Number]) -> Number | None:
    if not values:
        return None
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def _agg_first(values: Sequence[object]) -> object | None:
    return values[0] if values else None


def _agg_last(values: Sequence[object]) -> object | None:
    return values[-1] if values else None


AGGREGATES: dict[str, Callable[[Sequence], object]] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
    "stddev": _agg_stddev,
    "median": _agg_median,
    "first": _agg_first,
    "last": _agg_last,
}


def aggregate(func: str, values: Sequence) -> object:
    """Apply a named aggregate; unknown names raise SemanticError."""
    try:
        fn = AGGREGATES[func]
    except KeyError:
        raise SemanticError(
            f"unknown aggregate function {func!r} "
            f"(known: {', '.join(sorted(AGGREGATES))})") from None
    return fn(values)


class GroupHistory:
    """Bounded per-(group, alias) history of past window aggregates.

    ``lookup(alias, 0)`` is the current window's value; ``lookup(alias, k)``
    is k windows back.  Values are recorded once per window via
    :meth:`record`; groups absent from early windows simply have short
    histories, so ``amt[2]`` stays unresolvable (``None``) until three
    windows of data exist for the group.
    """

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise SemanticError("history depth must be at least 1")
        self._depth = depth
        self._values: dict[tuple, deque] = {}

    def record(self, group: tuple, alias: str, value: object) -> None:
        key = (group, alias)
        ring = self._values.get(key)
        if ring is None:
            ring = deque(maxlen=self._depth)
            self._values[key] = ring
        ring.appendleft(value)

    def lookup(self, group: tuple, alias: str, offset: int) -> object | None:
        """Value ``offset`` windows back, or None if not yet recorded.

        Call *after* :meth:`record` for the current window, so offset 0 is
        the freshly recorded value.
        """
        ring = self._values.get((group, alias))
        if ring is None or offset >= len(ring):
            return None
        return ring[offset]

    def known_groups(self) -> set[tuple]:
        return {group for group, _alias in self._values}
