"""Unparser: render a query AST back to canonical AIQL text.

Used by the web UI (query formatting), the conciseness benchmark (which
counts words/characters of canonical query text), and the round-trip
property tests (``parse(pretty(parse(q)))`` is ``parse(q)``).
"""

from __future__ import annotations

import datetime as _dt

from repro.lang import ast
from repro.model.timeutil import SECONDS_PER_DAY, format_duration


def _format_date(ts: float) -> str:
    moment = _dt.datetime.fromtimestamp(ts, tz=_dt.timezone.utc)
    if moment.hour == moment.minute == moment.second == 0:
        return moment.strftime("%m/%d/%Y")
    return moment.strftime("%m/%d/%Y %H:%M:%S")


def _render_value(value: object) -> str:
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, tuple):
        return "(" + ", ".join(_render_value(v) for v in value) + ")"
    return str(value)


def _render_constraint(constraint: ast.Constraint) -> str:
    if constraint.attribute is None:
        # Bare default-attribute constraint.
        return _render_value(constraint.value)
    if constraint.op == "like":
        # '=' against a wildcard string desugars back losslessly.
        return f"{constraint.attribute} = {_render_value(constraint.value)}"
    if constraint.op == "in":
        return f"{constraint.attribute} in {_render_value(constraint.value)}"
    return (f"{constraint.attribute} {constraint.op} "
            f"{_render_value(constraint.value)}")


def _render_entity(entity: ast.EntityPattern) -> str:
    text = f"{entity.entity_type} {entity.variable}"
    if entity.constraints:
        inner = ", ".join(
            _render_constraint(c) for c in entity.constraints)
        text += f"[{inner}]"
    return text


def _render_header(header: ast.QueryHeader) -> list[str]:
    lines: list[str] = []
    if header.window is not None:
        if header.window.duration == SECONDS_PER_DAY and (
                header.window.start % SECONDS_PER_DAY == 0):
            lines.append(f'(at "{_format_date(header.window.start)}")')
        else:
            lines.append(f'(from "{_format_date(header.window.start)}" '
                         f'to "{_format_date(header.window.end)}")')
    for constraint in header.constraints:
        lines.append(_render_constraint(constraint))
    return lines


def _render_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.VarRef):
        return str(expr)
    if isinstance(expr, ast.Literal):
        return _render_value(expr.value)
    if isinstance(expr, ast.AggCall):
        return str(expr)
    if isinstance(expr, ast.HistoryRef):
        return str(expr)
    if isinstance(expr, ast.NotOp):
        return f"not {_render_expr(expr.operand)}"
    if isinstance(expr, ast.BinOp):
        return (f"({_render_expr(expr.left)} {expr.op} "
                f"{_render_expr(expr.right)})")
    raise TypeError(f"unknown expression node: {expr!r}")


def _render_return(items: tuple[ast.ReturnItem, ...], distinct: bool,
                   sort_by: tuple[ast.SortKey, ...] = (),
                   top: int | None = None) -> str:
    rendered = []
    for item in items:
        text = _render_expr(item.expr)
        if item.alias is not None:
            text += f" as {item.alias}"
        rendered.append(text)
    prefix = "return distinct " if distinct else "return "
    text = prefix + ", ".join(rendered)
    if sort_by:
        text += " sort by " + ", ".join(str(key) for key in sort_by)
    if top is not None:
        text += f" top {top}"
    return text


def _render_pattern(pattern: ast.EventPattern) -> str:
    ops = " || ".join(pattern.operations)
    return (f"{_render_entity(pattern.subject)} {ops} "
            f"{_render_entity(pattern.object)} as {pattern.event_var}")


def pretty(query: ast.Query) -> str:
    """Canonical AIQL text for a parsed query."""
    lines = _render_header(query.header)
    if isinstance(query, ast.MultieventQuery):
        lines.extend(_render_pattern(p) for p in query.patterns)
        clauses = []
        for rel in query.temporal:
            text = f"{rel.left} {rel.relation} {rel.right}"
            if rel.within is not None:
                text += f" within {format_duration(rel.within)}"
            clauses.append(text)
        clauses.extend(str(relation) for relation in query.relations)
        if clauses:
            lines.append("with " + ", ".join(clauses))
        lines.append(_render_return(query.return_items, query.distinct,
                                    query.sort_by, query.top))
    elif isinstance(query, ast.DependencyQuery):
        chain = [_render_entity(query.nodes[0])]
        for edge, node in zip(query.edges, query.nodes[1:]):
            ops = " || ".join(edge.operations)
            arrow = "->" if edge.subject_side == "left" else "<-"
            chain.append(f"{arrow}[{ops}] {_render_entity(node)}")
        lines.append(f"{query.direction}: " + " ".join(chain))
        lines.append(_render_return(query.return_items, query.distinct,
                                    query.sort_by, query.top))
    elif isinstance(query, ast.AnomalyQuery):
        lines.append(
            f"window = {format_duration(query.window_spec.width)}, "
            f"step = {format_duration(query.window_spec.step)}")
        lines.extend(_render_pattern(p) for p in query.patterns)
        lines.append(_render_return(query.return_items, False))
        if query.group_by:
            lines.append("group by " + ", ".join(
                str(ref) for ref in query.group_by))
        if query.having is not None:
            lines.append(f"having {_render_expr(query.having)}")
    else:
        raise TypeError(f"unknown query node: {query!r}")
    return "\n".join(lines)
