"""Recursive-descent parser for AIQL.

Grammar (informal), covering the three query classes of §2.2:

    query        := header (dependency | anomaly | multievent)
    header       := paren_clause* global_constraint*
    paren_clause := '(' 'at' STRING ')' | '(' 'from' STRING 'to' STRING ')'
    global_constraint := IDENT cmp literal
    multievent   := pattern+ with_clause? return_clause
    pattern      := entity op ('||' op)* entity 'as' IDENT
    entity       := ('proc'|'file'|'ip') IDENT ('[' constraints ']')?
    with_clause  := 'with' trel (',' trel)*
    trel         := IDENT ('before'|'after') IDENT ('within' duration)?
    dependency   := ('forward'|'backward') ':' node (edge node)* return_clause
    edge         := '->' '[' op ('||' op)* ']' | '<-' '[' op ('||' op)* ']'
    anomaly      := 'window' '=' duration ',' 'step' '=' duration
                    pattern+ return_clause group_by? having?
    return_clause:= 'return' 'distinct'? item (',' item)*

Bare string constraints (``["%cmd.exe"]``) target the entity's default
attribute; an ``=`` against a string containing ``%`` or ``_`` desugars to
``like`` (matching the paper's examples, where wildcard strings always mean
pattern matching).
"""

from __future__ import annotations

from repro.errors import SemanticError
from repro.lang import ast
from repro.lang.errors import AiqlSyntaxError
from repro.lang.lexer import tokenize
from repro.lang.spans import SourceMap, Span, token_length
from repro.lang.tokens import COMPARISON_TOKENS, Token, TokenType
from repro.model.entities import ENTITY_TYPES, canonical_attribute
from repro.model.timeutil import Window, parse_duration

_AGGREGATE_FUNCS = frozenset(
    {"avg", "sum", "count", "min", "max", "stddev", "median", "first",
     "last"})

_CMP_TEXT = {
    TokenType.EQ: "=",
    TokenType.NEQ: "!=",
    TokenType.LT: "<",
    TokenType.LE: "<=",
    TokenType.GT: ">",
    TokenType.GE: ">=",
}


class Parser:
    """One-pass recursive-descent parser over the token list."""

    def __init__(self, source: str, *, spans: SourceMap | None = None,
                 check: bool = True) -> None:
        self.source = source
        self._tokens = tokenize(source)
        self._pos = 0
        #: Optional side table receiving node spans (parse_with_spans).
        self._spans = spans
        #: When False, the span-less legacy semantic checks are skipped —
        #: the semantic analyzer re-runs a strict superset of them with
        #: precise spans (the ``repro lint`` path).
        self._check = check

    # ------------------------------------------------------------------
    # Span recording (no-ops unless a SourceMap was supplied)
    # ------------------------------------------------------------------
    def _token_span(self, start: Token, end: Token | None = None) -> Span:
        start_len = token_length(self.source, start)
        if end is None or end is start or end.line != start.line:
            return Span(start.line, start.col, start_len)
        end_len = token_length(self.source, end)
        return Span(start.line, start.col, end.col - start.col + end_len)

    def _note(self, node: object, start: Token,
              end: Token | None = None) -> None:
        if self._spans is not None:
            self._spans.note(node, self._token_span(start, end))

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> AiqlSyntaxError:
        token = token or self._peek()
        return AiqlSyntaxError(message, self.source, token.line, token.col)

    def _expect(self, ttype: TokenType, what: str) -> Token:
        token = self._peek()
        if token.type is not ttype:
            raise self._error(f"expected {what}, found {token.text!r}" if
                              token.text else f"expected {what}, found end "
                              f"of query")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if token.keyword != word:
            raise self._error(f"expected '{word}', found {token.text!r}")
        return self._advance()

    def _at_keyword(self, *words: str) -> bool:
        return self._peek().keyword in words

    def _match(self, ttype: TokenType) -> Token | None:
        if self._peek().type is ttype:
            return self._advance()
        return None

    def _prev(self) -> Token:
        """The most recently consumed token (for span end positions)."""
        return self._tokens[max(self._pos - 1, 0)]

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def parse(self) -> ast.Query:
        header = self._parse_header()
        if self._at_keyword("forward", "backward"):
            query: ast.Query = self._parse_dependency(header)
        elif self._at_keyword("window"):
            query = self._parse_anomaly(header)
        else:
            query = self._parse_multievent(header)
        trailing = self._peek()
        if trailing.type is not TokenType.EOF:
            raise self._error(
                f"unexpected trailing input {trailing.text!r}", trailing)
        return query

    # ------------------------------------------------------------------
    # Header: time window + global constraints
    # ------------------------------------------------------------------
    def _parse_header(self) -> ast.QueryHeader:
        window: Window | None = None
        constraints: list[ast.Constraint] = []
        while True:
            token = self._peek()
            if token.type is TokenType.LPAREN:
                clause_window = self._parse_paren_window()
                window = (clause_window if window is None
                          else _intersect_windows(window, clause_window,
                                                  self, token))
            elif (token.type is TokenType.IDENT
                  and self._peek(1).type in COMPARISON_TOKENS):
                constraints.append(self._parse_global_constraint())
            else:
                break
        return ast.QueryHeader(window=window, constraints=tuple(constraints))

    def _parse_paren_window(self) -> Window:
        self._expect(TokenType.LPAREN, "'('")
        token = self._peek()
        if token.keyword == "at":
            self._advance()
            literal = self._expect(TokenType.STRING, "a date string")
            try:
                window = Window.for_day(literal.text)
            except Exception as exc:
                raise self._error(str(exc), literal) from None
        elif token.keyword == "from":
            self._advance()
            start = self._expect(TokenType.STRING, "a date string")
            self._expect_keyword("to")
            end = self._expect(TokenType.STRING, "a date string")
            try:
                window = Window.between(start.text, end.text)
            except Exception as exc:
                raise self._error(str(exc), start) from None
        else:
            raise self._error("expected 'at' or 'from' inside '(...)'", token)
        self._expect(TokenType.RPAREN, "')'")
        return window

    def _parse_global_constraint(self) -> ast.Constraint:
        name = self._expect(TokenType.IDENT, "an attribute name")
        op_token = self._advance()
        op = _CMP_TEXT[op_token.type]
        value = self._parse_literal()
        attribute = name.text.lower()
        if attribute == "agentid" and op == "=" and not isinstance(value, int):
            raise self._error("agentid must be an integer", name)
        constraint = _desugar_constraint(attribute, op, value)
        self._note(constraint, name, self._prev())
        return constraint

    # ------------------------------------------------------------------
    # Multievent
    # ------------------------------------------------------------------
    def _parse_multievent(self, header: ast.QueryHeader) -> ast.MultieventQuery:
        patterns = self._parse_patterns()
        temporal, relations = self._parse_with_clause(patterns)
        distinct, items, sort_by, top = self._parse_return_clause()
        query = ast.MultieventQuery(header=header, patterns=patterns,
                                    temporal=temporal, return_items=items,
                                    distinct=distinct, relations=relations,
                                    sort_by=sort_by, top=top)
        if self._check:
            _check_multievent(query, self)
        return query

    def _parse_patterns(self) -> tuple[ast.EventPattern, ...]:
        patterns: list[ast.EventPattern] = []
        while self._at_keyword(*ENTITY_TYPES):
            patterns.append(self._parse_event_pattern())
        if not patterns:
            raise self._error(
                "expected at least one event pattern (proc/file/ip ...)")
        return tuple(patterns)

    def _parse_event_pattern(self) -> ast.EventPattern:
        subject = self._parse_entity_pattern()
        operations, op_tokens = self._parse_operations()
        obj = self._parse_entity_pattern()
        self._expect_keyword("as")
        event_token = self._expect(TokenType.IDENT, "an event variable")
        pattern = ast.EventPattern(subject=subject, operations=operations,
                                   object=obj, event_var=event_token.text)
        self._note(pattern, event_token)
        if self._spans is not None:
            self._spans.note_operations(
                pattern, tuple(self._token_span(t) for t in op_tokens))
        return pattern

    def _parse_entity_pattern(self) -> ast.EntityPattern:
        type_token = self._peek()
        if type_token.keyword not in ENTITY_TYPES:
            raise self._error("expected an entity type (proc, file, ip)",
                              type_token)
        self._advance()
        var_token = self._expect(TokenType.IDENT, "an entity variable")
        constraints: tuple[ast.Constraint, ...] = ()
        if self._peek().type is TokenType.LBRACKET:
            constraints = self._parse_bracket_constraints(type_token.keyword)
        entity = ast.EntityPattern(entity_type=type_token.keyword,
                                   variable=var_token.text,
                                   constraints=constraints)
        self._note(entity, var_token)
        return entity

    def _parse_bracket_constraints(
            self, entity_type: str) -> tuple[ast.Constraint, ...]:
        self._expect(TokenType.LBRACKET, "'['")
        constraints: list[ast.Constraint] = []
        while True:
            constraints.append(self._parse_one_constraint(entity_type))
            if self._match(TokenType.COMMA):
                continue
            break
        self._expect(TokenType.RBRACKET, "']'")
        return tuple(constraints)

    def _parse_one_constraint(self, entity_type: str) -> ast.Constraint:
        token = self._peek()
        if token.type is TokenType.STRING:
            self._advance()
            constraint = _desugar_constraint(None, "=", token.text)
            self._note(constraint, token)
            return constraint
        if token.type in (TokenType.IDENT, TokenType.KEYWORD):
            name = self._advance()
            attribute = name.text.lower()
            if attribute != "agentid":
                try:
                    attribute = canonical_attribute(entity_type, attribute)
                except Exception as exc:
                    raise self._error(str(exc), name) from None
            if self._at_keyword("like"):
                self._advance()
                value = self._expect(TokenType.STRING, "a pattern string")
                constraint = ast.Constraint(attribute, "like", value.text)
                self._note(constraint, name, value)
                return constraint
            if self._at_keyword("in"):
                self._advance()
                values = self._parse_literal_list()
                constraint = ast.Constraint(attribute, "in", values)
                self._note(constraint, name, self._prev())
                return constraint
            op_token = self._peek()
            if op_token.type not in COMPARISON_TOKENS:
                raise self._error("expected a comparison operator", op_token)
            self._advance()
            value = self._parse_literal()
            constraint = _desugar_constraint(attribute,
                                             _CMP_TEXT[op_token.type], value)
            self._note(constraint, name, self._prev())
            return constraint
        raise self._error("expected a constraint (string or attr = value)",
                          token)

    def _parse_literal(self) -> object:
        token = self._peek()
        if token.type is TokenType.STRING:
            self._advance()
            return token.text
        if token.type is TokenType.NUMBER:
            self._advance()
            return token.value
        if token.type is TokenType.MINUS:
            self._advance()
            number = self._expect(TokenType.NUMBER, "a number")
            return -number.value  # type: ignore[operator]
        if token.type is TokenType.IDENT:
            # Bare-word values (e.g. protocol = tcp) read as strings.
            self._advance()
            return token.text
        raise self._error("expected a literal value", token)

    def _parse_literal_list(self) -> tuple:
        self._expect(TokenType.LPAREN, "'('")
        values = [self._parse_literal()]
        while self._match(TokenType.COMMA):
            values.append(self._parse_literal())
        self._expect(TokenType.RPAREN, "')'")
        return tuple(values)

    def _parse_operations(self) -> tuple[tuple[str, ...], list[Token]]:
        first = self._expect(TokenType.IDENT, "an operation (read, write, "
                             "start, ...)")
        tokens = [first]
        while self._match(TokenType.OROR):
            tokens.append(self._expect(TokenType.IDENT,
                                       "an operation after '||'"))
        return tuple(token.text.lower() for token in tokens), tokens

    def _parse_with_clause(
            self, patterns: tuple[ast.EventPattern, ...],
    ) -> tuple[tuple[ast.TemporalRelation, ...],
               tuple[ast.AttributeRelation, ...]]:
        """``with`` clause: temporal relations and attribute relations.

        ``evt1 before evt2`` is temporal; ``p1.user = p2.user`` (left side
        has a dot, or the operator is a comparison) is an attribute
        relation between two variables.
        """
        if not self._at_keyword("with"):
            return (), ()
        self._advance()
        event_vars = {p.event_var for p in patterns}
        entity_vars = set()
        for pattern in patterns:
            entity_vars.add(pattern.subject.variable)
            entity_vars.add(pattern.object.variable)
        temporal: list[ast.TemporalRelation] = []
        relations: list[ast.AttributeRelation] = []
        while True:
            if (self._peek(1).type is TokenType.DOT
                    or self._peek(1).type in COMPARISON_TOKENS):
                relations.append(self._parse_attribute_relation(
                    event_vars | entity_vars))
            else:
                temporal.append(self._parse_temporal_relation(event_vars))
            if not self._match(TokenType.COMMA):
                break
        return tuple(temporal), tuple(relations)

    def _parse_temporal_relation(
            self, known: set[str]) -> ast.TemporalRelation:
        left = self._expect(TokenType.IDENT, "an event variable")
        rel_token = self._peek()
        if rel_token.keyword not in ("before", "after"):
            raise self._error("expected 'before' or 'after'", rel_token)
        self._advance()
        right = self._expect(TokenType.IDENT, "an event variable")
        for token in (left, right):
            if token.text not in known:
                raise self._error(
                    f"unknown event variable {token.text!r}", token)
        within = None
        if self._at_keyword("within"):
            self._advance()
            within = self._parse_duration()
        relation = ast.TemporalRelation(left.text, rel_token.keyword,
                                        right.text, within)
        self._note(relation, left, self._prev())
        return relation

    def _parse_attribute_relation(
            self, known: set[str]) -> ast.AttributeRelation:
        left_token = self._peek()
        left = self._parse_var_ref()
        op_token = self._peek()
        if op_token.type not in COMPARISON_TOKENS:
            raise self._error("expected a comparison operator", op_token)
        self._advance()
        right_token = self._peek()
        right = self._parse_var_ref()
        for ref, token in ((left, left_token), (right, right_token)):
            if ref.variable not in known:
                raise self._error(
                    f"unknown variable {ref.variable!r}", token)
        return ast.AttributeRelation(left, _CMP_TEXT[op_token.type], right)

    def _parse_duration(self) -> float:
        number = self._expect(TokenType.NUMBER, "a number")
        unit = self._peek()
        if unit.type not in (TokenType.IDENT, TokenType.KEYWORD):
            raise self._error("expected a time unit (sec, min, hour, day)",
                              unit)
        self._advance()
        try:
            return parse_duration(f"{number.text} {unit.text}")
        except Exception as exc:
            raise self._error(str(exc), unit) from None

    # ------------------------------------------------------------------
    # Return clause (shared)
    # ------------------------------------------------------------------
    def _parse_return_clause(self) -> tuple[
            bool, tuple[ast.ReturnItem, ...], tuple[ast.SortKey, ...],
            int | None]:
        self._expect_keyword("return")
        distinct = False
        if self._at_keyword("distinct"):
            self._advance()
            distinct = True
        items = [self._parse_return_item()]
        while self._match(TokenType.COMMA):
            items.append(self._parse_return_item())
        sort_by: list[ast.SortKey] = []
        if self._at_keyword("sort"):
            self._advance()
            self._expect_keyword("by")
            while True:
                ref = self._parse_var_ref()
                descending = False
                if self._at_keyword("desc"):
                    self._advance()
                    descending = True
                elif self._at_keyword("asc"):
                    self._advance()
                sort_by.append(ast.SortKey(ref, descending))
                if not self._match(TokenType.COMMA):
                    break
        top: int | None = None
        if self._at_keyword("top"):
            self._advance()
            number = self._expect(TokenType.NUMBER, "a row count")
            if not isinstance(number.value, int) or number.value <= 0:
                raise self._error("top expects a positive integer", number)
            top = number.value
        return distinct, tuple(items), tuple(sort_by), top

    def _parse_return_item(self) -> ast.ReturnItem:
        expr = self._parse_projection_expr()
        alias = None
        if self._at_keyword("as"):
            self._advance()
            alias = self._expect(TokenType.IDENT, "an alias").text
        return ast.ReturnItem(expr=expr, alias=alias)

    def _parse_projection_expr(self) -> ast.Expr:
        token = self._peek()
        if (token.type is TokenType.IDENT
                and token.text.lower() in _AGGREGATE_FUNCS
                and self._peek(1).type is TokenType.LPAREN):
            return self._parse_aggregate()
        return self._parse_var_ref()

    def _parse_aggregate(self) -> ast.AggCall:
        func_token = self._advance()
        self._expect(TokenType.LPAREN, "'('")
        if self._peek().type is TokenType.STAR:
            self._advance()
            arg: ast.VarRef | None = None
        else:
            arg = self._parse_var_ref()
        close = self._expect(TokenType.RPAREN, "')'")
        call = ast.AggCall(func=func_token.text.lower(), arg=arg)
        self._note(call, func_token, close)
        return call

    def _parse_var_ref(self) -> ast.VarRef:
        name = self._expect(TokenType.IDENT, "a variable")
        attribute = None
        end = name
        if self._match(TokenType.DOT):
            attr_token = self._peek()
            if attr_token.type not in (TokenType.IDENT, TokenType.KEYWORD):
                raise self._error("expected an attribute name", attr_token)
            self._advance()
            attribute = attr_token.text.lower()
            end = attr_token
        ref = ast.VarRef(variable=name.text, attribute=attribute)
        self._note(ref, name, end)
        return ref

    # ------------------------------------------------------------------
    # Dependency
    # ------------------------------------------------------------------
    def _parse_dependency(self, header: ast.QueryHeader) -> ast.DependencyQuery:
        direction = self._advance().keyword or ""
        self._expect(TokenType.COLON, "':' after the tracking direction")
        nodes = [self._parse_entity_pattern()]
        edges: list[ast.DependencyEdge] = []
        while self._peek().type in (TokenType.ARROW_RIGHT,
                                    TokenType.ARROW_LEFT):
            arrow = self._advance()
            self._expect(TokenType.LBRACKET, "'[' after the arrow")
            operations, op_tokens = self._parse_operations()
            self._expect(TokenType.RBRACKET, "']' after the operation")
            side = ("left" if arrow.type is TokenType.ARROW_RIGHT
                    else "right")
            edge = ast.DependencyEdge(operations=operations,
                                      subject_side=side)
            self._note(edge, arrow)
            if self._spans is not None:
                self._spans.note_operations(
                    edge, tuple(self._token_span(t) for t in op_tokens))
            edges.append(edge)
            nodes.append(self._parse_entity_pattern())
        if not edges:
            raise self._error("a dependency path needs at least one edge")
        distinct, items, sort_by, top = self._parse_return_clause()
        query = ast.DependencyQuery(header=header, direction=direction,
                                    nodes=tuple(nodes), edges=tuple(edges),
                                    return_items=items, distinct=distinct,
                                    sort_by=sort_by, top=top)
        if self._check:
            _check_dependency(query, self)
        return query

    # ------------------------------------------------------------------
    # Anomaly
    # ------------------------------------------------------------------
    def _parse_anomaly(self, header: ast.QueryHeader) -> ast.AnomalyQuery:
        self._expect_keyword("window")
        self._expect(TokenType.EQ, "'='")
        width = self._parse_duration()
        self._expect(TokenType.COMMA, "','")
        self._expect_keyword("step")
        self._expect(TokenType.EQ, "'='")
        step = self._parse_duration()
        patterns = self._parse_patterns()
        distinct, items, sort_by, top = self._parse_return_clause()
        if sort_by or top is not None:
            raise SemanticError(
                "sort by / top are not supported in anomaly queries "
                "(results are already window-ordered)")
        group_by: tuple[ast.VarRef, ...] = ()
        if self._at_keyword("group"):
            self._advance()
            self._expect_keyword("by")
            refs = [self._parse_var_ref()]
            while self._match(TokenType.COMMA):
                refs.append(self._parse_var_ref())
            group_by = tuple(refs)
        having: ast.Expr | None = None
        if self._at_keyword("having"):
            self._advance()
            having = self._parse_having_expr()
        query = ast.AnomalyQuery(
            header=header,
            window_spec=ast.SlidingWindowSpec(width=width, step=step),
            patterns=patterns, return_items=items, group_by=group_by,
            having=having)
        if self._check:
            _check_anomaly(query, self)
        return query

    # Having expressions: or -> and -> not -> comparison -> additive ->
    # multiplicative -> unary -> primary.
    def _parse_having_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._at_keyword("or"):
            self._advance()
            left = ast.BinOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._at_keyword("and"):
            self._advance()
            left = ast.BinOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self._at_keyword("not"):
            self._advance()
            return ast.NotOp(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        token = self._peek()
        if token.type in COMPARISON_TOKENS:
            self._advance()
            right = self._parse_additive()
            return ast.BinOp(_CMP_TEXT[token.type], left, right)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._peek().type in (TokenType.PLUS, TokenType.MINUS):
            op = "+" if self._advance().type is TokenType.PLUS else "-"
            left = ast.BinOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().type in (TokenType.STAR, TokenType.SLASH,
                                    TokenType.PERCENT):
            token = self._advance()
            op = {"*": "*", "/": "/", "%": "%"}[token.text]
            left = ast.BinOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._peek().type is TokenType.MINUS:
            self._advance()
            operand = self._parse_unary()
            return ast.BinOp("-", ast.Literal(0), operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self._parse_having_expr()
            self._expect(TokenType.RPAREN, "')'")
            return inner
        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.text)
        if token.type is TokenType.IDENT:
            # alias[k] history access, aggregate call, or variable ref.
            if (token.text.lower() in _AGGREGATE_FUNCS
                    and self._peek(1).type is TokenType.LPAREN):
                return self._parse_aggregate()
            if self._peek(1).type is TokenType.LBRACKET:
                name_token = self._advance()
                self._advance()  # '['
                offset = self._expect(TokenType.NUMBER, "a window offset")
                if not isinstance(offset.value, int) or offset.value < 0:
                    raise self._error("history offsets must be non-negative "
                                      "integers", offset)
                close = self._expect(TokenType.RBRACKET, "']'")
                ref = ast.HistoryRef(alias=name_token.text,
                                     offset=offset.value)
                self._note(ref, name_token, close)
                return ref
            return self._parse_var_ref()
        raise self._error("expected an expression", token)


# ---------------------------------------------------------------------------
# Desugaring and semantic checks
# ---------------------------------------------------------------------------

def _desugar_constraint(attribute: str | None, op: str,
                        value: object) -> ast.Constraint:
    """Turn ``= "pattern-with-wildcards"`` into ``like``."""
    if (op == "=" and isinstance(value, str)
            and ("%" in value or "_" in value)):
        return ast.Constraint(attribute, "like", value)
    return ast.Constraint(attribute, op, value)


def _intersect_windows(a: Window, b: Window, parser: Parser,
                       token: Token) -> Window:
    merged = a.intersect(b)
    if merged is None:
        raise parser._error("time windows do not overlap", token)
    return merged


def _entity_types_by_var(
        patterns: tuple[ast.EventPattern, ...]) -> dict[str, str]:
    types: dict[str, str] = {}
    for pattern in patterns:
        for entity in (pattern.subject, pattern.object):
            seen = types.get(entity.variable)
            if seen is None:
                types[entity.variable] = entity.entity_type
            elif seen != entity.entity_type:
                raise SemanticError(
                    f"variable {entity.variable!r} used as both {seen} "
                    f"and {entity.entity_type}")
    return types


def _check_return_vars(items: tuple[ast.ReturnItem, ...],
                       entity_vars: dict[str, str],
                       event_vars: set[str]) -> None:
    for item in items:
        for node in ast.walk_expr(item.expr):
            if isinstance(node, ast.VarRef):
                if (node.variable not in entity_vars
                        and node.variable not in event_vars):
                    raise SemanticError(
                        f"return clause references unknown variable "
                        f"{node.variable!r}")


def _check_multievent(query: ast.MultieventQuery, parser: Parser) -> None:
    event_vars: set[str] = set()
    for pattern in query.patterns:
        if pattern.event_var in event_vars:
            raise SemanticError(
                f"duplicate event variable {pattern.event_var!r}")
        event_vars.add(pattern.event_var)
    entity_vars = _entity_types_by_var(query.patterns)
    overlap = event_vars & set(entity_vars)
    if overlap:
        raise SemanticError(
            f"names used for both events and entities: {sorted(overlap)}")
    _check_return_vars(query.return_items, entity_vars, event_vars)
    for item in query.return_items:
        if ast.expr_aggregates(item.expr):
            raise SemanticError(
                "aggregates are only allowed in anomaly queries "
                "(add 'window = ..., step = ...')")
    for key in query.sort_by:
        if (key.expr.variable not in entity_vars
                and key.expr.variable not in event_vars):
            raise SemanticError(
                f"sort by references unknown variable "
                f"{key.expr.variable!r}")


def _check_dependency(query: ast.DependencyQuery, parser: Parser) -> None:
    entity_vars: dict[str, str] = {}
    for node in query.nodes:
        seen = entity_vars.get(node.variable)
        if seen is not None and seen != node.entity_type:
            raise SemanticError(
                f"variable {node.variable!r} used as both {seen} and "
                f"{node.entity_type}")
        entity_vars[node.variable] = node.entity_type
    _check_return_vars(query.return_items, entity_vars, set())
    for key in query.sort_by:
        if key.expr.variable not in entity_vars:
            raise SemanticError(
                f"sort by references unknown variable "
                f"{key.expr.variable!r}")
    for edge, position in zip(query.edges, range(len(query.edges))):
        subject = (query.nodes[position] if edge.subject_side == "left"
                   else query.nodes[position + 1])
        if subject.entity_type != "proc":
            raise SemanticError(
                f"edge {position + 1}: event subjects must be processes, "
                f"but the arrow makes {subject.variable!r} "
                f"({subject.entity_type}) the subject")


def _check_anomaly(query: ast.AnomalyQuery, parser: Parser) -> None:
    entity_vars = _entity_types_by_var(query.patterns)
    event_vars = {p.event_var for p in query.patterns}
    _check_return_vars(query.return_items, entity_vars, event_vars)
    aliases = {item.alias for item in query.return_items
               if item.alias is not None}
    for ref in query.group_by:
        if ref.variable not in entity_vars and ref.variable not in event_vars:
            raise SemanticError(
                f"group by references unknown variable {ref.variable!r}")
    if query.having is not None:
        for node in ast.walk_expr(query.having):
            if isinstance(node, ast.HistoryRef) and node.alias not in aliases:
                raise SemanticError(
                    f"having references unknown aggregate alias "
                    f"{node.alias!r}")
            if (isinstance(node, ast.VarRef) and node.attribute is None
                    and node.variable not in aliases
                    and node.variable not in entity_vars
                    and node.variable not in event_vars):
                raise SemanticError(
                    f"having references unknown name {node.variable!r}")
    has_aggregate = any(
        ast.expr_aggregates(item.expr) for item in query.return_items)
    if not has_aggregate:
        raise SemanticError(
            "anomaly queries must aggregate at least one value "
            "(e.g. avg(evt.amount))")


def parse(source: str) -> ast.Query:
    """Parse AIQL source into a typed query AST."""
    return Parser(source).parse()


def parse_with_spans(source: str,
                     check: bool = True) -> tuple[ast.Query, SourceMap]:
    """Parse AIQL source and record each AST node's source span.

    Returns the query plus a :class:`~repro.lang.spans.SourceMap` the
    semantic analyzer uses to anchor diagnostics at the offending token
    range.  ``check=False`` skips the legacy span-less semantic checks so
    the analyzer (which re-runs a superset of them, with spans) owns
    every semantic diagnostic — the ``repro lint`` path.
    """
    spans = SourceMap(source)
    query = Parser(source, spans=spans, check=check).parse()
    return query, spans
