"""The AIQL language: lexer, parser, AST, formatting, and diagnostics."""

from repro.lang import ast
from repro.lang.errors import AiqlSyntaxError, check_syntax
from repro.lang.highlight import highlight_ansi, highlight_html
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.pretty import pretty

__all__ = [
    "ast", "AiqlSyntaxError", "check_syntax", "highlight_ansi",
    "highlight_html", "tokenize", "parse", "pretty",
]
