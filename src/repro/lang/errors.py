"""Syntax error reporting with caret diagnostics.

The architecture diagram (Figure 1) shows an *Error Reporting* component in
the language parser; the web UI exposes it as "syntax checking for query
debugging".  :class:`AiqlSyntaxError` carries the 1-based source position
and renders a caret diagnostic pointing at the offending token.
"""

from __future__ import annotations

from repro.errors import ParseError


class AiqlSyntaxError(ParseError):
    """A lexical or syntactic error with source position."""

    def __init__(self, message: str, source: str, line: int, col: int) -> None:
        self.reason = message
        self.source = source
        self.line = line
        self.col = col
        super().__init__(self.render())

    def render(self) -> str:
        """Multi-line diagnostic with a caret under the error column."""
        lines = self.source.splitlines()
        snippet = lines[self.line - 1] if 0 < self.line <= len(lines) else ""
        caret = " " * (self.col - 1) + "^"
        return (f"syntax error at line {self.line}, column {self.col}: "
                f"{self.reason}\n  {snippet}\n  {caret}")


def check_syntax(source: str) -> AiqlSyntaxError | None:
    """Parse-check a query; returns the error or None when valid.

    This is the web UI's syntax-checking endpoint.  Imported lazily to keep
    the module dependency graph acyclic.
    """
    from repro.lang.parser import parse

    try:
        parse(source)
    except AiqlSyntaxError as exc:
        return exc
    return None
