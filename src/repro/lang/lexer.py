"""Hand-written tokenizer for AIQL.

The paper builds the language with ANTLR 4; this reproduction uses a small
hand-rolled lexer with the same surface: ``//`` line comments, double-quoted
strings, numbers, identifiers/keywords, and the operator set including the
dependency-edge arrows ``->`` / ``<-`` and the operation alternation ``||``.
"""

from __future__ import annotations

from repro.lang.errors import AiqlSyntaxError
from repro.lang.tokens import KEYWORDS, Token, TokenType

_ASCII_DIGITS = frozenset("0123456789")


def _is_ascii_digit(ch: str) -> bool:
    """True for '0'..'9' only — not '' (EOF) and not unicode digits."""
    return ch in _ASCII_DIGITS


_SINGLE_CHAR = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    ":": TokenType.COLON,
    "+": TokenType.PLUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "=": TokenType.EQ,
}


class Lexer:
    """Streaming tokenizer with 1-based line/column tracking."""

    def __init__(self, source: str) -> None:
        self.source = source
        self._pos = 0
        self._line = 1
        self._col = 1

    def _error(self, message: str) -> AiqlSyntaxError:
        return AiqlSyntaxError(message, self.source, self._line, self._col)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self.source):
                return
            if self.source[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def tokens(self) -> list[Token]:
        """Tokenize the whole source; always ends with an EOF token."""
        out: list[Token] = []
        while True:
            token = self._next_token()
            out.append(token)
            if token.type is TokenType.EOF:
                return out

    def _skip_trivia(self) -> None:
        while self._pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, col = self._line, self._col
        ch = self._peek()
        if not ch:
            return Token(TokenType.EOF, "", line, col)
        if ch == '"':
            return self._string(line, col)
        # ASCII-only digit test: unicode "digits" like '²' satisfy
        # str.isdigit() but are not valid number literals.
        if _is_ascii_digit(ch):
            return self._number(line, col)
        if ch.isalpha() or ch == "_":
            return self._word(line, col)
        return self._operator(line, col)

    def _string(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise AiqlSyntaxError("unterminated string literal",
                                      self.source, line, col)
            if ch == '"':
                self._advance()
                break
            if ch == "\\" and self._peek(1) in ('"', "\\"):
                chars.append(self._peek(1))
                self._advance(2)
                continue
            chars.append(ch)
            self._advance()
        text = "".join(chars)
        return Token(TokenType.STRING, text, line, col, value=text)

    def _number(self, line: int, col: int) -> Token:
        start = self._pos
        while _is_ascii_digit(self._peek()):
            self._advance()
        is_float = False
        if self._peek() == "." and _is_ascii_digit(self._peek(1)):
            is_float = True
            self._advance()
            while _is_ascii_digit(self._peek()):
                self._advance()
        text = self.source[start:self._pos]
        value: object = float(text) if is_float else int(text)
        return Token(TokenType.NUMBER, text, line, col, value=value)

    def _word(self, line: int, col: int) -> Token:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self._pos]
        kind = (TokenType.KEYWORD if text.lower() in KEYWORDS
                else TokenType.IDENT)
        return Token(kind, text, line, col)

    def _operator(self, line: int, col: int) -> Token:
        ch = self._peek()
        nxt = self._peek(1)
        if ch == "|" and nxt == "|":
            self._advance(2)
            return Token(TokenType.OROR, "||", line, col)
        if ch == "|":
            raise self._error("single '|' — did you mean '||'?")
        if ch == "-" and nxt == ">":
            self._advance(2)
            return Token(TokenType.ARROW_RIGHT, "->", line, col)
        if ch == "-":
            self._advance()
            return Token(TokenType.MINUS, "-", line, col)
        if ch == "<":
            # '<-' is a dependency edge only when a '[' follows; otherwise
            # it is a comparison against a negative number (a < -1).
            if nxt == "-" and self._peek(2) == "[":
                self._advance(2)
                return Token(TokenType.ARROW_LEFT, "<-", line, col)
            if nxt == "=":
                self._advance(2)
                return Token(TokenType.LE, "<=", line, col)
            self._advance()
            return Token(TokenType.LT, "<", line, col)
        if ch == ">":
            if nxt == "=":
                self._advance(2)
                return Token(TokenType.GE, ">=", line, col)
            self._advance()
            return Token(TokenType.GT, ">", line, col)
        if ch == "!" and nxt == "=":
            self._advance(2)
            return Token(TokenType.NEQ, "!=", line, col)
        if ch in _SINGLE_CHAR:
            self._advance()
            return Token(_SINGLE_CHAR[ch], ch, line, col)
        raise self._error(f"unexpected character {ch!r}")


def tokenize(source: str) -> list[Token]:
    """Tokenize AIQL source text (convenience wrapper)."""
    return Lexer(source).tokens()
