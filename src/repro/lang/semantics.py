"""The AIQL semantic analyzer: lint queries against the schema.

Static checks over a parsed query, run before execution by the session
facade and on demand by ``repro lint``.  The analyzer re-runs a strict
superset of the parser's legacy span-less semantic checks — so a query
that lints clean also plans and executes — and adds the defect classes
only whole-query analysis can see:

* ``unknown-attribute`` / ``unknown-operation`` — names that do not
  exist in the entity/event schema of :mod:`repro.model`;
* ``unbound-variable`` — return/sort/group/having references to
  variables no pattern declares;
* ``type-mismatch`` — comparisons and aggregates whose operand types can
  never produce a match (the engine's cross-type comparison semantics
  make these *silently empty*, which is exactly why they deserve a
  diagnostic);
* ``unused-pattern`` — a pattern that constrains nothing: not returned,
  not sorted on, not temporally related, and sharing no variable;
* ``always-false`` — merged per-variable constraint sets no event can
  satisfy (conflicting equalities, empty ranges, equality outside an
  ``in`` set);
* ``unsatisfiable-temporal`` — a negative cycle in the before/within
  difference-constraint graph, detected on the same transitive closure
  the scheduler propagates bounds with
  (:func:`repro.engine.planner.temporal_closure`).

Every diagnostic carries the offending token's span when the query was
parsed with :func:`repro.lang.parser.parse_with_spans`.
"""

from __future__ import annotations

import math
from dataclasses import fields as dataclass_fields

from repro.analysis.diagnostics import ERROR, WARNING, Diagnostic
from repro.errors import DataModelError, ReproError
from repro.lang import ast
from repro.lang.errors import AiqlSyntaxError
from repro.lang.parser import parse_with_spans
from repro.lang.spans import SourceMap, Span
from repro.model.entities import (DEFAULT_ATTRIBUTE, FileEntity,
                                  NetworkEntity, ProcessEntity,
                                  canonical_attribute)
from repro.model.events import (EVENT_ATTRIBUTES, Event,
                                OPERATIONS_BY_TYPE,
                                canonical_event_attribute)

__all__ = ["analyze", "analyze_query"]

#: Aggregates whose result only makes sense over numeric inputs.
_NUMERIC_AGGREGATES = frozenset({"avg", "sum", "stddev", "median"})

_PY_TYPES = {"int": int, "str": str, "float": float}


def _attr_types(cls) -> dict[str, type | None]:
    return {f.name: _PY_TYPES.get(str(f.type)) for f in dataclass_fields(cls)}


#: Canonical attribute -> python type, per entity type.
_ENTITY_ATTR_TYPES: dict[str, dict[str, type | None]] = {
    "proc": _attr_types(ProcessEntity),
    "file": _attr_types(FileEntity),
    "ip": _attr_types(NetworkEntity),
}

#: Event attribute -> python type (the AIQL-addressable subset).
_EVENT_ATTR_TYPES: dict[str, type | None] = {
    name: kind for name, kind in _attr_types(Event).items()
    if name in EVENT_ATTRIBUTES
}


def _compatible(left: type | None, right: type | None) -> bool:
    """Can values of these types ever compare equal / order meaningfully?"""
    if left is None or right is None:
        return True
    if left in (int, float) and right in (int, float):
        return True
    return left is right


def analyze(source: str) -> list[Diagnostic]:
    """Lint AIQL text: parse with spans, then analyze the query.

    Total over arbitrary text: syntax errors come back as a single
    ``syntax`` diagnostic instead of raising, so ``repro lint`` renders
    every failure mode the same way.
    """
    try:
        query, spans = parse_with_spans(source, check=False)
    except AiqlSyntaxError as exc:
        return [Diagnostic(ERROR, "syntax", exc.reason,
                           Span(exc.line, exc.col, 1))]
    except ReproError as exc:
        # Legacy checks that stayed in the parser (shape errors the AST
        # cannot even represent, e.g. sort by in an anomaly query).
        return [Diagnostic(ERROR, "semantic", str(exc))]
    return analyze_query(query, spans)


def analyze_query(query: ast.Query,
                  spans: SourceMap | None = None) -> list[Diagnostic]:
    """Analyze a parsed query; spans anchor diagnostics when provided."""
    analyzer = _Analyzer(spans)
    if isinstance(query, ast.MultieventQuery):
        analyzer.multievent(query)
    elif isinstance(query, ast.DependencyQuery):
        analyzer.dependency(query)
    else:
        analyzer.anomaly(query)
    return analyzer.finish()


class _Scope:
    """Name environment of one query: entity var types + event vars."""

    __slots__ = ("entity_types", "event_vars", "aliases")

    def __init__(self, entity_types: dict[str, str],
                 event_vars: set[str],
                 aliases: frozenset[str] = frozenset()) -> None:
        self.entity_types = entity_types
        self.event_vars = event_vars
        self.aliases = aliases


class _Analyzer:
    def __init__(self, spans: SourceMap | None) -> None:
        self._spans = spans
        self._diags: list[Diagnostic] = []

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------
    def _span(self, node: object) -> Span | None:
        if self._spans is None or node is None:
            return None
        return self._spans.span(node)

    def _emit(self, severity: str, code: str, message: str,
              node: object = None, span: Span | None = None) -> None:
        self._diags.append(Diagnostic(
            severity, code, message,
            span if span is not None else self._span(node)))

    def finish(self) -> list[Diagnostic]:
        def order(diag: Diagnostic):
            if diag.span is None:
                return (1, 0, 0)
            return (0, diag.span.line, diag.span.col)
        return sorted(self._diags, key=order)

    # ------------------------------------------------------------------
    # Query classes
    # ------------------------------------------------------------------
    def multievent(self, query: ast.MultieventQuery) -> None:
        scope = self._pattern_scope(query.patterns)
        self._header(query.header)
        for item in query.return_items:
            for node in ast.walk_expr(item.expr):
                if isinstance(node, ast.AggCall):
                    self._emit(ERROR, "aggregate-in-multievent",
                               "aggregates are only allowed in anomaly "
                               "queries (add 'window = ..., step = ...')",
                               node)
                elif isinstance(node, ast.VarRef):
                    self._ref(node, scope, "return clause")
        for key in query.sort_by:
            self._ref(key.expr, scope, "sort by")
        for relation in query.relations:
            self._relation(relation, scope)
        self._temporal(query.temporal)
        self._unused_patterns(query)
        self._always_false(_merged_entities(query.patterns))

    def dependency(self, query: ast.DependencyQuery) -> None:
        self._header(query.header)
        entity_types: dict[str, str] = {}
        for node in query.nodes:
            seen = entity_types.get(node.variable)
            if seen is None:
                entity_types[node.variable] = node.entity_type
            elif seen != node.entity_type:
                self._emit(ERROR, "type-conflict",
                           f"variable {node.variable!r} used as both "
                           f"{seen} and {node.entity_type}", node)
            self._entity_constraints(node)
        for position, edge in enumerate(query.edges):
            left, right = query.nodes[position], query.nodes[position + 1]
            subject = left if edge.subject_side == "left" else right
            obj = right if edge.subject_side == "left" else left
            if subject.entity_type != "proc":
                self._emit(ERROR, "invalid-subject",
                           f"edge {position + 1}: event subjects must be "
                           f"processes, but the arrow makes "
                           f"{subject.variable!r} ({subject.entity_type}) "
                           f"the subject", edge)
            self._operations(edge, obj.entity_type)
        scope = _Scope(entity_types, set())
        for item in query.return_items:
            for node in ast.walk_expr(item.expr):
                if isinstance(node, ast.AggCall):
                    self._emit(ERROR, "aggregate-in-multievent",
                               "aggregates are only allowed in anomaly "
                               "queries (add 'window = ..., step = ...')",
                               node)
                elif isinstance(node, ast.VarRef):
                    self._ref(node, scope, "return clause")
        for key in query.sort_by:
            self._ref(key.expr, scope, "sort by")
        merged = {var: (etype, ()) for var, etype in entity_types.items()}
        for node in query.nodes:
            etype, cons = merged[node.variable]
            merged[node.variable] = (etype, tuple(
                list(cons) + [c for c in node.constraints if c not in cons]))
        self._always_false(merged)

    def anomaly(self, query: ast.AnomalyQuery) -> None:
        aliases = frozenset(item.alias for item in query.return_items
                            if item.alias is not None)
        scope = self._pattern_scope(query.patterns, aliases)
        self._header(query.header)
        has_aggregate = False
        for item in query.return_items:
            for node in ast.walk_expr(item.expr):
                if isinstance(node, ast.AggCall):
                    has_aggregate = True
                    self._aggregate(node, scope)
                elif isinstance(node, ast.VarRef):
                    self._ref(node, scope, "return clause")
        if not has_aggregate:
            span = None
            if query.return_items:
                span = self._span(query.return_items[0].expr)
            self._emit(ERROR, "missing-aggregate",
                       "anomaly queries must aggregate at least one value "
                       "(e.g. avg(evt.amount))", span=span)
        for ref in query.group_by:
            self._ref(ref, scope, "group by")
        if query.having is not None:
            self._having(query.having, scope)
        self._always_false(_merged_entities(query.patterns))

    # ------------------------------------------------------------------
    # Patterns and scopes
    # ------------------------------------------------------------------
    def _pattern_scope(self, patterns: tuple[ast.EventPattern, ...],
                       aliases: frozenset[str] = frozenset()) -> _Scope:
        event_vars: set[str] = set()
        entity_types: dict[str, str] = {}
        for pattern in patterns:
            if pattern.event_var in event_vars:
                self._emit(ERROR, "duplicate-event-var",
                           f"duplicate event variable "
                           f"{pattern.event_var!r}", pattern)
            event_vars.add(pattern.event_var)
            for entity in (pattern.subject, pattern.object):
                seen = entity_types.get(entity.variable)
                if seen is None:
                    entity_types[entity.variable] = entity.entity_type
                elif seen != entity.entity_type:
                    self._emit(ERROR, "type-conflict",
                               f"variable {entity.variable!r} used as "
                               f"both {seen} and {entity.entity_type}",
                               entity)
                self._entity_constraints(entity)
            if pattern.subject.entity_type != "proc":
                self._emit(ERROR, "invalid-subject",
                           f"event subjects must be processes, got "
                           f"{pattern.subject.entity_type!r} for "
                           f"{pattern.subject.variable!r}", pattern.subject)
            self._operations(pattern, pattern.object.entity_type)
        overlap = event_vars & set(entity_types)
        for pattern in patterns:
            if pattern.event_var in overlap:
                self._emit(ERROR, "name-conflict",
                           f"{pattern.event_var!r} is used for both an "
                           f"event and an entity", pattern)
                overlap.discard(pattern.event_var)
        return _Scope(entity_types, event_vars, aliases)

    def _operations(self, node: ast.EventPattern | ast.DependencyEdge,
                    object_type: str) -> None:
        allowed = OPERATIONS_BY_TYPE.get(object_type)
        if allowed is None:
            return
        op_spans = (self._spans.operation_spans(node)
                    if self._spans is not None else ())
        for position, operation in enumerate(node.operations):
            if operation in allowed:
                continue
            span = (op_spans[position] if position < len(op_spans)
                    else self._span(node))
            self._emit(ERROR, "unknown-operation",
                       f"operation {operation!r} is not valid for "
                       f"{object_type} events "
                       f"(valid: {', '.join(sorted(allowed))})", span=span)

    # ------------------------------------------------------------------
    # References and expressions
    # ------------------------------------------------------------------
    def _resolve_type(self, ref: ast.VarRef,
                      scope: _Scope) -> tuple[bool, type | None]:
        """(resolved?, python type) without emitting diagnostics."""
        if ref.variable in scope.event_vars:
            try:
                attribute = canonical_event_attribute(ref.attribute or "id")
            except DataModelError:
                return False, None
            return True, _EVENT_ATTR_TYPES.get(attribute)
        entity_type = scope.entity_types.get(ref.variable)
        if entity_type is None:
            return False, None
        if ref.attribute is None:
            attribute = DEFAULT_ATTRIBUTE[entity_type]
        else:
            try:
                attribute = canonical_attribute(entity_type, ref.attribute)
            except DataModelError:
                return False, None
        return True, _ENTITY_ATTR_TYPES[entity_type].get(attribute)

    def _ref(self, ref: ast.VarRef, scope: _Scope,
             clause: str) -> type | None:
        """Check one variable reference; returns its type when known."""
        if (ref.variable not in scope.event_vars
                and ref.variable not in scope.entity_types):
            self._emit(ERROR, "unbound-variable",
                       f"{clause} references unknown variable "
                       f"{ref.variable!r}", ref)
            return None
        if ref.variable in scope.event_vars:
            try:
                attribute = canonical_event_attribute(ref.attribute or "id")
            except DataModelError as exc:
                self._emit(ERROR, "unknown-attribute", str(exc), ref)
                return None
            return _EVENT_ATTR_TYPES.get(attribute)
        entity_type = scope.entity_types[ref.variable]
        if ref.attribute is None:
            return _ENTITY_ATTR_TYPES[entity_type].get(
                DEFAULT_ATTRIBUTE[entity_type])
        try:
            attribute = canonical_attribute(entity_type, ref.attribute)
        except DataModelError as exc:
            self._emit(ERROR, "unknown-attribute", str(exc), ref)
            return None
        return _ENTITY_ATTR_TYPES[entity_type].get(attribute)

    def _relation(self, relation: ast.AttributeRelation,
                  scope: _Scope) -> None:
        left = self._ref(relation.left, scope, "with clause")
        right = self._ref(relation.right, scope, "with clause")
        if left is None or right is None or _compatible(left, right):
            return
        detail = (f"{relation.left} is {left.__name__}, "
                  f"{relation.right} is {right.__name__}")
        if relation.op in ("=", "!="):
            outcome = "never" if relation.op == "=" else "always"
            self._emit(WARNING, "type-mismatch",
                       f"'{relation}' compares different types and "
                       f"{outcome} holds ({detail})", relation.right)
        else:
            self._emit(ERROR, "type-mismatch",
                       f"'{relation}' orders values of different types "
                       f"({detail})", relation.right)

    def _aggregate(self, call: ast.AggCall, scope: _Scope) -> None:
        if call.arg is None:
            return
        if call.func not in _NUMERIC_AGGREGATES:
            return
        resolved, kind = self._resolve_type(call.arg, scope)
        if resolved and kind is str:
            self._emit(ERROR, "type-mismatch",
                       f"{call.func}() needs a numeric attribute, "
                       f"{call.arg} is a string", call.arg)

    def _having(self, having: ast.Expr, scope: _Scope) -> None:
        for node in ast.walk_expr(having):
            if isinstance(node, ast.HistoryRef):
                if node.alias not in scope.aliases:
                    self._emit(ERROR, "unknown-history-alias",
                               f"having references unknown aggregate "
                               f"alias {node.alias!r}", node)
            elif isinstance(node, ast.AggCall):
                self._aggregate(node, scope)
            elif isinstance(node, ast.VarRef):
                if node.attribute is None and node.variable in scope.aliases:
                    continue
                self._ref(node, scope, "having")

    # ------------------------------------------------------------------
    # Header and constraint types
    # ------------------------------------------------------------------
    def _header(self, header: ast.QueryHeader) -> None:
        by_attr: dict[str, list[ast.Constraint]] = {}
        for constraint in header.constraints:
            try:
                attribute = canonical_event_attribute(
                    constraint.attribute or "")
            except DataModelError as exc:
                self._emit(ERROR, "unknown-attribute", str(exc), constraint)
                continue
            self._constraint_types(constraint, _EVENT_ATTR_TYPES[attribute],
                                   f"events.{attribute}")
            by_attr.setdefault(attribute, []).append(constraint)
        for attribute, constraints in by_attr.items():
            self._contradictions(f"global constraint {attribute!r}",
                                 _EVENT_ATTR_TYPES[attribute], constraints)

    def _entity_constraints(self, entity: ast.EntityPattern) -> None:
        types = _ENTITY_ATTR_TYPES.get(entity.entity_type, {})
        for constraint in entity.constraints:
            attribute = constraint.attribute
            if attribute is None:
                attribute = DEFAULT_ATTRIBUTE.get(entity.entity_type)
            kind = int if attribute == "agentid" else types.get(attribute)
            self._constraint_types(constraint, kind,
                                   f"{entity.variable}.{attribute}")

    def _constraint_types(self, constraint: ast.Constraint,
                          kind: type | None, what: str) -> None:
        if kind is None:
            return
        op, value = constraint.op, constraint.value
        if op == "like":
            if kind is not str:
                self._emit(ERROR, "type-mismatch",
                           f"'like' needs a string attribute, {what} is "
                           f"{kind.__name__}", constraint)
            return
        if op == "in":
            mismatched = [v for v in value
                          if not _compatible(kind, type(v))]
            if mismatched:
                self._emit(WARNING, "type-mismatch",
                           f"'in' list for {what} ({kind.__name__}) "
                           f"contains {type(mismatched[0]).__name__} "
                           f"values that can never match", constraint)
            return
        if _compatible(kind, type(value)):
            return
        if op in ("=", "!="):
            outcome = ("never matches" if op == "="
                       else "matches every value")
            self._emit(WARNING, "type-mismatch",
                       f"comparing {what} ({kind.__name__}) with "
                       f"{type(value).__name__} {value!r} {outcome}",
                       constraint)
        else:
            self._emit(ERROR, "type-mismatch",
                       f"ordering {what} ({kind.__name__}) against "
                       f"{type(value).__name__} {value!r} can never hold",
                       constraint)

    # ------------------------------------------------------------------
    # Always-false merged constraint sets
    # ------------------------------------------------------------------
    def _always_false(
            self,
            merged: dict[str, tuple[str, tuple[ast.Constraint, ...]]],
    ) -> None:
        for variable, (entity_type, constraints) in merged.items():
            types = _ENTITY_ATTR_TYPES.get(entity_type, {})
            by_attr: dict[str, list[ast.Constraint]] = {}
            for constraint in constraints:
                attribute = constraint.attribute
                if attribute is None:
                    attribute = DEFAULT_ATTRIBUTE.get(entity_type)
                by_attr.setdefault(attribute or "", []).append(constraint)
            for attribute, group in by_attr.items():
                kind = int if attribute == "agentid" else types.get(attribute)
                self._contradictions(f"{variable}.{attribute}", kind, group)

    def _contradictions(self, what: str, kind: type | None,
                        constraints: list[ast.Constraint]) -> None:
        """Merged-constraint contradictions on one (variable, attribute)."""
        eqs = [c for c in constraints if c.op == "="]
        if len(eqs) > 1:
            first = eqs[0].value
            for other in eqs[1:]:
                if other.value != first:
                    self._emit(WARNING, "always-false",
                               f"conflicting equality constraints on "
                               f"{what}: {first!r} vs {other.value!r}",
                               other)
                    return
        in_sets = [c for c in constraints if c.op == "in"]
        for eq in eqs:
            for member in in_sets:
                if eq.value not in member.value:
                    self._emit(WARNING, "always-false",
                               f"{what} = {eq.value!r} is outside the "
                               f"'in' set {member.value!r}", member)
                    return
        for eq in eqs:
            for neq in constraints:
                if neq.op == "!=" and neq.value == eq.value:
                    self._emit(WARNING, "always-false",
                               f"{what} is required to both equal and "
                               f"differ from {eq.value!r}", neq)
                    return
        if len(in_sets) > 1:
            common = set(in_sets[0].value)
            for member in in_sets[1:]:
                common &= set(member.value)
                if not common:
                    self._emit(WARNING, "always-false",
                               f"'in' sets for {what} have no value in "
                               f"common", member)
                    return
        self._empty_range(what, kind, constraints)

    def _empty_range(self, what: str, kind: type | None,
                     constraints: list[ast.Constraint]) -> None:
        if kind is None:
            return
        comparable = ((int, float) if kind in (int, float)
                      else (kind,))
        lo: object = -math.inf if kind is not str else None
        hi: object = math.inf if kind is not str else None
        lo_strict = hi_strict = False
        last: ast.Constraint | None = None
        for constraint in constraints:
            op, value = constraint.op, constraint.value
            if op not in ("<", "<=", ">", ">=", "="):
                continue
            if not isinstance(value, comparable):
                continue  # cross-type, already reported as type-mismatch
            if op in (">", ">=", "="):
                strict = op == ">"
                if lo is None or value > lo or (value == lo and strict):
                    lo, lo_strict, last = value, strict, constraint
            if op in ("<", "<=", "="):
                strict = op == "<"
                if hi is None or value < hi or (value == hi and strict):
                    hi, hi_strict, last = value, strict, constraint
            if lo is not None and hi is not None:
                if lo > hi or (lo == hi and (lo_strict or hi_strict)):
                    self._emit(WARNING, "always-false",
                               f"constraints on {what} require an empty "
                               f"range (no value is {'>' if lo_strict else '>='} "
                               f"{lo!r} and {'<' if hi_strict else '<='} "
                               f"{hi!r})", last)
                    return

    # ------------------------------------------------------------------
    # Temporal satisfiability
    # ------------------------------------------------------------------
    def _temporal(self, temporal: tuple[ast.TemporalRelation, ...]) -> None:
        if not temporal:
            return
        # The scheduler's own closure: presence of (u, v) means u must
        # strictly precede v with v.ts - u.ts <= d over the tightest
        # chain.  A key (x, x) — any cycle — or a derived delta of zero
        # makes strict precedence impossible: 0 < delta <= 0.
        from repro.engine.planner import temporal_closure
        normalized = tuple(rel.normalized() for rel in temporal)
        closure = temporal_closure(normalized)
        cyclic = {u for (u, v) in closure if u == v}
        collapsed = {pair for pair, delta in closure.items() if delta <= 0}
        if not cyclic and not collapsed:
            return
        anchor: ast.TemporalRelation | None = None
        for original, rel in zip(temporal, normalized):
            if rel.left == rel.right:
                anchor = original
                break
            if rel.left in cyclic or rel.right in cyclic:
                anchor = original
                break
            if closure.get((rel.left, rel.right), math.inf) <= 0:
                anchor = original
                break
        if cyclic:
            detail = (f"the 'before' constraints form a cycle through "
                      f"{', '.join(sorted(cyclic))}")
        else:
            pair = sorted(collapsed)[0]
            detail = (f"{pair[0]} must precede {pair[1]} by more than 0 "
                      f"seconds and at most 0 seconds")
        self._emit(ERROR, "unsatisfiable-temporal",
                   f"temporal constraints are unsatisfiable: {detail}",
                   anchor if anchor is not None else temporal[0])

    # ------------------------------------------------------------------
    # Unused patterns
    # ------------------------------------------------------------------
    def _unused_patterns(self, query: ast.MultieventQuery) -> None:
        if len(query.patterns) < 2:
            return
        referenced: set[str] = set()
        for item in query.return_items:
            for node in ast.walk_expr(item.expr):
                if isinstance(node, ast.VarRef):
                    referenced.add(node.variable)
        for key in query.sort_by:
            referenced.add(key.expr.variable)
        for relation in query.relations:
            referenced.add(relation.left.variable)
            referenced.add(relation.right.variable)
        temporal_vars = {var for rel in query.temporal
                         for var in (rel.left, rel.right)}
        counts: dict[str, int] = {}
        for pattern in query.patterns:
            for var in {pattern.subject.variable, pattern.object.variable}:
                counts[var] = counts.get(var, 0) + 1
        for pattern in query.patterns:
            if (pattern.event_var in referenced
                    or pattern.event_var in temporal_vars):
                continue
            entity_vars = {pattern.subject.variable,
                           pattern.object.variable}
            if any(var in referenced or counts.get(var, 0) > 1
                   for var in entity_vars):
                continue
            self._emit(WARNING, "unused-pattern",
                       f"pattern {pattern.event_var!r} does not constrain "
                       f"the result: it is never returned, sorted on, "
                       f"temporally related, or joined through a shared "
                       f"variable", pattern)


def _merged_entities(
        patterns: tuple[ast.EventPattern, ...],
) -> dict[str, tuple[str, tuple[ast.Constraint, ...]]]:
    """Union bracket constraints per variable (constraint chaining).

    Mirrors the planner's merge so always-false analysis sees the same
    constraint set each scan will evaluate.
    """
    merged: dict[str, tuple[str, list[ast.Constraint]]] = {}
    for pattern in patterns:
        for entity in (pattern.subject, pattern.object):
            entry = merged.setdefault(entity.variable,
                                      (entity.entity_type, []))
            if entry[0] != entity.entity_type:
                continue  # type conflict, reported elsewhere
            for constraint in entity.constraints:
                if constraint not in entry[1]:
                    entry[1].append(constraint)
    return {var: (etype, tuple(cons))
            for var, (etype, cons) in merged.items()}
