"""Token definitions for the AIQL language."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenType(Enum):
    IDENT = auto()
    KEYWORD = auto()
    STRING = auto()
    NUMBER = auto()

    LPAREN = auto()
    RPAREN = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    COMMA = auto()
    DOT = auto()
    COLON = auto()

    EQ = auto()          # =
    NEQ = auto()         # !=
    LT = auto()          # <
    LE = auto()          # <=
    GT = auto()          # >
    GE = auto()          # >=
    PLUS = auto()        # +
    MINUS = auto()       # -
    STAR = auto()        # *
    SLASH = auto()       # /
    PERCENT = auto()     # % (modulo in having expressions)
    OROR = auto()        # || (operation alternation)
    ARROW_RIGHT = auto() # ->
    ARROW_LEFT = auto()  # <-

    EOF = auto()


# Reserved words, matched case-insensitively.  Entity types and clause
# introducers are keywords; aggregate function names stay plain identifiers
# and are resolved by the parser so new aggregates need no lexer change.
KEYWORDS = frozenset({
    "at", "from", "to", "as", "with", "before", "after", "within",
    "return", "distinct", "group", "by", "having", "window", "step",
    "forward", "backward", "and", "or", "not", "in", "like",
    "proc", "file", "ip",
    "sort", "top", "asc", "desc",
})

ENTITY_KEYWORDS = frozenset({"proc", "file", "ip"})

COMPARISON_TOKENS = frozenset({
    TokenType.EQ, TokenType.NEQ, TokenType.LT, TokenType.LE,
    TokenType.GT, TokenType.GE,
})


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source position (1-based line/col)."""

    type: TokenType
    text: str
    line: int
    col: int
    value: object = None

    @property
    def keyword(self) -> str | None:
        """Lower-cased keyword text, or None for non-keywords."""
        if self.type is TokenType.KEYWORD:
            return self.text.lower()
        return None

    def __str__(self) -> str:
        return f"{self.type.name}({self.text!r})@{self.line}:{self.col}"
