"""Syntax highlighting for AIQL queries (web UI feature, §3).

Two renderers share one token classification: ANSI escape codes for the CLI
REPL and ``<span class="...">`` markup for the web UI.  Both operate on the
raw source so whitespace and comments survive verbatim.
"""

from __future__ import annotations

import html

from repro.lang.lexer import Lexer
from repro.lang.tokens import ENTITY_KEYWORDS, Token, TokenType

# Classification names shared by both renderers (and the web UI CSS).
KEYWORD = "kw"
ENTITY = "entity"
STRING = "str"
NUMBER = "num"
OPERATOR = "op"
IDENT = "ident"
COMMENT = "comment"

_ANSI = {
    KEYWORD: "\x1b[1;34m",   # bold blue
    ENTITY: "\x1b[1;35m",    # bold magenta
    STRING: "\x1b[32m",      # green
    NUMBER: "\x1b[36m",      # cyan
    OPERATOR: "\x1b[33m",    # yellow
    IDENT: "",
    COMMENT: "\x1b[90m",     # grey
}
_ANSI_RESET = "\x1b[0m"

_OPERATOR_TYPES = {
    TokenType.EQ, TokenType.NEQ, TokenType.LT, TokenType.LE, TokenType.GT,
    TokenType.GE, TokenType.PLUS, TokenType.MINUS, TokenType.STAR,
    TokenType.SLASH, TokenType.PERCENT, TokenType.OROR,
    TokenType.ARROW_RIGHT, TokenType.ARROW_LEFT,
}


def classify(token: Token) -> str:
    """Map a token to its highlight class."""
    if token.type is TokenType.KEYWORD:
        return ENTITY if token.text.lower() in ENTITY_KEYWORDS else KEYWORD
    if token.type is TokenType.STRING:
        return STRING
    if token.type is TokenType.NUMBER:
        return NUMBER
    if token.type in _OPERATOR_TYPES:
        return OPERATOR
    return IDENT


def _spans(source: str) -> list[tuple[str, str]]:
    """Split source into (class, text) spans, preserving all characters.

    Comments and whitespace between tokens are emitted as COMMENT /
    untagged spans by scanning the gaps between token positions.  Source
    that does not lex (the highlighter also runs on *invalid* queries,
    e.g. in error payloads) degrades to one untagged span.
    """
    from repro.errors import ReproError

    lexer = Lexer(source)
    try:
        tokens = lexer.tokens()
    except ReproError:
        return [("", source)]
    # Recover byte offsets from line/col positions.
    line_starts = [0]
    for index, ch in enumerate(source):
        if ch == "\n":
            line_starts.append(index + 1)
    spans: list[tuple[str, str]] = []
    cursor = 0
    for token in tokens:
        if token.type is TokenType.EOF:
            break
        offset = line_starts[token.line - 1] + token.col - 1
        if offset > cursor:
            gap = source[cursor:offset]
            spans.extend(_classify_gap(gap))
        if token.type is TokenType.STRING:
            raw_len = _raw_string_length(source, offset)
            text = source[offset:offset + raw_len]
        else:
            text = token.text
        spans.append((classify(token), text))
        cursor = offset + len(text)
    if cursor < len(source):
        spans.extend(_classify_gap(source[cursor:]))
    return spans


def _raw_string_length(source: str, start: int) -> int:
    index = start + 1
    while index < len(source):
        if source[index] == "\\" and index + 1 < len(source):
            index += 2
            continue
        if source[index] == '"':
            return index - start + 1
        index += 1
    return len(source) - start


def _classify_gap(gap: str) -> list[tuple[str, str]]:
    """Split inter-token text into comments and plain whitespace."""
    spans: list[tuple[str, str]] = []
    rest = gap
    while rest:
        comment_at = rest.find("//")
        if comment_at == -1:
            spans.append(("", rest))
            break
        if comment_at > 0:
            spans.append(("", rest[:comment_at]))
        end = rest.find("\n", comment_at)
        if end == -1:
            spans.append((COMMENT, rest[comment_at:]))
            break
        spans.append((COMMENT, rest[comment_at:end]))
        rest = rest[end:]
    return spans


def render_span(source: str, line: int, col: int, length: int = 1) -> str:
    """Snippet + caret underline for a source range (1-based).

    The diagnostic rendering shared by the semantic analyzer and the
    ``repro lint`` command: the offending line, then ``^~~~`` underlining
    exactly the token range a diagnostic points at (the same caret
    convention :meth:`repro.lang.errors.AiqlSyntaxError.render` uses,
    extended to a range).
    """
    lines = source.splitlines()
    snippet = lines[line - 1] if 0 < line <= len(lines) else ""
    width = max(length, 1)
    if col <= len(snippet):
        width = min(width, len(snippet) - col + 1)
    underline = " " * (col - 1) + "^" + "~" * (width - 1)
    return f"  {snippet}\n  {underline}"


def highlight_ansi(source: str) -> str:
    """Colorize a query for terminal display."""
    out: list[str] = []
    for cls, text in _spans(source):
        color = _ANSI.get(cls, "")
        if color:
            out.append(f"{color}{text}{_ANSI_RESET}")
        else:
            out.append(text)
    return "".join(out)


def highlight_html(source: str) -> str:
    """Render a query as HTML spans (classes: kw, entity, str, num, op)."""
    out: list[str] = []
    for cls, text in _spans(source):
        escaped = html.escape(text)
        if cls:
            out.append(f'<span class="aiql-{cls}">{escaped}</span>')
        else:
            out.append(escaped)
    return "".join(out)
