"""Typed abstract syntax trees for the three AIQL query classes.

The parser produces exactly one of :class:`MultieventQuery`,
:class:`DependencyQuery`, or :class:`AnomalyQuery`; all three share the
global clauses (time window and spatial/attribute constraints) through
:class:`QueryHeader`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.model.timeutil import Window

# ---------------------------------------------------------------------------
# Constraints and entity/event patterns
# ---------------------------------------------------------------------------

# Comparison operators usable in constraints.  ``like`` is what a bare
# string constraint with wildcards desugars to.
CONSTRAINT_OPS = ("=", "!=", "<", "<=", ">", ">=", "like", "in")


@dataclass(frozen=True, slots=True)
class Constraint:
    """One attribute constraint inside ``[...]`` or a global clause.

    ``attribute`` is None for bare default-attribute string constraints
    (``["%cmd.exe"]``); the planner resolves it per entity type.
    """

    attribute: str | None
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in CONSTRAINT_OPS:
            raise ValueError(f"bad constraint operator: {self.op!r}")


@dataclass(frozen=True, slots=True)
class EntityPattern:
    """``proc p1["%cmd.exe", agentid = 1]`` — a typed, constrained variable."""

    entity_type: str
    variable: str
    constraints: tuple[Constraint, ...] = ()


@dataclass(frozen=True, slots=True)
class EventPattern:
    """``subj op1 || op2 obj as evt`` — one event pattern declaration."""

    subject: EntityPattern
    operations: tuple[str, ...]
    object: EntityPattern
    event_var: str


@dataclass(frozen=True, slots=True)
class TemporalRelation:
    """``evt1 before evt2 [within 5 min]`` in a ``with`` clause."""

    left: str
    relation: str  # "before" | "after"
    right: str
    within: float | None = None  # seconds

    def normalized(self) -> "TemporalRelation":
        """Rewrite ``after`` as the symmetric ``before``."""
        if self.relation == "before":
            return self
        return TemporalRelation(self.right, "before", self.left, self.within)


@dataclass(frozen=True, slots=True)
class AttributeRelation:
    """``p1.user = p2.user`` in a ``with`` clause.

    An *explicit* attribute relationship between two variables (entity or
    event), complementing the implicit relationships expressed by shared
    variables.  The full AIQL system (ATC '18) supports these alongside
    temporal relations.
    """

    left: "VarRef"
    op: str  # = != < <= > >=
    right: "VarRef"

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


# ---------------------------------------------------------------------------
# Expressions (return items and having clauses)
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class VarRef:
    """``p1`` or ``p1.exe_name`` or ``evt.amount``."""

    variable: str
    attribute: str | None = None

    def __str__(self) -> str:
        if self.attribute is None:
            return self.variable
        return f"{self.variable}.{self.attribute}"


@dataclass(frozen=True, slots=True)
class Literal:
    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


@dataclass(frozen=True, slots=True)
class AggCall:
    """``avg(evt.amount)`` — an aggregate over matched events."""

    func: str
    arg: VarRef | None  # None for count(*) style counts

    def __str__(self) -> str:
        inner = str(self.arg) if self.arg is not None else "*"
        return f"{self.func}({inner})"


@dataclass(frozen=True, slots=True)
class HistoryRef:
    """``amt[1]`` — the aliased aggregate, one sliding window back."""

    alias: str
    offset: int

    def __str__(self) -> str:
        return f"{self.alias}[{self.offset}]"


@dataclass(frozen=True, slots=True)
class BinOp:
    op: str  # + - * / % = != < <= > >= and or
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, slots=True)
class NotOp:
    operand: "Expr"

    def __str__(self) -> str:
        return f"(not {self.operand})"


Expr = Union[VarRef, Literal, AggCall, HistoryRef, BinOp, NotOp]


@dataclass(frozen=True, slots=True)
class ReturnItem:
    """One projection in a ``return`` clause, with an optional alias."""

    expr: Expr
    alias: str | None = None

    @property
    def name(self) -> str:
        """Result-column name: explicit alias or the expression text."""
        return self.alias if self.alias is not None else str(self.expr)


@dataclass(frozen=True, slots=True)
class SortKey:
    """One key of a ``sort by`` clause (ATC-AIQL result management)."""

    expr: "VarRef"
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.expr} desc" if self.descending else str(self.expr)


# ---------------------------------------------------------------------------
# Query classes
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class QueryHeader:
    """Shared global clauses: time window + global attribute constraints."""

    window: Window | None = None
    constraints: tuple[Constraint, ...] = ()

    def agentids(self) -> set[int] | None:
        """Agent ids pinned by equality/in constraints, or None if unbound."""
        pinned: set[int] | None = None
        for constraint in self.constraints:
            if constraint.attribute != "agentid":
                continue
            if constraint.op == "=":
                values = {int(constraint.value)}  # type: ignore[arg-type]
            elif constraint.op == "in":
                values = {int(v) for v in constraint.value}  # type: ignore
            else:
                continue
            pinned = values if pinned is None else (pinned & values)
        return pinned


@dataclass(frozen=True, slots=True)
class MultieventQuery:
    """§2.2.1 — event patterns + temporal/attribute relationships."""

    header: QueryHeader
    patterns: tuple[EventPattern, ...]
    temporal: tuple[TemporalRelation, ...]
    return_items: tuple[ReturnItem, ...]
    distinct: bool = False
    relations: tuple[AttributeRelation, ...] = ()
    sort_by: tuple[SortKey, ...] = ()
    top: int | None = None

    kind = "multievent"


@dataclass(frozen=True, slots=True)
class DependencyEdge:
    """One edge of a dependency path.

    ``subject_side`` records the arrow orientation: ``"left"`` for
    ``X ->[op] Y`` (X is the event subject) and ``"right"`` for
    ``X <-[op] Y`` (Y is the subject acting on X).
    """

    operations: tuple[str, ...]
    subject_side: str  # "left" | "right"


@dataclass(frozen=True, slots=True)
class DependencyQuery:
    """§2.2.2 — a forward/backward event path for causality tracking."""

    header: QueryHeader
    direction: str  # "forward" | "backward"
    nodes: tuple[EntityPattern, ...]
    edges: tuple[DependencyEdge, ...]
    return_items: tuple[ReturnItem, ...]
    distinct: bool = False
    sort_by: tuple[SortKey, ...] = ()
    top: int | None = None

    kind = "dependency"

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.edges) + 1:
            raise ValueError("a dependency path needs n+1 nodes for n edges")


@dataclass(frozen=True, slots=True)
class SlidingWindowSpec:
    """``window = 1 min, step = 10 sec``."""

    width: float  # seconds
    step: float   # seconds


@dataclass(frozen=True, slots=True)
class AnomalyQuery:
    """§2.2.3 — sliding windows + aggregation + historical access."""

    header: QueryHeader
    window_spec: SlidingWindowSpec
    patterns: tuple[EventPattern, ...]
    return_items: tuple[ReturnItem, ...]
    group_by: tuple[VarRef, ...] = ()
    having: Expr | None = None

    kind = "anomaly"


Query = Union[MultieventQuery, DependencyQuery, AnomalyQuery]


def walk_expr(expr: Expr):
    """Yield every node of an expression tree (pre-order)."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, NotOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, AggCall) and expr.arg is not None:
        yield expr.arg


def expr_aggregates(expr: Expr) -> list[AggCall]:
    """All aggregate calls appearing in an expression."""
    return [node for node in walk_expr(expr) if isinstance(node, AggCall)]


def expr_history_refs(expr: Expr) -> list[HistoryRef]:
    """All historical aggregate accesses appearing in an expression."""
    return [node for node in walk_expr(expr) if isinstance(node, HistoryRef)]
