"""Source spans: where an AST node came from in the query text.

The parser's ASTs are frozen value objects with no position information —
two structurally equal ``VarRef("p", None)`` nodes from different queries
compare equal, so positions cannot live on the nodes without changing
their identity semantics (and every golden file built on them).  Instead
the parser records positions in a :class:`SourceMap` side table keyed on
node *identity*, populated only when a caller asks for spans
(:func:`repro.lang.parser.parse_with_spans`); the default :func:`parse`
path pays nothing.

A :class:`Span` is a 1-based ``(line, col)`` plus the token range's
length on that line — exactly what the caret renderer in
:mod:`repro.lang.highlight` underlines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.tokens import Token, TokenType


@dataclass(frozen=True, slots=True)
class Span:
    """A contiguous range of source text on one line (1-based)."""

    line: int
    col: int
    length: int = 1

    def __str__(self) -> str:
        return f"line {self.line}, column {self.col}"


def token_length(source: str, token: Token) -> int:
    """Length of a token's raw source text (quotes/escapes included)."""
    if token.type is TokenType.STRING:
        offset = _offset(source, token.line, token.col)
        if 0 <= offset < len(source) and source[offset] == '"':
            return _raw_string_length(source, offset)
        return len(token.text) + 2
    return max(len(token.text), 1)


def _offset(source: str, line: int, col: int) -> int:
    """Byte offset of a 1-based (line, col) position."""
    start = 0
    for _skip in range(line - 1):
        newline = source.find("\n", start)
        if newline == -1:
            break
        start = newline + 1
    return start + col - 1


def _raw_string_length(source: str, start: int) -> int:
    index = start + 1
    while index < len(source):
        if source[index] == "\\" and index + 1 < len(source):
            index += 2
            continue
        if source[index] == '"':
            return index - start + 1
        index += 1
    return len(source) - start


class SourceMap:
    """Identity-keyed side table of AST-node source spans.

    Holds a strong reference to every noted node so ``id()`` keys stay
    unique for the map's lifetime (a recycled id after garbage
    collection would silently alias two nodes).
    """

    def __init__(self, source: str) -> None:
        self.source = source
        self._spans: dict[int, Span] = {}
        self._operation_spans: dict[int, tuple[Span, ...]] = {}
        self._nodes: list[object] = []

    def note(self, node: object, span: Span) -> None:
        key = id(node)
        if key not in self._spans:
            self._spans[key] = span
            self._nodes.append(node)

    def span(self, node: object) -> Span | None:
        return self._spans.get(id(node))

    def note_operations(self, node: object, spans: tuple[Span, ...]) -> None:
        key = id(node)
        if key not in self._operation_spans:
            self._operation_spans[key] = spans
            self._nodes.append(node)

    def operation_spans(self, node: object) -> tuple[Span, ...]:
        """Per-operation spans of a pattern/edge's ``op1 || op2`` list."""
        return self._operation_spans.get(id(node), ())
