"""Scenario assembly: agents collecting background + attack event streams.

A :class:`Scenario` plays the role of the paper's deployed collection
agents: it produces the full, timestamp-ordered event stream of the
enterprise over a time window, with an APT attack injected into the benign
bulk.  Everything is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.model.events import Event
from repro.model.timeutil import Window
from repro.storage.backend import StorageBackend
from repro.telemetry.apt import inject_apt
from repro.telemetry.apt_case2 import inject_apt_case2
from repro.telemetry.background import BackgroundWorkload, WorkloadConfig
from repro.telemetry.enterprise import Enterprise, demo_enterprise
from repro.telemetry.factory import EventFactory

# The day the simulated attack happens; catalogs use (at "06/10/2026").
SCENARIO_DATE = "06/10/2026"
ATTACK_START_OFFSET = 10 * 3600.0  # attack begins at 10:00


@dataclass
class Scenario:
    """One reproducible enterprise day with an injected attack."""

    enterprise: Enterprise
    window: Window
    attack: Callable
    attack_start: float
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    _cache: list[Event] | None = field(default=None, repr=False)
    _trace: object | None = field(default=None, repr=False)

    def events(self) -> list[Event]:
        """The full ordered stream (generated once, then cached)."""
        if self._cache is None:
            factory = EventFactory()
            background = BackgroundWorkload(self.enterprise, self.window,
                                            self.workload)
            events = background.generate(factory)
            trace = self.attack(factory, self.enterprise, self.attack_start)
            self._trace = trace
            events.extend(trace.events)
            events.sort(key=lambda evt: (evt.ts, evt.id))
            self._cache = events
        return self._cache

    @property
    def trace(self):
        """The attack trace (step timestamps + raw attack events)."""
        self.events()
        return self._trace

    def load(self, store: StorageBackend) -> int:
        """Ingest the scenario into a store; returns the event count."""
        return store.ingest(self.events())

    @property
    def attack_event_count(self) -> int:
        return len(self.trace.events)  # type: ignore[union-attr]


def _scenario_window(date_text: str = SCENARIO_DATE) -> Window:
    return Window.for_day(date_text)


def build_demo_scenario(events_per_host: int = 2000, seed: int = 7,
                        extra_clients: int = 0,
                        date_text: str = SCENARIO_DATE) -> Scenario:
    """The Figure 2 / Figure 4 workload: the five-step demo APT."""
    window = _scenario_window(date_text)
    return Scenario(
        enterprise=demo_enterprise(extra_clients),
        window=window,
        attack=inject_apt,
        attack_start=window.start + ATTACK_START_OFFSET,
        workload=WorkloadConfig(events_per_host=events_per_host, seed=seed))


def build_case2_scenario(events_per_host: int = 2000, seed: int = 11,
                         extra_clients: int = 0,
                         date_text: str = SCENARIO_DATE) -> Scenario:
    """The Figure 5 workload: the phishing-initiated APT case study."""
    window = _scenario_window(date_text)
    return Scenario(
        enterprise=demo_enterprise(extra_clients),
        window=window,
        attack=inject_apt_case2,
        attack_start=window.start + ATTACK_START_OFFSET,
        workload=WorkloadConfig(events_per_host=events_per_host, seed=seed))
