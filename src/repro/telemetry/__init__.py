"""Simulated enterprise telemetry: hosts, benign workloads, APT attacks."""

from repro.telemetry.collector import (SCENARIO_DATE, Scenario,
                                       build_case2_scenario,
                                       build_demo_scenario)
from repro.telemetry.enterprise import (ATTACKER_IP, Enterprise, Host,
                                        demo_enterprise)
from repro.telemetry.factory import EventFactory

__all__ = [
    "SCENARIO_DATE", "Scenario", "build_case2_scenario",
    "build_demo_scenario", "ATTACKER_IP", "Enterprise", "Host",
    "demo_enterprise", "EventFactory",
]
