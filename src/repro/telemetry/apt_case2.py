"""The second APT case study (Figure 5's workload, from the ATC paper).

A phishing-initiated intrusion in five phases, distinct from the demo
attack so the two benchmark workloads exercise different query shapes:

  c1 Initial Compromise — phishing attachment executed on the client
  c2 Command & Control  — stager download, C2 beaconing, host recon
  c3 Lateral Movement   — SSH pivot to the web server, beacon implant
  c4 Data Harvesting    — credential and database harvesting, staging
  c5 Exfiltration       — multi-channel upload to the drop zone + cleanup

Artifact names are exported for the Figure 5 query catalog and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.events import Event
from repro.model.timeutil import SECONDS_PER_MINUTE
from repro.telemetry.enterprise import (Enterprise, LINUX_WEB_SERVER,
                                        WINDOWS_CLIENT)
from repro.telemetry.factory import EventFactory

# Attack infrastructure.
C2_IP = "198.51.100.77"
DROPZONE_IP = "198.51.100.88"

# c1 artifacts.
PHISH_ATTACHMENT = r"C:\Users\alice\Downloads\invoice_2026.doc.exe"
DROPPER = "invoice_2026.doc.exe"

# c2 artifacts.
STAGER_FILE = r"C:\Users\alice\AppData\Roaming\winupd.exe"
STAGER = "winupd.exe"
RECON_TOOLS = ("whoami.exe", "ipconfig.exe", "net.exe", "tasklist.exe")
RECON_OUTPUT = r"C:\Users\alice\AppData\Roaming\recon.txt"
HOSTS_FILE = r"C:\Windows\System32\drivers\etc\hosts"

# c3 artifacts.
BEACON_FILE = "/tmp/.x/beacon"
BEACON = "beacon"

# c4 artifacts.
SHADOW_FILE = "/etc/shadow"
PASSWD_FILE = "/etc/passwd"
MYSQLDUMP = "mysqldump"
DB_DUMP_SQL = "/tmp/.x/db_dump.sql"
STAGE_TAR = "/tmp/.x/stage.tar.gz"
CLIENT_STAGE = r"C:\Users\alice\AppData\Roaming\stage.zip"
BROWSER_CREDS = r"C:\Users\alice\AppData\Local\Chrome\Login Data"

# Phase offsets from attack start (seconds).
PHASE_OFFSETS = {
    "c1": 0.0,
    "c2": 5 * SECONDS_PER_MINUTE,
    "c3": 20 * SECONDS_PER_MINUTE,
    "c4": 35 * SECONDS_PER_MINUTE,
    "c5": 50 * SECONDS_PER_MINUTE,
}


@dataclass
class Apt2Trace:
    events: list[Event] = field(default_factory=list)
    phase_times: dict[str, float] = field(default_factory=dict)


def inject_apt_case2(factory: EventFactory, enterprise: Enterprise,
                     start_ts: float) -> Apt2Trace:
    """Emit the full phishing-APT attack starting at ``start_ts``."""
    trace = Apt2Trace()
    client = enterprise.one_by_role(WINDOWS_CLIENT)
    web = enterprise.one_by_role(LINUX_WEB_SERVER)
    emit = trace.events.append

    # ------------------------------------------------------------------
    # c1: phishing attachment saved and executed
    # ------------------------------------------------------------------
    t = start_ts + PHASE_OFFSETS["c1"]
    trace.phase_times["c1"] = t
    outlook = factory.process(client, "outlook.exe", user="alice")
    attachment = factory.file(client, PHISH_ATTACHMENT, owner="alice")
    emit(factory.event(t, outlook, "write", attachment, amount=245760))
    explorer = factory.process(client, "explorer.exe", user="alice")
    dropper = factory.process(client, DROPPER, user="alice",
                              start_time=t + 30)
    emit(factory.event(t + 30, explorer, "start", dropper))
    emit(factory.event(t + 31, dropper, "read", attachment, amount=245760))

    # ------------------------------------------------------------------
    # c2: stager download, C2 channel, host reconnaissance
    # ------------------------------------------------------------------
    t = start_ts + PHASE_OFFSETS["c2"]
    trace.phase_times["c2"] = t
    c2_conn = factory.connection(client, C2_IP, 443, src_port=49666)
    emit(factory.event(t, dropper, "connect", c2_conn))
    emit(factory.event(t + 2, dropper, "read", c2_conn, amount=917504))
    stager_file = factory.file(client, STAGER_FILE, owner="alice")
    emit(factory.event(t + 5, dropper, "write", stager_file,
                       amount=917504))
    stager = factory.process(client, STAGER, user="alice",
                             start_time=t + 10)
    emit(factory.event(t + 10, dropper, "start", stager))
    emit(factory.event(t + 12, stager, "connect", c2_conn))
    # Beacon heartbeats (low and slow).
    for index in range(10):
        emit(factory.event(t + 20 + index * 30, stager, "write", c2_conn,
                           amount=128))
    cmd = factory.process(client, "cmd.exe", user="alice",
                          start_time=t + 60)
    emit(factory.event(t + 60, stager, "start", cmd))
    recon_out = factory.file(client, RECON_OUTPUT, owner="alice")
    for index, tool_name in enumerate(RECON_TOOLS):
        tool = factory.process(client, tool_name, user="alice",
                               start_time=t + 70 + index * 15)
        emit(factory.event(t + 70 + index * 15, cmd, "start", tool))
        emit(factory.event(t + 72 + index * 15, tool, "write", recon_out,
                           amount=4096))
    hosts = factory.file(client, HOSTS_FILE)
    emit(factory.event(t + 140, stager, "read", hosts, amount=1024))
    emit(factory.event(t + 150, stager, "read", recon_out, amount=16384))
    emit(factory.event(t + 155, stager, "write", c2_conn, amount=16384))

    # ------------------------------------------------------------------
    # c3: lateral movement to the web server via SSH
    # ------------------------------------------------------------------
    t = start_ts + PHASE_OFFSETS["c3"]
    trace.phase_times["c3"] = t
    sshd = factory.process(web, "sshd", user="root")
    emit(factory.event(t, stager, "connect", sshd))
    shell = factory.process(web, "bash", user="ops", start_time=t + 5)
    emit(factory.event(t + 5, sshd, "start", shell))
    beacon_file = factory.file(web, BEACON_FILE, owner="ops")
    emit(factory.event(t + 20, shell, "write", beacon_file, amount=327680))
    beacon = factory.process(web, BEACON, user="ops", start_time=t + 25,
                             cmdline=BEACON_FILE)
    emit(factory.event(t + 25, shell, "start", beacon))
    emit(factory.event(t + 26, beacon, "execute", beacon_file))

    # ------------------------------------------------------------------
    # c4: harvesting on both hosts
    # ------------------------------------------------------------------
    t = start_ts + PHASE_OFFSETS["c4"]
    trace.phase_times["c4"] = t
    passwd = factory.file(web, PASSWD_FILE)
    shadow = factory.file(web, SHADOW_FILE)
    emit(factory.event(t, beacon, "read", passwd, amount=2048))
    emit(factory.event(t + 5, beacon, "read", shadow, amount=1024))
    mysqldump = factory.process(web, MYSQLDUMP, user="ops",
                                start_time=t + 20)
    emit(factory.event(t + 20, beacon, "start", mysqldump))
    dump_sql = factory.file(web, DB_DUMP_SQL, owner="ops")
    emit(factory.event(t + 40, mysqldump, "write", dump_sql,
                       amount=268_435_456))
    tar = factory.process(web, "tar", user="ops", start_time=t + 120)
    emit(factory.event(t + 120, beacon, "start", tar))
    emit(factory.event(t + 125, tar, "read", dump_sql,
                       amount=268_435_456))
    stage_tar = factory.file(web, STAGE_TAR, owner="ops")
    emit(factory.event(t + 180, tar, "write", stage_tar,
                       amount=100_663_296))
    # Client-side harvesting in parallel.
    browser_creds = factory.file(client, BROWSER_CREDS, owner="alice")
    emit(factory.event(t + 30, stager, "read", browser_creds,
                       amount=524288))
    documents = [factory.file(
        client, rf"C:\Users\alice\Documents\report_{i}.docx",
        owner="alice") for i in range(3)]
    for index, document in enumerate(documents):
        emit(factory.event(t + 50 + index * 10, stager, "read", document,
                           amount=1_048_576))
    client_stage = factory.file(client, CLIENT_STAGE, owner="alice")
    emit(factory.event(t + 90, stager, "write", client_stage,
                       amount=20_971_520))

    # ------------------------------------------------------------------
    # c5: exfiltration + cleanup
    # ------------------------------------------------------------------
    t = start_ts + PHASE_OFFSETS["c5"]
    trace.phase_times["c5"] = t
    drop_web = factory.connection(web, DROPZONE_IP, 443, src_port=46001)
    emit(factory.event(t, beacon, "connect", drop_web))
    emit(factory.event(t + 2, beacon, "read", stage_tar,
                       amount=100_663_296))
    for index in range(8):
        emit(factory.event(t + 5 + index * 15, beacon, "write", drop_web,
                           amount=12_582_912))
    drop_client = factory.connection(client, DROPZONE_IP, 443,
                                     src_port=49777)
    emit(factory.event(t + 60, stager, "connect", drop_client))
    emit(factory.event(t + 62, stager, "read", client_stage,
                       amount=20_971_520))
    for index in range(5):
        emit(factory.event(t + 65 + index * 15, stager, "write",
                           drop_client, amount=4_194_304))
    # Cleanup: staged artifacts deleted, beacon terminates.
    emit(factory.event(t + 200, beacon, "delete", stage_tar))
    emit(factory.event(t + 205, beacon, "delete", dump_sql))
    emit(factory.event(t + 210, stager, "delete", client_stage))
    emit(factory.event(t + 220, shell, "end", beacon))
    return trace
