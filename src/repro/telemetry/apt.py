"""The demo's five-step APT attack (§3, Figure 2).

Each step emits the exact artifacts the investigation queries in
:mod:`repro.investigate.figure4_queries` search for; constants are exported
so catalogs and tests never drift from the simulator.

  a1 Initial Compromise   — UnrealIRCd RCE on the web server, telnet
                            back-connect to the attacker (CVE-2010-2075)
  a2 Malware Infection    — malware dropped on the web server, spreading to
                            the Windows client over the intranet
  a3 Privilege Escalation — CVE-2015-1701, then Mimikatz/Kiwi memory dumps
  a4 User Credentials     — PwDump7/WCE on the domain controller
  a5 Data Exfiltration    — database dumped via OSQL, sent to the attacker
                            by the sbblv.exe malware and a PowerShell stage
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.events import Event
from repro.model.timeutil import SECONDS_PER_MINUTE
from repro.telemetry.enterprise import (DATABASE_SERVER, DOMAIN_CONTROLLER,
                                        Enterprise, LINUX_WEB_SERVER,
                                        WINDOWS_CLIENT)
from repro.telemetry.factory import EventFactory

# ---------------------------------------------------------------------------
# Attack artifacts (referenced by the query catalog and the tests)
# ---------------------------------------------------------------------------
IRC_SERVER = "unrealircd"
SHELL = "/bin/sh"
TELNET_PORT = 31337
MALWARE_DROPPER = "/tmp/.rcbot/rcbot"
MALWARE_WEB = "rcbot"
MALWARE_CLIENT_FILE = r"C:\Windows\Temp\svchost_upd.exe"
MALWARE_CLIENT = "svchost_upd.exe"
EXPLOIT_DLL = r"C:\Windows\Temp\cve_2015_1701.dll"
MIMIKATZ = "mimikatz.exe"
KIWI = "kiwi.exe"
LSASS_DUMP = r"C:\Windows\Temp\lsass.dmp"
CREDS_FILE = r"C:\Windows\Temp\creds.txt"
PWDUMP = "PwDump7.exe"
WCE = "WCE.exe"
NTDS_FILE = r"C:\Windows\NTDS\ntds.dit"
DC_DUMP_FILE = r"C:\Windows\Temp\pwdump_all.txt"
WCE_DUMP_FILE = r"C:\Windows\Temp\wce_creds.txt"
OSQL = "osql.exe"
SQLSERVR = "sqlservr.exe"
CMD = "cmd.exe"
DB_DUMP = r"C:\backup\backup1.dmp"
DB_BAK = r"C:\backup\db.bak"
EXFIL_MALWARE = "sbblv.exe"
POWERSHELL = "powershell.exe"

# Sub-step offsets (seconds) from the attack start.
STEP_OFFSETS = {
    "a1": 0.0,
    "a2": 10 * SECONDS_PER_MINUTE,
    "a3": 25 * SECONDS_PER_MINUTE,
    "a4": 40 * SECONDS_PER_MINUTE,
    "a5": 55 * SECONDS_PER_MINUTE,
}


@dataclass
class AptTrace:
    """The injected attack events plus the key timestamps per step."""

    events: list[Event] = field(default_factory=list)
    step_times: dict[str, float] = field(default_factory=dict)


def inject_apt(factory: EventFactory, enterprise: Enterprise,
               start_ts: float) -> AptTrace:
    """Emit the full five-step attack starting at ``start_ts``."""
    trace = AptTrace()
    web = enterprise.one_by_role(LINUX_WEB_SERVER)
    client = enterprise.one_by_role(WINDOWS_CLIENT)
    dc = enterprise.one_by_role(DOMAIN_CONTROLLER)
    db = enterprise.one_by_role(DATABASE_SERVER)
    attacker = enterprise.attacker_ip
    emit = trace.events.append

    # ------------------------------------------------------------------
    # a1: initial compromise of the web server (UnrealIRCd RCE + telnet)
    # ------------------------------------------------------------------
    t = start_ts + STEP_OFFSETS["a1"]
    trace.step_times["a1"] = t
    ircd = factory.process(web, IRC_SERVER, user="irc")
    exploit_conn = factory.inbound(web, attacker, 6667, src_port=55555)
    emit(factory.event(t, ircd, "accept", exploit_conn))
    emit(factory.event(t + 1, ircd, "read", exploit_conn, amount=512))
    shell = factory.process(web, SHELL, user="irc", start_time=t + 2,
                            cmdline="sh -c ...")
    emit(factory.event(t + 2, ircd, "start", shell))
    telnet_back = factory.connection(web, attacker, TELNET_PORT,
                                     src_port=45001)
    emit(factory.event(t + 5, shell, "connect", telnet_back))
    emit(factory.event(t + 6, shell, "write", telnet_back, amount=256))

    # ------------------------------------------------------------------
    # a2: malware dropped on the web server, spreading to the client
    # ------------------------------------------------------------------
    t = start_ts + STEP_OFFSETS["a2"]
    trace.step_times["a2"] = t
    dropper_file = factory.file(web, MALWARE_DROPPER, owner="irc")
    emit(factory.event(t, shell, "read", telnet_back, amount=180224))
    emit(factory.event(t + 2, shell, "write", dropper_file, amount=180224))
    malware_web = factory.process(web, MALWARE_WEB, user="irc",
                                  start_time=t + 4,
                                  cmdline=MALWARE_DROPPER)
    emit(factory.event(t + 4, shell, "start", malware_web))
    emit(factory.event(t + 5, malware_web, "execute", dropper_file))
    # Lateral movement: the web-server malware connects to a service
    # process on the Windows client (cross-host proc connect).
    services = factory.process(client, "services.exe")
    emit(factory.event(t + 30, malware_web, "connect", services))
    client_malware_file = factory.file(client, MALWARE_CLIENT_FILE)
    emit(factory.event(t + 32, services, "write", client_malware_file,
                       amount=180224))
    client_malware = factory.process(client, MALWARE_CLIENT,
                                     start_time=t + 35)
    emit(factory.event(t + 35, services, "start", client_malware))

    # ------------------------------------------------------------------
    # a3: privilege escalation + credential dumping on the client
    # ------------------------------------------------------------------
    t = start_ts + STEP_OFFSETS["a3"]
    trace.step_times["a3"] = t
    exploit_dll = factory.file(client, EXPLOIT_DLL)
    emit(factory.event(t, client_malware, "write", exploit_dll,
                       amount=40960))
    emit(factory.event(t + 1, client_malware, "execute", exploit_dll))
    mimikatz = factory.process(client, MIMIKATZ, user="SYSTEM",
                               start_time=t + 10)
    emit(factory.event(t + 10, client_malware, "start", mimikatz))
    lsass_dump = factory.file(client, LSASS_DUMP)
    emit(factory.event(t + 12, mimikatz, "write", lsass_dump,
                       amount=52_428_800))
    emit(factory.event(t + 15, mimikatz, "read", lsass_dump,
                       amount=52_428_800))
    creds = factory.file(client, CREDS_FILE)
    emit(factory.event(t + 18, mimikatz, "write", creds, amount=2048))
    kiwi = factory.process(client, KIWI, user="SYSTEM", start_time=t + 30)
    emit(factory.event(t + 30, client_malware, "start", kiwi))
    emit(factory.event(t + 32, kiwi, "read", lsass_dump,
                       amount=52_428_800))
    emit(factory.event(t + 35, kiwi, "write", creds, amount=1024))

    # ------------------------------------------------------------------
    # a4: domain controller penetration + password dumping
    # ------------------------------------------------------------------
    t = start_ts + STEP_OFFSETS["a4"]
    trace.step_times["a4"] = t
    dc_lsass = factory.process(dc, "lsass.exe")
    emit(factory.event(t, client_malware, "connect", dc_lsass))
    dc_cmd = factory.process(dc, CMD, user="Administrator",
                             start_time=t + 5)
    dc_services = factory.process(dc, "services.exe")
    emit(factory.event(t + 5, dc_services, "start", dc_cmd))
    pwdump = factory.process(dc, PWDUMP, user="Administrator",
                             start_time=t + 10)
    emit(factory.event(t + 10, dc_cmd, "start", pwdump))
    ntds = factory.file(dc, NTDS_FILE)
    emit(factory.event(t + 12, pwdump, "read", ntds, amount=16_777_216))
    dc_dump = factory.file(dc, DC_DUMP_FILE)
    emit(factory.event(t + 15, pwdump, "write", dc_dump, amount=65536))
    wce = factory.process(dc, WCE, user="Administrator", start_time=t + 30)
    emit(factory.event(t + 30, dc_cmd, "start", wce))
    sam = factory.file(dc, r"C:\Windows\System32\config\SAM")
    emit(factory.event(t + 32, wce, "read", sam, amount=262144))
    wce_dump = factory.file(dc, WCE_DUMP_FILE)
    emit(factory.event(t + 35, wce, "write", wce_dump, amount=32768))

    # ------------------------------------------------------------------
    # a5: data exfiltration from the database server
    # ------------------------------------------------------------------
    t = start_ts + STEP_OFFSETS["a5"]
    trace.step_times["a5"] = t
    db_cmd = factory.process(db, CMD, user="Administrator",
                             start_time=t)
    db_services = factory.process(db, "services.exe")
    emit(factory.event(t, client_malware, "connect", db_services))
    emit(factory.event(t + 2, db_services, "start", db_cmd))
    osql = factory.process(db, OSQL, user="Administrator",
                           start_time=t + 10,
                           cmdline="osql -E -Q \"BACKUP DATABASE ...\"")
    emit(factory.event(t + 10, db_cmd, "start", osql))
    sqlservr = factory.process(db, SQLSERVR)
    osql_conn = factory.inbound(db, db.ip, 1433, src_port=52222)
    emit(factory.event(t + 11, osql, "connect", sqlservr))
    dump_file = factory.file(db, DB_DUMP)
    emit(factory.event(t + 20, sqlservr, "write", dump_file,
                       amount=734_003_200))
    bak_file = factory.file(db, DB_BAK)
    emit(factory.event(t + 40, sqlservr, "write", bak_file,
                       amount=734_003_200))
    # The sbblv.exe malware exfiltrates the OSQL dump (Query 1's pattern).
    sbblv = factory.process(db, EXFIL_MALWARE, user="Administrator",
                            start_time=t + 60)
    emit(factory.event(t + 60, db_cmd, "start", sbblv))
    emit(factory.event(t + 65, sbblv, "read", dump_file,
                       amount=734_003_200))
    exfil_conn = factory.connection(db, enterprise.attacker_ip, 443,
                                    src_port=47001)
    emit(factory.event(t + 70, sbblv, "connect", exfil_conn))
    # Low-and-slow C2 heartbeat first (the baseline the anomaly query's
    # moving average compares the burst against), then the bulk transfer.
    for index in range(24):
        emit(factory.event(t + 75 + index * 10, sbblv, "write", exfil_conn,
                           amount=120 + (index % 3)))
    for index in range(12):
        emit(factory.event(t + 320 + index * 10, sbblv, "write", exfil_conn,
                           amount=8_000_000 + index * 10_000))
    # PowerShell stage (the demo narrative's anomaly-query finding):
    # connect, beacon quietly, read the backup, then burst.
    powershell = factory.process(db, POWERSHELL, user="Administrator",
                                 start_time=t + 500)
    emit(factory.event(t + 500, db_cmd, "start", powershell))
    ps_conn = factory.connection(db, enterprise.attacker_ip, 8443,
                                 src_port=47100)
    emit(factory.event(t + 505, powershell, "connect", ps_conn))
    for index in range(24):
        emit(factory.event(t + 510 + index * 10, powershell, "write",
                           ps_conn, amount=96 + (index % 5)))
    emit(factory.event(t + 755, powershell, "read", bak_file,
                       amount=734_003_200))
    for index in range(18):
        emit(factory.event(t + 760 + index * 10, powershell, "write",
                           ps_conn, amount=12_000_000 + index * 5_000))
    return trace
