"""Event factory: the shared builder all simulators emit events through.

Centralizes event-id assignment and the entity construction conventions
(the subject's agent is the event's agent; network connection objects are
observed from the monitoring host) so the background workloads and the
attack scripts produce mutually consistent streams.
"""

from __future__ import annotations

import itertools

from repro.model.entities import FileEntity, NetworkEntity, ProcessEntity
from repro.model.events import Event
from repro.telemetry.enterprise import Host


class EventFactory:
    """Builds events with globally unique ids and interning-friendly shapes."""

    def __init__(self, start_id: int = 1) -> None:
        self._ids = itertools.count(start_id)
        self._pids: dict[int, itertools.count] = {}

    # ------------------------------------------------------------------
    # Entities
    # ------------------------------------------------------------------
    def next_pid(self, agentid: int) -> int:
        counter = self._pids.get(agentid)
        if counter is None:
            counter = itertools.count(1000)
            self._pids[agentid] = counter
        return next(counter)

    def process(self, host: Host, exe_name: str, *, pid: int | None = None,
                user: str = "system", cmdline: str = "",
                start_time: float = 0.0) -> ProcessEntity:
        return ProcessEntity(agentid=host.agentid,
                             pid=pid if pid is not None
                             else self.next_pid(host.agentid),
                             exe_name=exe_name, user=user, cmdline=cmdline,
                             start_time=start_time)

    def file(self, host: Host, name: str,
             owner: str = "root") -> FileEntity:
        return FileEntity(agentid=host.agentid, name=name, owner=owner)

    def connection(self, host: Host, dst_ip: str, dst_port: int, *,
                   src_port: int = 49152,
                   protocol: str = "tcp") -> NetworkEntity:
        return NetworkEntity(agentid=host.agentid, src_ip=host.ip,
                             src_port=src_port, dst_ip=dst_ip,
                             dst_port=dst_port, protocol=protocol)

    def inbound(self, host: Host, src_ip: str, dst_port: int, *,
                src_port: int = 49152,
                protocol: str = "tcp") -> NetworkEntity:
        """A connection observed arriving at the host."""
        return NetworkEntity(agentid=host.agentid, src_ip=src_ip,
                             src_port=src_port, dst_ip=host.ip,
                             dst_port=dst_port, protocol=protocol)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def event(self, ts: float, subject: ProcessEntity, operation: str,
              obj, amount: int = 0, failcode: int = 0) -> Event:
        """One SVO event; the subject's host is the observing agent."""
        return Event(id=next(self._ids), ts=ts, agentid=subject.agentid,
                     operation=operation, subject=subject, object=obj,
                     amount=amount, failcode=failcode)
