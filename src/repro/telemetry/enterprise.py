"""The simulated enterprise environment (Figure 2).

The demo's controlled environment contains a Windows client, a Linux web
server, a database server, a Windows domain controller, and a router, with
the attacker outside on the Internet.  Each host runs a monitoring agent
identified by its ``agentid`` — the spatial dimension of the data model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DataModelError

# Host roles drive which background workload generator runs on the host.
WINDOWS_CLIENT = "windows_client"
LINUX_WEB_SERVER = "linux_web_server"
DATABASE_SERVER = "database_server"
DOMAIN_CONTROLLER = "domain_controller"
ROUTER = "router"

ROLES = (WINDOWS_CLIENT, LINUX_WEB_SERVER, DATABASE_SERVER,
         DOMAIN_CONTROLLER, ROUTER)

# The attacker's host on the Internet; the paper obfuscates it as XXX.129.
ATTACKER_IP = "203.0.113.129"


@dataclass(frozen=True, slots=True)
class Host:
    """One monitored machine with its collection agent."""

    agentid: int
    hostname: str
    role: str
    ip: str

    def __post_init__(self) -> None:
        if self.role not in ROLES:
            raise DataModelError(f"unknown host role {self.role!r}")

    @property
    def os(self) -> str:
        """The host OS implies the monitoring framework (§2.1)."""
        if self.role in (WINDOWS_CLIENT, DATABASE_SERVER,
                         DOMAIN_CONTROLLER):
            return "windows"   # ETW agent
        return "linux"         # auditd agent


@dataclass(frozen=True, slots=True)
class Enterprise:
    """A collection of monitored hosts plus the external attacker."""

    hosts: tuple[Host, ...]
    attacker_ip: str = ATTACKER_IP

    def __post_init__(self) -> None:
        agentids = [host.agentid for host in self.hosts]
        if len(agentids) != len(set(agentids)):
            raise DataModelError("duplicate agent ids in enterprise")

    def host(self, agentid: int) -> Host:
        for host in self.hosts:
            if host.agentid == agentid:
                return host
        raise DataModelError(f"no host with agentid {agentid}")

    def by_role(self, role: str) -> list[Host]:
        return [host for host in self.hosts if host.role == role]

    def one_by_role(self, role: str) -> Host:
        hosts = self.by_role(role)
        if not hosts:
            raise DataModelError(f"no host with role {role!r}")
        return hosts[0]

    @property
    def agentids(self) -> list[int]:
        return [host.agentid for host in self.hosts]


def demo_enterprise(extra_clients: int = 0) -> Enterprise:
    """The Figure 2 topology, optionally padded with more clients.

    Agent ids are stable so the investigation query catalogs can pin them:
    1 = Windows client, 2 = Linux web server, 3 = database server,
    4 = domain controller, 5 = router; extra clients get ids from 6.
    """
    hosts = [
        Host(1, "win-client-01", WINDOWS_CLIENT, "10.0.0.11"),
        Host(2, "web-01", LINUX_WEB_SERVER, "10.0.0.2"),
        Host(3, "db-01", DATABASE_SERVER, "10.0.0.3"),
        Host(4, "dc-01", DOMAIN_CONTROLLER, "10.0.0.4"),
        Host(5, "router-01", ROUTER, "10.0.0.1"),
    ]
    for index in range(extra_clients):
        agentid = 6 + index
        hosts.append(Host(agentid, f"win-client-{agentid:02d}",
                          WINDOWS_CLIENT, f"10.0.0.{10 + agentid}"))
    return Enterprise(hosts=tuple(hosts))
