"""Benign background workloads per host role.

System monitoring data is dominated by routine activity — that skew is what
makes the paper's pruning-power scheduling matter, so the simulator invests
in realistic *shape*: a small vocabulary of long-lived system processes
producing bulk events (service logs, database page writes, web requests),
plus bursts of interactive activity.  Rates are configurable so benchmarks
can scale event volume.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.model.events import Event
from repro.model.timeutil import Window
from repro.telemetry.enterprise import (DATABASE_SERVER, DOMAIN_CONTROLLER,
                                        Enterprise, Host, LINUX_WEB_SERVER,
                                        ROUTER, WINDOWS_CLIENT)
from repro.telemetry.factory import EventFactory

# Per-role activity mixes: (weight, activity name).  Activities map to
# emitter methods on _HostSimulator.
_ROLE_ACTIVITIES = {
    WINDOWS_CLIENT: (
        (30, "browser"), (20, "service_log"), (10, "office"),
        (10, "email"), (10, "process_churn"), (20, "file_io"),
    ),
    LINUX_WEB_SERVER: (
        (45, "web_request"), (20, "service_log"), (15, "cron"),
        (20, "file_io"),
    ),
    DATABASE_SERVER: (
        (50, "db_page_io"), (15, "db_query_net"), (15, "service_log"),
        (10, "db_backup"), (10, "process_churn"),
    ),
    DOMAIN_CONTROLLER: (
        (40, "auth_lookup"), (25, "service_log"), (20, "dns"),
        (15, "file_io"),
    ),
    ROUTER: (
        (70, "forwarding"), (30, "service_log"),
    ),
}

_CLIENT_BROWSERS = ("chrome.exe", "firefox.exe")
_CLIENT_SITES = ("104.18.32.7", "151.101.1.140", "142.250.65.78",
                 "13.107.42.14")


@dataclass
class WorkloadConfig:
    """Knobs for the benign event stream."""

    events_per_host: int = 2000
    seed: int = 7


class BackgroundWorkload:
    """Generates the benign event stream for every host in the window."""

    def __init__(self, enterprise: Enterprise, window: Window,
                 config: WorkloadConfig | None = None) -> None:
        self._enterprise = enterprise
        self._window = window
        self._config = config or WorkloadConfig()

    def generate(self, factory: EventFactory) -> list[Event]:
        events: list[Event] = []
        for host in self._enterprise.hosts:
            rng = random.Random(self._config.seed * 10_007 + host.agentid)
            simulator = _HostSimulator(host, self._enterprise, factory, rng)
            events.extend(simulator.run(self._window,
                                        self._config.events_per_host))
        events.sort(key=lambda evt: (evt.ts, evt.id))
        return events


class _HostSimulator:
    """Emits one host's benign events by sampling its role's activity mix."""

    def __init__(self, host: Host, enterprise: Enterprise,
                 factory: EventFactory, rng: random.Random) -> None:
        self.host = host
        self.enterprise = enterprise
        self.factory = factory
        self.rng = rng
        self._procs: dict[str, object] = {}
        activities = _ROLE_ACTIVITIES[host.role]
        self._names = [name for _weight, name in activities]
        self._weights = [weight for weight, _name in activities]

    def _proc(self, exe_name: str, user: str = "system"):
        proc = self._procs.get(exe_name)
        if proc is None:
            proc = self.factory.process(self.host, exe_name, user=user)
            self._procs[exe_name] = proc
        return proc

    def run(self, window: Window, count: int) -> list[Event]:
        events: list[Event] = []
        if count <= 0:
            return events
        span = window.duration
        for index in range(count):
            # Uniform jittered spread keeps density stable across the
            # window while remaining deterministic per seed.
            ts = window.start + span * (index + self.rng.random()) / count
            activity = self.rng.choices(self._names,
                                        weights=self._weights)[0]
            events.extend(getattr(self, f"_emit_{activity}")(ts))
        return events

    # ------------------------------------------------------------------
    # Activity emitters (each returns a short list of events)
    # ------------------------------------------------------------------
    def _emit_browser(self, ts: float) -> list[Event]:
        browser = self._proc(self.rng.choice(_CLIENT_BROWSERS), user="alice")
        site = self.rng.choice(_CLIENT_SITES)
        conn = self.factory.connection(self.host, site, 443,
                                       src_port=49000 + self.rng.randrange(500))
        cache = self.factory.file(
            self.host,
            rf"C:\Users\alice\AppData\cache\f_{self.rng.randrange(200):06d}")
        return [
            self.factory.event(ts, browser, "write", conn,
                               amount=self.rng.randrange(300, 3000)),
            self.factory.event(ts + 0.05, browser, "read", conn,
                               amount=self.rng.randrange(2000, 80000)),
            self.factory.event(ts + 0.1, browser, "write", cache,
                               amount=self.rng.randrange(1000, 50000)),
        ]

    def _emit_service_log(self, ts: float) -> list[Event]:
        if self.host.os == "windows":
            service = self._proc("svchost.exe")
            log = self.factory.file(
                self.host, rf"C:\Windows\Logs\svc_{self.rng.randrange(20)}.log")
        else:
            service = self._proc("rsyslogd")
            log = self.factory.file(
                self.host, f"/var/log/syslog.{self.rng.randrange(5)}")
        return [self.factory.event(ts, service, "write", log,
                                   amount=self.rng.randrange(50, 400))]

    def _emit_office(self, ts: float) -> list[Event]:
        word = self._proc("winword.exe", user="alice")
        doc = self.factory.file(
            self.host,
            rf"C:\Users\alice\Documents\report_{self.rng.randrange(30)}.docx",
            owner="alice")
        op = self.rng.choice(("read", "write"))
        return [self.factory.event(ts, word, op, doc,
                                   amount=self.rng.randrange(1000, 200000))]

    def _emit_email(self, ts: float) -> list[Event]:
        outlook = self._proc("outlook.exe", user="alice")
        conn = self.factory.connection(self.host, "40.97.153.146", 993)
        return [self.factory.event(ts, outlook,
                                   self.rng.choice(("read", "write")),
                                   conn,
                                   amount=self.rng.randrange(500, 30000))]

    def _emit_process_churn(self, ts: float) -> list[Event]:
        if self.host.os == "windows":
            parent = self._proc("explorer.exe", user="alice")
            child_name = self.rng.choice(
                ("notepad.exe", "calc.exe", "cmd.exe", "taskmgr.exe"))
        else:
            parent = self._proc("bash", user="ops")
            child_name = self.rng.choice(("ls", "grep", "ps", "cat"))
        child = self.factory.process(self.host, child_name, user="alice",
                                     start_time=ts)
        return [self.factory.event(ts, parent, "start", child)]

    def _emit_file_io(self, ts: float) -> list[Event]:
        if self.host.os == "windows":
            proc = self._proc("svchost.exe")
            name = rf"C:\Windows\Temp\tmp_{self.rng.randrange(100):04d}.dat"
        else:
            proc = self._proc("systemd")
            name = f"/run/state_{self.rng.randrange(100):04d}"
        target = self.factory.file(self.host, name)
        op = self.rng.choice(("read", "write", "write"))
        return [self.factory.event(ts, proc, op, target,
                                   amount=self.rng.randrange(100, 5000))]

    def _emit_web_request(self, ts: float) -> list[Event]:
        apache = self._proc("apache2", user="www-data")
        clients = self.enterprise.by_role(WINDOWS_CLIENT)
        src_ip = (self.rng.choice(clients).ip if clients
                  else "198.51.100.10")
        conn = self.factory.inbound(self.host, src_ip, 80,
                                    src_port=40000 + self.rng.randrange(999))
        page = self.factory.file(
            self.host, f"/var/www/html/page_{self.rng.randrange(40)}.html",
            owner="www-data")
        log = self.factory.file(self.host, "/var/log/apache2/access.log",
                                owner="root")
        return [
            self.factory.event(ts, apache, "accept", conn),
            self.factory.event(ts + 0.01, apache, "read", page,
                               amount=self.rng.randrange(500, 20000)),
            self.factory.event(ts + 0.02, apache, "write", conn,
                               amount=self.rng.randrange(500, 20000)),
            self.factory.event(ts + 0.03, apache, "write", log,
                               amount=self.rng.randrange(80, 200)),
        ]

    def _emit_cron(self, ts: float) -> list[Event]:
        cron = self._proc("cron")
        job = self.factory.process(
            self.host, self.rng.choice(("logrotate", "backup.sh",
                                        "updatedb")),
            start_time=ts)
        return [self.factory.event(ts, cron, "start", job)]

    def _emit_db_page_io(self, ts: float) -> list[Event]:
        sqlservr = self._proc("sqlservr.exe")
        data_file = self.factory.file(
            self.host,
            rf"C:\Data\MSSQL\enterprise_{self.rng.randrange(4)}.mdf")
        op = self.rng.choice(("read", "read", "write"))
        return [self.factory.event(ts, sqlservr, op, data_file,
                                   amount=self.rng.randrange(8192, 65536))]

    def _emit_db_query_net(self, ts: float) -> list[Event]:
        sqlservr = self._proc("sqlservr.exe")
        clients = self.enterprise.by_role(WINDOWS_CLIENT)
        src_ip = clients[self.rng.randrange(len(clients))].ip if clients \
            else "10.0.0.50"
        conn = self.factory.inbound(self.host, src_ip, 1433,
                                    src_port=51000 + self.rng.randrange(999))
        return [
            self.factory.event(ts, sqlservr, "accept", conn),
            self.factory.event(ts + 0.01, sqlservr, "write", conn,
                               amount=self.rng.randrange(200, 8000)),
        ]

    def _emit_db_backup(self, ts: float) -> list[Event]:
        sqlservr = self._proc("sqlservr.exe")
        backup = self.factory.file(
            self.host,
            rf"C:\backup\nightly_{self.rng.randrange(7)}.bak")
        return [self.factory.event(ts, sqlservr, "write", backup,
                                   amount=self.rng.randrange(10 ** 5,
                                                             10 ** 6))]

    def _emit_auth_lookup(self, ts: float) -> list[Event]:
        lsass = self._proc("lsass.exe")
        sam = self.factory.file(self.host,
                                r"C:\Windows\System32\config\SAM")
        return [self.factory.event(ts, lsass, "read", sam,
                                   amount=self.rng.randrange(100, 2000))]

    def _emit_dns(self, ts: float) -> list[Event]:
        dns = self._proc("dns.exe")
        src = f"10.0.0.{self.rng.randrange(2, 250)}"
        conn = self.factory.inbound(self.host, src, 53, protocol="udp")
        return [self.factory.event(ts, dns, "recv", conn,
                                   amount=self.rng.randrange(40, 120))]

    def _emit_forwarding(self, ts: float) -> list[Event]:
        daemon = self._proc("routerd")
        conn = self.factory.connection(
            self.host, f"10.0.0.{self.rng.randrange(2, 250)}", 179)
        return [self.factory.event(ts, daemon,
                                   self.rng.choice(("send", "recv")), conn,
                                   amount=self.rng.randrange(60, 1500))]
