"""Stream-vs-batch differential: the continuous runtime's acceptance bar.

For every figure-4/figure-5 catalog query, registered as a standing query
and fed the full scenario stream in timestamp order, the accumulated
result must be *byte-identical* (columns and rows) to the batch engine
executing the same query on the fully-ingested store — on every storage
backend.  A second suite locks in the bounded-state guarantee: under a
100k-event stream, a ``within``-chained standing query's matcher state
stays bounded and eviction demonstrably runs.

CI's backend matrix restricts each leg via ``REPRO_CONTRACT_BACKENDS``,
mirroring the backend contract suite.
"""

from __future__ import annotations

import os

import pytest

from repro import AiqlSession
from repro.investigate import FIGURE4_QUERIES, FIGURE5_QUERIES
from repro.model.entities import FileEntity, ProcessEntity
from repro.model.events import Event

ALL_BACKENDS = ("row", "columnar", "sqlite")

BACKENDS = tuple(
    name for name in os.environ.get("REPRO_CONTRACT_BACKENDS",
                                    ",".join(ALL_BACKENDS)).split(",")
    if name) or ALL_BACKENDS


@pytest.fixture(params=BACKENDS, scope="module")
def backend_name(request) -> str:
    return request.param


def _replay(scenario, backend_name: str, catalog):
    """One stream replay: every catalog query standing over one feed."""
    session = AiqlSession(backend=backend_name)
    stream = session.stream(batch_size=997)   # before the first register()
    standing = {entry.id: session.register(entry.aiql, name=entry.id)
                for entry in catalog}
    stream.publish_many(scenario.events())
    stream.close()
    return session, standing


@pytest.fixture(scope="module")
def figure4_replay(backend_name, demo_scenario):
    return _replay(demo_scenario, backend_name, FIGURE4_QUERIES)


@pytest.fixture(scope="module")
def figure5_replay(backend_name, case2_scenario):
    return _replay(case2_scenario, backend_name, FIGURE5_QUERIES)


@pytest.mark.parametrize("entry", list(FIGURE4_QUERIES), ids=lambda e: e.id)
def test_figure4_stream_equals_batch(entry, figure4_replay):
    session, standing = figure4_replay
    batch = session.query(entry.aiql)
    live = standing[entry.id].result()
    assert live.columns == batch.columns, entry.id
    assert live.rows == batch.rows, entry.id
    assert live.kind == batch.kind, entry.id


@pytest.mark.parametrize("entry", list(FIGURE5_QUERIES), ids=lambda e: e.id)
def test_figure5_stream_equals_batch(entry, figure5_replay):
    session, standing = figure5_replay
    batch = session.query(entry.aiql)
    live = standing[entry.id].result()
    assert live.columns == batch.columns, entry.id
    assert live.rows == batch.rows, entry.id
    assert live.kind == batch.kind, entry.id


def test_store_matches_direct_ingest(figure4_replay, demo_scenario):
    """The async ingest path loads exactly the published stream."""
    session, _standing = figure4_replay
    assert session.event_count == len(demo_scenario.events())


# ---------------------------------------------------------------------------
# Bounded state under a 100k-event stream
# ---------------------------------------------------------------------------

BOUNDED_AIQL = ('proc p["dropper.exe"] write file f as e1\n'
                'proc q["scanner.exe"] read file f as e2\n'
                'with e1 before e2 within 60 sec\n'
                'return f')


def _bounded_stream(n: int):
    """n events, one per second: sparse dropper/scanner pairs in noise."""
    noise_procs = [ProcessEntity(1, 100 + i, f"worker{i}.exe")
                   for i in range(50)]
    dropper = ProcessEntity(1, 9, "dropper.exe")
    scanner = ProcessEntity(1, 8, "scanner.exe")
    files = [FileEntity(1, f"/data/{i}") for i in range(200)]
    for i in range(n):
        ts = float(i)
        if i % 500 == 37:
            yield Event(i + 1, ts, 1, "write", dropper, files[i % 200],
                        amount=10)
        elif i % 500 == 57:
            yield Event(i + 1, ts, 1, "read", scanner, files[(i - 20) % 200],
                        amount=10)
        else:
            yield Event(i + 1, ts, 1, "write", noise_procs[i % 50],
                        files[i % 200], amount=1)


def test_matcher_state_stays_bounded_under_100k_events():
    n = 100_000
    session = AiqlSession()
    stream = session.stream(batch_size=2048)
    standing = session.register(BOUNDED_AIQL)
    events = list(_bounded_stream(n))
    max_state = 0
    for start in range(0, n, 8192):
        stream.publish_many(events[start:start + 8192])
        stream.flush()
        max_state = max(max_state, standing.state_size())
    stream.close()
    # The within-chain bounds retention to 60 stream-seconds: far below
    # the 400 pattern events (and the 100k stream) ever buffered at once.
    assert max_state <= 60
    assert standing.evicted > 0                      # eviction verified
    assert standing.matches == 200
    # And exactness is not traded away for the bound.
    assert standing.result().rows == session.query(BOUNDED_AIQL).rows
