"""End-to-end tests for the executor on the paper's three query classes."""

import pytest

from repro.engine.executor import EngineOptions, execute, explain
from repro.errors import SemanticError
from repro.lang.parser import parse

from tests.conftest import DAY, QUERY1, QUERY1_ROW


class TestMultieventExecution:
    def test_paper_query1_finds_exactly_the_attack(self, exfil_store):
        result = execute(exfil_store, parse(QUERY1))
        assert result.columns == ["p1", "p2", "p3", "f1", "p4", "i1"]
        assert result.rows == [QUERY1_ROW]
        assert result.kind == "multievent"

    def test_report_is_populated(self, exfil_store):
        result = execute(exfil_store, parse(QUERY1))
        assert "pattern order" in result.report
        assert result.elapsed > 0

    def test_distinct_deduplicates(self, exfil_store):
        duplicated = f'''(at "{DAY}")
proc p["%svchost%"] write file f["%log0%"] as e1
return distinct p'''
        result = execute(exfil_store, parse(duplicated))
        assert result.rows == [("svchost.exe",)]

    def test_without_distinct_keeps_multiplicity(self, exfil_store):
        query = f'''(at "{DAY}")
proc p["%svchost%"] write file f["%log0%"] as e1
return p'''
        result = execute(exfil_store, parse(query))
        assert len(result.rows) > 1

    def test_event_attribute_projection(self, exfil_store):
        query = f'''(at "{DAY}")
proc p["%sqlservr%"] write file f as e1
return f, e1.amount, e1.operation'''
        result = execute(exfil_store, parse(query))
        assert result.rows[0][1] == 500_000
        assert result.rows[0][2] == "write"

    def test_rows_ordered_by_time(self, exfil_store):
        query = f'''(at "{DAY}")
proc p["%svchost%"] write file f as e1
return e1.ts'''
        result = execute(exfil_store, parse(query))
        timestamps = [row[0] for row in result.rows]
        assert timestamps == sorted(timestamps)

    def test_empty_result_when_no_match(self, exfil_store):
        query = 'proc p["%ghost.exe%"] write file f as e1\nreturn f'
        result = execute(exfil_store, parse(query))
        assert result.rows == []

    def test_options_do_not_change_results(self, exfil_store):
        reference = execute(exfil_store, parse(QUERY1)).rows
        for prioritize in (True, False):
            for propagate in (True, False):
                options = EngineOptions(prioritize=prioritize,
                                        propagate=propagate)
                assert execute(exfil_store, parse(QUERY1),
                               options).rows == reference


class TestDependencyExecution:
    def test_dependency_result_kind(self, exfil_store):
        query = f'''(at "{DAY}")
forward: proc p["%sqlservr%"] ->[write] file f["%backup1%"]
<-[read] proc q["%sbblv%"]
return p, f, q'''
        result = execute(exfil_store, parse(query))
        assert result.kind == "dependency"
        assert result.rows == [("sqlservr.exe", r"C:\backup\backup1.dmp",
                                "sbblv.exe")]


class TestAnomalyExecution:
    def test_anomaly_result_has_window_column(self, exfil_store):
        query = f'''(at "{DAY}")
window = 1 hour, step = 1 hour
proc p write ip i as evt
return p, sum(evt.amount) as s
group by p
having s > 0'''
        result = execute(exfil_store, parse(query))
        assert result.columns[0] == "window"
        assert result.kind == "anomaly"
        assert result.rows


class TestExplain:
    def test_multievent_plan_shows_estimates(self, exfil_store):
        text = explain(exfil_store, parse(QUERY1))
        assert "estimated" in text
        assert "evt1" in text

    def test_dependency_explains_rewrite(self, exfil_store):
        text = explain(exfil_store, parse(
            'forward: proc p ->[write] file f return f'))
        assert "compiled to multievent" in text

    def test_anomaly_explained(self, exfil_store):
        text = explain(exfil_store, parse(
            'window = 1 min, step = 10 sec\nproc p write ip i as evt\n'
            'return count(evt) as c'))
        assert "sliding-window" in text


class TestProjectionErrors:
    def test_unknown_return_attribute(self, exfil_store):
        query = parse('proc p start proc c as e1\nreturn c')
        # Patch in a bad attribute to exercise the projection guard.
        from repro.lang import ast
        bad = ast.MultieventQuery(
            header=query.header, patterns=query.patterns,
            temporal=query.temporal,
            return_items=(ast.ReturnItem(
                ast.VarRef("c", "dst_ip")),),
            distinct=False)
        with pytest.raises(SemanticError):
            execute(exfil_store, bad)
