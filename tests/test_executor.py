"""End-to-end tests for the executor on the paper's three query classes."""

import pytest

from repro.engine.executor import EngineOptions, execute, explain
from repro.errors import SemanticError
from repro.lang.parser import parse

from tests.conftest import DAY, QUERY1, QUERY1_ROW


class TestMultieventExecution:
    def test_paper_query1_finds_exactly_the_attack(self, exfil_store):
        result = execute(exfil_store, parse(QUERY1))
        assert result.columns == ["p1", "p2", "p3", "f1", "p4", "i1"]
        assert result.rows == [QUERY1_ROW]
        assert result.kind == "multievent"

    def test_report_is_populated(self, exfil_store):
        result = execute(exfil_store, parse(QUERY1))
        assert "pattern order" in result.report
        assert result.elapsed > 0

    def test_distinct_deduplicates(self, exfil_store):
        duplicated = f'''(at "{DAY}")
proc p["%svchost%"] write file f["%log0%"] as e1
return distinct p'''
        result = execute(exfil_store, parse(duplicated))
        assert result.rows == [("svchost.exe",)]

    def test_without_distinct_keeps_multiplicity(self, exfil_store):
        query = f'''(at "{DAY}")
proc p["%svchost%"] write file f["%log0%"] as e1
return p'''
        result = execute(exfil_store, parse(query))
        assert len(result.rows) > 1

    def test_event_attribute_projection(self, exfil_store):
        query = f'''(at "{DAY}")
proc p["%sqlservr%"] write file f as e1
return f, e1.amount, e1.operation'''
        result = execute(exfil_store, parse(query))
        assert result.rows[0][1] == 500_000
        assert result.rows[0][2] == "write"

    def test_rows_ordered_by_time(self, exfil_store):
        query = f'''(at "{DAY}")
proc p["%svchost%"] write file f as e1
return e1.ts'''
        result = execute(exfil_store, parse(query))
        timestamps = [row[0] for row in result.rows]
        assert timestamps == sorted(timestamps)

    def test_empty_result_when_no_match(self, exfil_store):
        query = 'proc p["%ghost.exe%"] write file f as e1\nreturn f'
        result = execute(exfil_store, parse(query))
        assert result.rows == []

    def test_options_do_not_change_results(self, exfil_store):
        reference = execute(exfil_store, parse(QUERY1)).rows
        for prioritize in (True, False):
            for propagate in (True, False):
                options = EngineOptions(prioritize=prioritize,
                                        propagate=propagate)
                assert execute(exfil_store, parse(QUERY1),
                               options).rows == reference


class TestDependencyExecution:
    def test_dependency_result_kind(self, exfil_store):
        query = f'''(at "{DAY}")
forward: proc p["%sqlservr%"] ->[write] file f["%backup1%"]
<-[read] proc q["%sbblv%"]
return p, f, q'''
        result = execute(exfil_store, parse(query))
        assert result.kind == "dependency"
        assert result.rows == [("sqlservr.exe", r"C:\backup\backup1.dmp",
                                "sbblv.exe")]


class TestAnomalyExecution:
    def test_anomaly_result_has_window_column(self, exfil_store):
        query = f'''(at "{DAY}")
window = 1 hour, step = 1 hour
proc p write ip i as evt
return p, sum(evt.amount) as s
group by p
having s > 0'''
        result = execute(exfil_store, parse(query))
        assert result.columns[0] == "window"
        assert result.kind == "anomaly"
        assert result.rows


class TestExplain:
    def test_multievent_plan_shows_estimates(self, exfil_store):
        text = explain(exfil_store, parse(QUERY1))
        assert "estimated" in text
        assert "evt1" in text

    def test_dependency_explains_rewrite(self, exfil_store):
        text = explain(exfil_store, parse(
            'forward: proc p ->[write] file f return f'))
        assert "compiled to multievent" in text

    def test_anomaly_explained(self, exfil_store):
        text = explain(exfil_store, parse(
            'window = 1 min, step = 10 sec\nproc p write ip i as evt\n'
            'return count(evt) as c'))
        assert "sliding-window" in text


class TestProjectionErrors:
    def test_unknown_return_attribute(self, exfil_store):
        query = parse('proc p start proc c as e1\nreturn c')
        # Patch in a bad attribute to exercise the projection guard.
        from repro.lang import ast
        bad = ast.MultieventQuery(
            header=query.header, patterns=query.patterns,
            temporal=query.temporal,
            return_items=(ast.ReturnItem(
                ast.VarRef("c", "dst_ip")),),
            distinct=False)
        with pytest.raises(SemanticError):
            execute(exfil_store, bad)


class TestVectorizedAndTopK:
    """The vectorized fast path and the bounded-heap ``top`` are pure
    optimizations: every lever combination, on every backend, must
    produce byte-identical rows — ties at the cut, null sort keys, and
    ``top`` larger than the result included."""

    LEVERS = [EngineOptions(vectorized=vectorized,
                            projection_pushdown=projection,
                            topk_pushdown=topk, max_workers=1)
              for vectorized in (False, True)
              for projection in (False, True)
              for topk in (False, True)]

    @pytest.fixture
    def tied_store(self):
        """Timestamp ties spanning any small ``top`` cut, plus events
        with a null sort attribute (amount-less reads)."""
        from repro.model.entities import FileEntity, ProcessEntity
        from repro.storage.store import EventStore
        store = EventStore()
        writer = ProcessEntity(1, 10, "writer.exe")
        # user=None: a genuinely null sort key for the null-safe
        # composite comparator (the dataclass does not enforce str).
        ghost = ProcessEntity(1, 11, "ghost.exe", user=None)
        for step in range(6):
            for dup in range(4):
                store.record(1000.0 + step * 10, 1, "write",
                             writer if dup % 2 == 0 else ghost,
                             FileEntity(1, f"/t/{dup}.txt"),
                             amount=dup * 100)
        return store

    def _matrix_rows(self, store, aiql):
        query = parse(aiql)
        rows = [execute(store, query, options).rows
                for options in self.LEVERS]
        assert all(r == rows[0] for r in rows[1:])
        return rows[0]

    def test_ties_at_the_top_cut(self, tied_store):
        rows = self._matrix_rows(
            tied_store, 'proc p write file f as e1\n'
                        'return f, e1.ts sort by e1.ts desc top 6')
        assert len(rows) == 6
        # Descending ts, ties broken toward the *earlier* event: the two
        # newest tie groups fully, then the cut lands mid-group keeping
        # the smallest-id rows (stable descending sort semantics).
        assert [row[1] for row in rows] == [1050.0] * 4 + [1040.0] * 2
        assert rows[4][0] == "/t/0.txt" and rows[5][0] == "/t/1.txt"

    def test_top_larger_than_result(self, tied_store):
        rows = self._matrix_rows(
            tied_store, 'proc p write file f as e1\n'
                        'return f sort by e1.ts top 500')
        assert len(rows) == 24

    def test_descending_sort_with_nulls(self, tied_store):
        """Half the subjects carry ``user=None``: the null-safe
        composite key must rank nulls identically in the bounded heap,
        the full stable sort, and the vectorized path — nulls last
        under ``desc``, ties still broken by time order."""
        rows = self._matrix_rows(
            tied_store, 'proc p write file f as e1\n'
                        'return f, p.user sort by p.user desc top 15')
        assert len(rows) == 15
        users = [row[1] for row in rows]
        # Strings outrank nulls in the null-safe key, so desc puts the
        # twelve "system" rows first and nulls fill the tail of the cut.
        assert users[:12] == ["system"] * 12
        assert users[12:] == [None] * 3

    def test_projection_of_never_filtered_attribute(self, tied_store):
        """Returning an attribute no constraint mentions exercises
        projection pushdown's "carry the column anyway" path."""
        rows = self._matrix_rows(
            tied_store, 'amount >= 200\nproc p write file f as e1\n'
                        'return e1.failcode, f, e1.amount')
        assert rows
        assert all(row[0] == 0 for row in rows)
        assert all(row[2] >= 200 for row in rows)

    def test_distinct_top_keeps_full_sort_semantics(self, tied_store):
        rows = self._matrix_rows(
            tied_store, 'proc p write file f as e1\n'
                        'return distinct f sort by e1.ts top 3')
        assert len(rows) == 3
        assert len(set(rows)) == 3

    def test_matrix_agrees_across_backends(self, tied_store):
        """The same lever matrix on columnar and sqlite replays of the
        row store: 3 backends x 8 combinations, one row set."""
        from repro.storage.backend import create_backend
        aiql = ('amount >= 100\nproc p write file f as e1\n'
                'return f, e1.amount sort by e1.ts desc top 10')
        reference = self._matrix_rows(tied_store, aiql)
        for name in ("columnar", "sqlite"):
            replay = create_backend(name)
            replay.ingest(tied_store.scan())
            assert self._matrix_rows(replay, aiql) == reference
