"""Tests for the AiqlSession public facade."""

import pytest

from repro import AiqlSession, EngineOptions
from repro.errors import ParseError
from repro.lang.errors import AiqlSyntaxError

from tests.conftest import QUERY1, QUERY1_ROW, make_exfil_store


class TestQueryFlow:
    def test_query_end_to_end(self):
        session = AiqlSession(store=make_exfil_store())
        result = session.query(QUERY1)
        assert result.rows == [QUERY1_ROW]

    def test_parse_surfaces_syntax_errors(self):
        session = AiqlSession()
        with pytest.raises(AiqlSyntaxError):
            session.parse("proc p[ return p")

    def test_check_returns_error_object(self):
        session = AiqlSession()
        error = session.check("proc p[% return p")
        assert error is not None
        assert error.line == 1
        assert session.check("proc p start proc c as e1\nreturn c") is None

    def test_explain(self):
        session = AiqlSession(store=make_exfil_store())
        assert "estimated" in session.explain(QUERY1)

    def test_custom_options(self):
        session = AiqlSession(store=make_exfil_store(),
                              options=EngineOptions(prioritize=False))
        assert session.query(QUERY1).rows == [QUERY1_ROW]

    def test_per_query_option_override(self):
        session = AiqlSession(store=make_exfil_store())
        result = session.query(QUERY1,
                               options=EngineOptions(partition=False))
        assert result.rows == [QUERY1_ROW]


class TestIngest:
    def test_ingest_via_pipeline(self, demo_scenario):
        session = AiqlSession()
        stats = session.ingest(demo_scenario.events(), batch_size=500)
        assert stats.committed == len(demo_scenario.events())
        assert stats.batches >= 2
        assert session.event_count == stats.committed

    def test_ingest_with_merging(self, demo_scenario):
        merged = AiqlSession()
        # 15s covers the attack's 10s-interval C2 heartbeats, which are
        # the classic mergeable burst (same subject/object/operation).
        stats = merged.ingest(demo_scenario.events(), merge_window=15.0)
        assert stats.merged_away > 0
        assert merged.event_count < len(demo_scenario.events())

    def test_describe_summary(self):
        session = AiqlSession(store=make_exfil_store())
        text = session.describe()
        assert "events" in text
        assert "agents=[3]" in text

    def test_empty_session_describe(self):
        assert "(empty)" in AiqlSession().describe()
        assert AiqlSession().entity_count == 0
