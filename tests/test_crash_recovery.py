"""Crash recovery: kill the process at every fault point, recover, compare.

The durability tier's contract is the *prefix property*: whatever the
crash — torn append, lost fsync, half-written checkpoint, ``kill -9``
mid-stream — ``recover()`` rebuilds exactly the longest cleanly-committed
batch prefix of the original ingest, and every catalog query over the
recovered store returns byte-identical results to a fresh store holding
that same prefix.  These tests drive it three ways:

* in-process: armed :class:`~repro.storage.faults.Fault` objects raise
  at each named point, across every applicable mode;
* replay idempotence: recovering twice, recovering over a WAL whose
  prefix the checkpoint already applied, and duplicated/out-of-order
  batches all converge to the same state;
* subprocess chaos: ``tests/chaos_child.py`` streams the demo scenario
  and is SIGKILLed by the injector mid-write — the real ``kill -9``,
  no atexit, no flushing — then the parent recovers and runs the
  differential comparison.

Also here: the persistent alert log's replay/ack loop, the SQLite
busy-retry satellite, and the CLI's graceful-shutdown satellite.
"""

from __future__ import annotations

import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import AiqlSession
from repro.baselines.sqlite_backend import SqliteEventStore
from repro.errors import StorageError
from repro.investigate import FIGURE4_QUERIES
from repro.model.entities import FileEntity, ProcessEntity
from repro.model.events import Event
from repro.storage.backend import create_backend
from repro.storage.durable import DurableStore, recover
from repro.storage.faults import (FAULT_POINTS, Fault, FaultInjector,
                                  FaultTriggered)
from repro.storage.wal import WriteAheadLog
from repro.stream.alertlog import AlertLog
from repro.telemetry import build_demo_scenario

CHAOS_EVENTS_PER_HOST = int(os.environ.get(
    "REPRO_CHAOS_EVENTS_PER_HOST", "200"))
CHAOS_SEED = 7
BATCH = 64


def _event_key(event: Event) -> tuple:
    return (event.id, event.agentid, event.ts, event.operation,
            event.amount, event.failcode, event.subject.identity,
            event.object.identity)


def _scenario_events(events_per_host: int = CHAOS_EVENTS_PER_HOST):
    return build_demo_scenario(events_per_host=events_per_host,
                               seed=CHAOS_SEED).events()


def _fresh_session(events) -> AiqlSession:
    session = AiqlSession()
    session.ingest(events)
    return session


def _assert_differential(recovered_store, events) -> int:
    """The acceptance property: the recovered store is a clean prefix
    and every Figure-4 catalog query agrees byte-for-byte with a fresh
    store over that prefix."""
    count = len(recovered_store)
    prefix = events[:count]
    assert ([_event_key(e) for e in recovered_store.scan()]
            == [_event_key(e) for e in prefix]), \
        "recovered state is not the ingest prefix"
    recovered_session = AiqlSession(store=recovered_store)
    fresh_session = _fresh_session(prefix)
    for entry in FIGURE4_QUERIES:
        got = recovered_session.query(entry.aiql)
        want = fresh_session.query(entry.aiql)
        assert got.columns == want.columns, entry.id
        assert got.rows == want.rows, \
            f"{entry.id}: recovered store diverges from prefix store"
    return count


def _crashing_ingest(store: DurableStore, events) -> None:
    """Stream in BATCH-sized chunks until the armed fault crashes it."""
    with pytest.raises(FaultTriggered):
        for start in range(0, len(events), BATCH):
            store.ingest(events[start:start + BATCH])
        pytest.fail("armed fault never fired")


# ---------------------------------------------------------------------------
# In-process fault-point recovery
# ---------------------------------------------------------------------------

# wal.append.* points are hit on every batch: skip a few so the crash
# lands mid-stream.  checkpoint.* points are only reached through the
# auto-checkpoint cadence, which is already mid-stream on first trigger.
WAL_POINTS = [p for p in FAULT_POINTS if p.startswith("wal.")]
CHECKPOINT_POINTS = [p for p in FAULT_POINTS if p.startswith("checkpoint.")]


class TestFaultPointRecovery:
    @pytest.mark.parametrize("point", WAL_POINTS)
    def test_crash_at_wal_point_mid_stream(self, tmp_path, point):
        events = _scenario_events(60)
        injector = FaultInjector([Fault(point, "error", skip=4)])
        store = DurableStore(tmp_path / "dur", faults=injector)
        _crashing_ingest(store, events)
        recovered = recover(tmp_path / "dur")
        count = _assert_differential(recovered, events)
        # Four full batches committed before the crash; the crashing
        # batch may or may not have made it depending on the point.
        assert count >= 4 * BATCH
        recovered.close()

    @pytest.mark.parametrize("mode", ("torn", "bitflip", "truncate"))
    def test_corrupted_append_recovers_to_prior_batch(self, tmp_path, mode):
        """The write-mangling modes leave a frame the CRC must reject."""
        events = _scenario_events(60)
        injector = FaultInjector([Fault("wal.append.payload", mode,
                                        skip=3)])
        store = DurableStore(tmp_path / "dur", faults=injector)
        _crashing_ingest(store, events)
        recovered = recover(tmp_path / "dur")
        count = _assert_differential(recovered, events)
        assert count == 3 * BATCH      # the mangled batch never survives
        recovered.close()

    @pytest.mark.parametrize("point", CHECKPOINT_POINTS)
    def test_crash_inside_checkpoint_sequence(self, tmp_path, point):
        events = _scenario_events(60)
        injector = FaultInjector([Fault(point, "error")])
        store = DurableStore(tmp_path / "dur", faults=injector,
                             auto_checkpoint=max(1, len(events) // 3))
        _crashing_ingest(store, events)
        recovered = recover(tmp_path / "dur")
        count = _assert_differential(recovered, events)
        # The checkpoint crashed, but every batch WAL-appended before it
        # is still covered (old manifest + full WAL, or new manifest +
        # deduplicated stale WAL).
        assert count >= len(events) // 3
        recovered.close()

    def test_crash_between_manifest_swap_and_wal_reset(self, tmp_path):
        """The window idempotent dedup exists for: the manifest already
        points at the new checkpoint, the WAL still holds everything."""
        events = _scenario_events(60)
        injector = FaultInjector([Fault("checkpoint.truncate", "error")])
        store = DurableStore(tmp_path / "dur", faults=injector)
        store.ingest(events[:200])
        with pytest.raises(FaultTriggered):
            store.checkpoint()
        recovered = recover(tmp_path / "dur")
        assert recovered.recovery.checkpoint == 1
        assert recovered.recovery.deduplicated == 200   # full WAL overlap
        _assert_differential(recovered, events)
        assert len(recovered) == 200
        recovered.close()

    def test_missing_segment_is_a_hard_error(self, tmp_path):
        events = _scenario_events(30)
        store = DurableStore(tmp_path / "dur")
        store.ingest(events[:100])
        store.checkpoint()
        store.close()
        os.unlink(tmp_path / "dur" / "checkpoint-000001.wal")
        with pytest.raises(StorageError, match="missing checkpoint"):
            recover(tmp_path / "dur")

    def test_torn_checkpoint_segment_is_a_hard_error(self, tmp_path):
        """A WAL tail may tear (replay stops there); a manifest-named
        segment may not — a silently partial checkpoint would violate
        the prefix property, so the count trailer must catch it."""
        events = _scenario_events(30)
        store = DurableStore(tmp_path / "dur")
        store.ingest(events[:150])
        store.checkpoint()
        store.close()
        segment = tmp_path / "dur" / "checkpoint-000001.wal"
        with open(segment, "r+b") as handle:
            handle.truncate(segment.stat().st_size - 20)
        with pytest.raises(StorageError, match="corrupt"):
            recover(tmp_path / "dur")

    def test_recover_missing_directory_raises(self, tmp_path):
        with pytest.raises(StorageError, match="no durable store"):
            recover(tmp_path / "never-created")


# ---------------------------------------------------------------------------
# Replay idempotence (satellite: extends the disorder/dup suite)
# ---------------------------------------------------------------------------

class TestReplayIdempotence:
    def test_recover_twice_is_identical(self, tmp_path):
        events = _scenario_events(40)
        store = DurableStore(tmp_path / "dur",
                             auto_checkpoint=len(events) // 2)
        for start in range(0, len(events), BATCH):
            store.ingest(events[start:start + BATCH])
        store.close()
        first = recover(tmp_path / "dur")
        state = [_event_key(e) for e in first.scan()]
        first.close()
        second = recover(tmp_path / "dur")
        assert [_event_key(e) for e in second.scan()] == state
        assert len(second) == len(events)
        second.close()

    def test_duplicated_batches_apply_once(self, tmp_path):
        """An at-least-once shipper may append the same batch twice; the
        replay deduper admits each event exactly once."""
        events = _scenario_events(30)
        store = DurableStore(tmp_path / "dur")
        store.ingest(events[:100])
        store.close()
        # Duplicate the batch straight into the WAL, like a retry would.
        with WriteAheadLog(tmp_path / "dur" / "wal.log") as wal:
            wal.append_events(events[:100])
            wal.append_events(events[50:100])   # overlapping suffix too
        recovered = recover(tmp_path / "dur")
        assert len(recovered) == 100
        assert recovered.recovery.deduplicated == 150
        _assert_differential(recovered, events)
        recovered.close()

    def test_out_of_order_batches_recover_to_the_same_store(self, tmp_path):
        """WAL batches appended out of timestamp order still rebuild the
        same queryable state (partition routing is by timestamp)."""
        events = _scenario_events(30)
        first, second, third = (events[:50], events[50:120],
                                events[120:200])
        path = tmp_path / "dur"
        path.mkdir()
        with WriteAheadLog(path / "wal.log") as wal:
            wal.append_events(second)          # disordered arrival
            wal.append_events(first)
            wal.append_events(third)
        recovered = recover(path)
        expected = create_backend("row")
        expected.ingest(events[:200])
        assert ([_event_key(e) for e in recovered.scan()]
                == [_event_key(e) for e in expected.scan()])
        recovered.close()

    def test_reopen_is_recovery_and_appends_continue(self, tmp_path):
        """Opening the directory again *is* recovery; new writes land
        after the replayed state and survive the next recovery."""
        events = _scenario_events(30)
        store = DurableStore(tmp_path / "dur")
        store.ingest(events[:80])
        store.close()
        reopened = DurableStore(tmp_path / "dur")
        assert reopened.recovery.applied == 80
        reopened.ingest(events[80:130])
        reopened.close()
        final = recover(tmp_path / "dur")
        assert len(final) == 130
        _assert_differential(final, events)
        final.close()


# ---------------------------------------------------------------------------
# Subprocess chaos: kill -9 at every fault point, then recover
# ---------------------------------------------------------------------------

def _run_chaos_child(directory: Path, fault_spec: str) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    child = subprocess.run(
        [sys.executable, str(Path(__file__).with_name("chaos_child.py")),
         "--dir", str(directory), "--fault", fault_spec,
         "--events-per-host", str(CHAOS_EVENTS_PER_HOST),
         "--seed", str(CHAOS_SEED), "--batch-size", str(BATCH)],
        env=env, capture_output=True, text=True, timeout=600)
    return child.returncode


class TestChaosKill:
    @pytest.mark.parametrize("point", FAULT_POINTS)
    def test_kill9_at_point_recovers_byte_identical(self, tmp_path, point):
        """The acceptance scenario: a streamed ingest is SIGKILLed at
        the fault point, and recovery yields byte-identical catalog
        query results against a fresh store over the same prefix."""
        skip = 4 if point.startswith("wal.") else 0
        returncode = _run_chaos_child(tmp_path / "dur",
                                      f"{point}:kill:{skip}")
        assert returncode == -signal.SIGKILL, \
            (f"chaos child survived (rc={returncode}) — fault {point!r} "
             f"never fired; the harness is not exercising the point")
        events = _scenario_events()
        recovered = recover(tmp_path / "dur")
        count = _assert_differential(recovered, events)
        if point.startswith("wal."):
            assert count >= 4 * BATCH          # crash landed mid-stream
        recovered.close()

    def test_double_kill_then_recover(self, tmp_path):
        """Crash, recover nothing (just reopen), crash again during the
        checkpoint the reopened store triggers, recover again."""
        directory = tmp_path / "dur"
        assert _run_chaos_child(
            directory, "wal.append.sync:kill:6") == -signal.SIGKILL
        intermediate = recover(directory)
        count_after_first = len(intermediate)
        intermediate.close()
        assert _run_chaos_child(
            directory, "checkpoint.manifest:kill:0") == -signal.SIGKILL
        events = _scenario_events()
        recovered = recover(directory)
        assert len(recovered) >= count_after_first
        _assert_differential(recovered, events)
        recovered.close()


# ---------------------------------------------------------------------------
# Persistent alert log
# ---------------------------------------------------------------------------

ALERT_AIQL = ('proc p["%cmd.exe%"] start proc c as e1\n'
              'return p, c')


class TestAlertLogDurability:
    def test_alerts_survive_reopen_and_replay_past_cursor(self, tmp_path):
        path = tmp_path / "alerts.log"
        with AlertLog(path) as log:
            for i in range(5):
                log.append("q1", (f"row-{i}", i))
        with AlertLog(path) as log:
            assert len(log) == 5
            records = list(log.replay())
            assert [r.row for r in records] == [
                (f"row-{i}", i) for i in range(5)]
            log.ack(3)
        with AlertLog(path) as log:            # cursor is durable too
            assert log.pending() == 2
            assert [r.seq for r in log.replay()] == [4, 5]

    def test_cursors_are_per_consumer_and_forward_only(self, tmp_path):
        with AlertLog(tmp_path / "alerts.log") as log:
            for i in range(4):
                log.append("q", (i,))
            log.ack(4, "pager")
            log.ack(2, "dashboard")
            log.ack(1, "dashboard")            # backwards: no-op
            assert log.pending("pager") == 0
            assert log.pending("dashboard") == 2
            assert log.pending("fresh-consumer") == 4

    def test_invalid_consumer_name_rejected(self, tmp_path):
        with AlertLog(tmp_path / "alerts.log") as log:
            log.append("q", (1,))
            with pytest.raises(StorageError, match="consumer name"):
                log.ack(1, "../escape")

    def test_torn_alert_tail_drops_only_the_tail(self, tmp_path):
        path = tmp_path / "alerts.log"
        with AlertLog(path) as log:
            log.append("q", ("kept",))
            log.append("q", ("torn",))
        with open(path, "r+b") as handle:
            handle.truncate(path.stat().st_size - 5)
        with AlertLog(path) as log:
            assert [r.row for r in log.replay()] == [("kept",)]
            # And the log keeps working past the repaired tail.
            log.append("q", ("after",))
            assert [r.row for r in log.replay()] == [("kept",), ("after",)]

    def test_entity_cells_round_trip(self, tmp_path):
        proc = ProcessEntity(1, 10, "cmd.exe", user="u", cmdline="cmd",
                             start_time=9.0)
        file_entity = FileEntity(1, r"C:\x\y.txt", owner="o")
        with AlertLog(tmp_path / "alerts.log") as log:
            log.append("q", (proc, file_entity, 3.5, None, "plain"))
        with AlertLog(tmp_path / "alerts.log") as log:
            (record,) = log.replay()
        assert record.row == (proc, file_entity, 3.5, None, "plain")
        assert isinstance(record.row[0], ProcessEntity)

    def test_stream_session_logs_matches_durably(self, tmp_path):
        """The wiring: a standing query's matches reach the alert log
        before the user callback, so an unconsumed alert is replayable
        after the process is gone."""
        events = _scenario_events(60)
        session = AiqlSession(durable_dir=str(tmp_path / "dur"))
        stream = session.stream(
            batch_size=BATCH,
            alert_log=str(tmp_path / "dur" / "alerts.log"))
        seen = []
        session.register(ALERT_AIQL, callback=lambda q, row:
                         seen.append(row), name="exec-chain")
        stream.publish_many(events)
        stream.close()
        session.store.close()
        assert seen                             # the scenario matches
        with AlertLog(tmp_path / "dur" / "alerts.log") as log:
            replayed = list(log.replay())
        assert [r.row for r in replayed] == seen
        assert all(r.query == "exec-chain" for r in replayed)


# ---------------------------------------------------------------------------
# SQLite busy retry (satellite)
# ---------------------------------------------------------------------------

class _FlakyConn:
    """Raises SQLITE_BUSY on the first N immediate BEGINs, then behaves."""

    def __init__(self, conn, failures: int,
                 message: str = "database is locked") -> None:
        self._conn = conn
        self._failures = failures
        self._message = message
        self.begin_attempts = 0

    def execute(self, sql, *args):
        if sql == "BEGIN IMMEDIATE":
            self.begin_attempts += 1
            if self.begin_attempts <= self._failures:
                raise sqlite3.OperationalError(self._message)
        return self._conn.execute(sql, *args)

    def __getattr__(self, name):
        return getattr(self._conn, name)


def _sqlite_events(n: int = 10) -> list[Event]:
    proc = ProcessEntity(1, 10, "w.exe")
    return [Event(id=i + 1, ts=100.0 + i, agentid=1, operation="write",
                  subject=proc, object=FileEntity(1, f"/f{i % 3}"))
            for i in range(n)]


class TestSqliteBusyRetry:
    def _flaky_store(self, failures: int) -> tuple[SqliteEventStore,
                                                   _FlakyConn]:
        store = SqliteEventStore()
        flaky = _FlakyConn(store._conn, failures)
        store._conn = flaky
        store.BUSY_BACKOFF = 0.0001            # keep the test instant
        return store, flaky

    def test_transient_busy_retries_and_commits(self):
        store, flaky = self._flaky_store(failures=2)
        assert store.ingest(_sqlite_events()) == 10
        assert flaky.begin_attempts == 3       # 2 busy + 1 success
        assert len(store.scan()) == 10         # the write really landed
        store.close()

    def test_busy_beyond_retry_budget_raises_storage_error(self):
        store, _flaky = self._flaky_store(
            failures=SqliteEventStore.BUSY_RETRIES + 1)
        with pytest.raises(StorageError, match="busy after"):
            store.ingest(_sqlite_events())
        assert len(store) == 0                 # nothing half-committed

    def test_non_busy_operational_error_is_not_retried(self):
        store, flaky = self._flaky_store(failures=0)
        started = time.perf_counter()
        with pytest.raises(sqlite3.OperationalError, match="syntax"):
            store._write_transaction(
                lambda conn: conn.execute("NOT SQL AT ALL"))
        assert time.perf_counter() - started < 1.0
        assert flaky.begin_attempts == 1       # no retry loop entered
        store.close()

    def test_failed_transaction_rolls_back_cleanly(self):
        store, _flaky = self._flaky_store(failures=0)
        events = _sqlite_events(5)
        store.ingest(events)

        def poison(conn):
            conn.execute("INSERT INTO backend_events (id, ts, agentid, "
                         "etype, op, subject_name, payload) "
                         "VALUES (99, 1.0, 1, 'file', 'write', 'x', '{}')")
            raise sqlite3.OperationalError("database is locked")

        store.BUSY_RETRIES = 1
        with pytest.raises(StorageError, match="busy after"):
            store._write_transaction(poison)
        # The poisoned insert is rolled back on every attempt.
        assert len(store.scan()) == 5
        store.close()


# ---------------------------------------------------------------------------
# CLI graceful shutdown (satellite)
# ---------------------------------------------------------------------------

class TestStreamGracefulShutdown:
    @pytest.mark.parametrize("signum", (signal.SIGINT, signal.SIGTERM))
    def test_follow_flushes_and_exits_zero(self, tmp_path, signum):
        durable = tmp_path / "dur"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parent.parent / "src")
        child = subprocess.Popen(
            [sys.executable, "-m", "repro", "stream",
             "--events-per-host", "2000", "--follow", "--rate", "400",
             "--batch-size", "64", "--seed", str(CHAOS_SEED),
             "--durable", str(durable), ALERT_AIQL],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        # Give the stream time to start pacing, then interrupt it.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and not durable.exists():
            time.sleep(0.05)
        time.sleep(1.0)
        child.send_signal(signum)
        output, _ = child.communicate(timeout=60)
        assert child.returncode == 0, output
        assert signal.Signals(signum).name in output
        assert "flushing and closing stream" in output
        # The flushed prefix is recoverable and differentially clean.
        recovered = recover(durable)
        assert len(recovered) > 0, output
        _assert_differential(recovered,
                             _scenario_events(2000)[:len(recovered)])
        recovered.close()
