"""Golden-file smoke test for ``repro query --explain``.

The explain surface is part of the CLI contract: the plan section shows
the chosen access path and statistics-based estimate per pattern, the
execution section the actual rows.  The golden file pins the exact
rendering (with timings normalized), so an accidental format or
decision-surface regression fails loudly.  Regenerate with::

    PYTHONPATH=src python tests/test_explain_golden.py > tests/golden/explain_query.txt
"""

from __future__ import annotations

import io
import pathlib
import re

from repro.model.entities import FileEntity, ProcessEntity
from repro.model.events import Event
from repro.storage.serialize import write_events
from repro.ui.main import main

GOLDEN = pathlib.Path(__file__).parent / "golden" / "explain_query.txt"

AIQL = ('proc r["rare.exe"] read file f as e1\n'
        'proc w write file f as e2\n'
        'with e1 before e2\n'
        'return distinct f')

_BASE = 1_000_000.0


def _fixture_events() -> list[Event]:
    """A tiny, fully deterministic day: one rare read pinning ``f``,
    a sea of unrelated writes, one genuine completion."""
    rare = ProcessEntity(1, 1, "rare.exe")
    writer = ProcessEntity(1, 2, "writer.exe")
    target = FileEntity(1, "/data/target")
    events = [Event(id=1, ts=_BASE, agentid=1, operation="read",
                    subject=rare, object=target)]
    for index in range(20):
        events.append(Event(
            id=2 + index, ts=_BASE + 10.0 + index, agentid=1,
            operation="write", subject=writer,
            object=FileEntity(1, f"/noise/{index % 4}")))
    events.append(Event(id=22, ts=_BASE + 50.0, agentid=1,
                        operation="write", subject=writer, object=target))
    return events


def _normalized_output(tmp_path) -> str:
    data = tmp_path / "day.jsonl"
    write_events(_fixture_events(), str(data))
    out = io.StringIO()
    code = main(["query", str(data), AIQL, "--explain", "--workers", "1"],
                out)
    assert code == 0
    return re.sub(r"\d+\.\d+ ms", "X ms", out.getvalue())


def test_explain_output_matches_golden(tmp_path):
    assert _normalized_output(tmp_path) == GOLDEN.read_text()


def test_explain_reports_path_estimate_and_actual(tmp_path):
    """Independent of exact formatting: the acceptance surface — path,
    estimated, and actual rows per pattern — must all be present."""
    text = _normalized_output(tmp_path)
    assert "via posting(subject)" in text          # chosen access path
    assert "estimated 1 events" in text            # statistics estimate
    assert "path=" in text                         # per-pattern path
    assert "matched=1" in text                     # actual rows (e1)
    assert "pattern order: e1 -> e2" in text


if __name__ == "__main__":  # regeneration helper
    import sys
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        sys.stdout.write(_normalized_output(pathlib.Path(tmp)))
