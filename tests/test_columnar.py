"""Columnar store internals: batch scans, zone maps, dictionary encoding.

The cross-backend contract lives in ``test_backend_contract.py``; this file
exercises what is specific to the columnar representation — the generated
row filter, zone-map pruning, the lazy time sort, the materialization
cache, and (property-tested) exact agreement between batch evaluation and
the row store's per-event evaluation.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.filters import Atom, compile_atoms
from repro.engine.planner import plan_multievent
from repro.errors import StorageError
from repro.lang.parser import parse
from repro.model.entities import FileEntity, NetworkEntity, ProcessEntity
from repro.model.timeutil import Window
from repro.storage.backend import ScanSpec
from repro.storage.columnar import ColumnarEventStore, _compile_row_filter
from repro.storage.stats import PatternProfile
from repro.storage.store import EventStore


def _twin_stores(bucket_seconds=1000.0):
    return EventStore(bucket_seconds), ColumnarEventStore(bucket_seconds)


@pytest.fixture
def store() -> ColumnarEventStore:
    store = ColumnarEventStore(bucket_seconds=1000)
    writer = ProcessEntity(1, 10, "writer.exe")
    reader = ProcessEntity(1, 11, "reader.exe")
    for i in range(40):
        store.record(float(i), 1, "write", writer,
                     FileEntity(1, f"/data/{i % 4}.txt"), amount=10 * i)
    for i in range(10):
        store.record(2000.0 + i, 2, "read", reader,
                     FileEntity(2, "/data/0.txt"), amount=5)
    return store


class TestConstruction:
    def test_bad_bucket_size(self):
        with pytest.raises(StorageError):
            ColumnarEventStore(bucket_seconds=0)

    def test_partitions_split_by_agent_and_bucket(self, store):
        assert store.partition_count == 2
        assert store.agentids == {1, 2}


class TestBatchScan:
    def test_unsatisfiable_atom_short_circuits(self, store):
        compiled = compile_atoms([
            Atom("event", "operation", "=", "no-such-op")])
        events, fetched = store.select(
            PatternProfile(event_type=None, operations=None), compiled)
        assert events == [] and fetched == 0

    def test_zone_map_prunes_amount_range(self, store):
        # agent 2's partition holds only amount=5 events; an amount > 100
        # atom must skip it without touching a row.
        compiled = compile_atoms([Atom("event", "amount", ">", 100)])
        events, fetched = store.select(
            PatternProfile(event_type=None, operations=None), compiled)
        assert all(e.amount > 100 for e in events)
        assert fetched == 40  # only agent 1's partition was scanned

    def test_string_valued_ordered_atom_matches_nothing(self, store):
        # _compare semantics: number <op> string is False, so an ordered
        # comparison against a string survives codegen as a fallback test.
        compiled = compile_atoms([Atom("event", "amount", ">", "high")])
        events, _fetched = store.select(
            PatternProfile(event_type=None, operations=None), compiled)
        assert events == []

    def test_in_atom_on_numeric_column(self, store):
        compiled = compile_atoms([Atom("event", "amount", "in", (5, 30))])
        events, _fetched = store.select(
            PatternProfile(event_type=None, operations=None), compiled)
        assert {e.amount for e in events} == {5, 30}

    def test_entity_atom_uses_dictionary(self, store):
        compiled = compile_atoms([
            Atom("subject", "exe_name", "like", "%read%")])
        events, _fetched = store.select(
            PatternProfile(event_type=None, operations=None), compiled)
        assert len(events) == 10
        assert all(e.subject.exe_name == "reader.exe" for e in events)

    def test_window_clips_via_lazy_sort(self):
        store = ColumnarEventStore(bucket_seconds=10_000)
        proc = ProcessEntity(1, 1, "p.exe")
        for ts in (5.0, 1.0, 3.0, 9.0):  # out of order on purpose
            store.record(ts, 1, "write", proc, FileEntity(1, "/f"))
        got = store.scan(Window(2.0, 8.0))
        assert [e.ts for e in got] == [3.0, 5.0]

    def test_select_survivors_are_cached(self, store):
        compiled = compile_atoms([
            Atom("subject", "exe_name", "=", "reader.exe")])
        profile = PatternProfile(event_type=None, operations=None)
        first, _ = store.select(profile, compiled)
        second, _ = store.select(profile, compiled)
        assert first and all(a is b for a, b in zip(first, second))

    def test_full_scan_does_not_populate_cache(self, store):
        store.scan()
        cached = sum(len(p.materialized)
                     for p in store._partitions.values())
        assert cached == 0


class TestRowFilterCodegen:
    def test_inlines_numeric_comparisons(self):
        fn = _compile_row_filter(
            [("ops", {1, 2})],
            [("amounts", Atom("event", "amount", ">", 10))])
        ids = [1, 2, 3]
        ts = [0.0, 1.0, 2.0]
        ops = [1, 3, 2]
        amounts = [50, 50, 5]
        rows = fn(0, 3, ids, ts, ops, [0] * 3, [0] * 3, [0] * 3,
                  amounts, [0] * 3)
        assert rows == [0]  # row 1 fails ops, row 2 fails amount

    def test_empty_condition_accepts_all(self):
        fn = _compile_row_filter([], [])
        assert fn(0, 3, [], [], [], [], [], [], [], []) == [0, 1, 2]

    def test_bitmap_dimension_compiles_to_flag_lookup(self):
        from repro.storage.backend import Bitmap
        fn = _compile_row_filter([("subjects", Bitmap({0, 2}, 4))], [])
        subjects = [0, 1, 2, 3]
        rows = fn(0, 4, [0] * 4, [0.0] * 4, [0] * 4, [0] * 4,
                  subjects, [0] * 4, [0] * 4, [0] * 4)
        assert rows == [0, 2]


class TestBitmapBindings:
    """Binding sets above BITMAP_THRESHOLD compact into a dense Bitmap in
    the fused loop — and produce exactly the set-probe results."""

    def _wide_store(self) -> ColumnarEventStore:
        store = ColumnarEventStore(bucket_seconds=10_000)
        for index in range(400):
            store.record(float(index), 1, "write",
                         ProcessEntity(1, index + 10, f"proc{index}.exe"),
                         FileEntity(1, f"/data/{index}"))
        return store

    def test_large_binding_set_matches_post_filter(self):
        from repro.storage.backend import (BITMAP_THRESHOLD,
                                           IdentityBindings)
        store = self._wide_store()
        identities = frozenset(
            ProcessEntity(1, index + 10, f"proc{index}.exe").identity
            for index in range(300))
        assert len(identities) > BITMAP_THRESHOLD
        profile = PatternProfile(event_type="file",
                                 operations=frozenset({"write"}))
        dq = plan_multievent(parse(
            "proc p write file f as e1 return f")).data_queries[0]
        for compact in (True, False):
            bindings = IdentityBindings(subjects=identities,
                                        compact=compact)
            survivors, _fetched = store.select(
                dq.profile, dq.compiled, ScanSpec(bindings=bindings))
            assert len(survivors) == 300, compact
            assert all(bindings.admits(e) for e in survivors), compact
        assert store.estimate(profile, ScanSpec(
            bindings=IdentityBindings(subjects=identities))) == 300

    def test_bitmap_class_membership(self):
        from repro.storage.backend import Bitmap
        bitmap = Bitmap({1, 5, 5, 9}, 12)
        assert len(bitmap) == 3
        assert 5 in bitmap and 9 in bitmap
        assert 0 not in bitmap and 11 not in bitmap


class TestBloomTier:
    """Binding sets above BITMAP_THRESHOLD but sparse against a huge
    vocabulary take the bloom tier: exact membership (the set confirms),
    bounded footprint, identical scan results."""

    def test_bloomed_set_membership_is_exact(self):
        from repro.storage.backend import BloomedSet
        bloomed = BloomedSet(range(0, 10_000, 7))
        assert len(bloomed) == len(set(range(0, 10_000, 7)))
        for code in (0, 7, 9996):
            assert code in bloomed
        for code in (1, 8, 9995, 123_456):
            assert code not in bloomed
        # The flag table is sized to the set, not any vocabulary.
        assert len(bloomed.flags) < 16 * len(bloomed)

    def test_compaction_picks_bloom_for_huge_vocabularies(self):
        from repro.storage.backend import (BITMAP_THRESHOLD,
                                           BLOOM_VOCAB_RATIO, Bitmap,
                                           BloomedSet)
        allowed = set(range(BITMAP_THRESHOLD + 1))
        dense_vocab = len(allowed) * BLOOM_VOCAB_RATIO
        assert isinstance(
            ColumnarEventStore._compacted(allowed, dense_vocab, True),
            Bitmap)
        assert isinstance(
            ColumnarEventStore._compacted(allowed, dense_vocab + 1, True),
            BloomedSet)
        assert ColumnarEventStore._compacted(allowed, dense_vocab + 1,
                                             False) is allowed

    def test_bloom_row_filter_matches_set_probe(self):
        from repro.storage.backend import BloomedSet
        allowed = set(range(0, 400, 3))
        plain = _compile_row_filter([("subjects", allowed)], [])
        bloomed = _compile_row_filter([("subjects", BloomedSet(allowed))],
                                      [])
        subjects = list(range(400))
        args = ([0] * 400, [0.0] * 400, [0] * 400, [0] * 400,
                subjects, [0] * 400, [0] * 400, [0] * 400)
        assert plain(0, 400, *args) == bloomed(0, 400, *args)

    def test_bloom_tier_scan_matches_post_filter(self, monkeypatch):
        """End to end on a columnar store: with thresholds forced down so
        the bloom tier engages, select results equal the exact
        post-filter."""
        import repro.storage.backend as backend_module
        from repro.storage.backend import IdentityBindings
        monkeypatch.setattr(backend_module, "BITMAP_THRESHOLD", 8)
        monkeypatch.setattr(backend_module, "BLOOM_VOCAB_RATIO", 2)
        store = ColumnarEventStore(bucket_seconds=10_000)
        for index in range(200):
            store.record(float(index), 1, "write",
                         ProcessEntity(1, index + 10, f"p{index}.exe"),
                         FileEntity(1, f"/data/{index}"))
        identities = frozenset(
            ProcessEntity(1, index + 10, f"p{index}.exe").identity
            for index in range(0, 40, 2))
        dq = plan_multievent(parse(
            "proc p write file f as e1 return f")).data_queries[0]
        bindings = IdentityBindings(subjects=identities)
        survivors, _fetched = store.select(dq.profile, dq.compiled,
                                           ScanSpec(bindings=bindings))
        baseline, _ = store.select(dq.profile, dq.compiled)
        expected = sorted(e.id for e in baseline if bindings.admits(e))
        assert sorted(e.id for e in survivors) == expected
        assert expected


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(
    st.floats(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=3),
    st.sampled_from(["read", "write"]),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=500)), max_size=80))
def test_batch_select_agrees_with_row_store(specs):
    """Property: columnar batch evaluation == row-store per-event path."""
    row, columnar = _twin_stores(bucket_seconds=2000)
    for ts, agent, op, fid, amount in specs:
        for store in (row, columnar):
            store.record(ts, agent, op, ProcessEntity(agent, 1, "p.exe"),
                         FileEntity(agent, f"/f/{fid}"), amount=amount)
    plan = plan_multievent(parse(
        'amount >= 100\n'
        'proc p read || write file f["%/f/0%"] as e1\n'
        'return f'))
    dq = plan.data_queries[0]
    window = Window(1000.0, 9000.0)
    spec = ScanSpec(window=window, agentids={1, 2})
    row_events, _ = row.select(dq.profile, dq.compiled, spec)
    col_events, _ = columnar.select(dq.profile, dq.compiled, spec)
    assert ({e.id for e in row_events} == {e.id for e in col_events})


def test_full_query_agreement_on_shared_plan(store):
    """The same planned query yields identical rows on both stores."""
    row = EventStore(bucket_seconds=1000)
    row.ingest(store.scan())
    plan_query = ('proc p["%writer%"] write file f as e1\n'
                  'return distinct p, f')
    from repro.engine.executor import execute
    left = execute(row, parse(plan_query)).rows
    right = execute(store, parse(plan_query)).rows
    assert left == right and left
