"""Tests for the CLI REPL, table renderer, and web UI."""

import json
import urllib.request

import pytest

from repro import AiqlSession
from repro.core.results import QueryResult
from repro.ui.cli import Repl
from repro.ui.render import render_status, render_table
from repro.ui.webapp import WebApi, serve_background

from tests.conftest import DAY, QUERY1, make_exfil_store


@pytest.fixture
def session() -> AiqlSession:
    return AiqlSession(store=make_exfil_store())


SIMPLE = (f'(at "{DAY}")\nproc p["%sbblv%"] read file f as e1\n'
          'return p, f')


class TestRenderTable:
    def test_alignment_and_footer(self):
        result = QueryResult(columns=["a", "bee"],
                             rows=[("x", 1), ("longer", 22)],
                             elapsed=0.5, kind="multievent")
        text = render_table(result)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]
        assert "(2 rows" in lines[-1]

    def test_truncation(self):
        result = QueryResult(columns=["n"],
                             rows=[(i,) for i in range(100)],
                             elapsed=0.0, kind="multievent")
        text = render_table(result, max_rows=10)
        assert "90 more rows" in text

    def test_wide_cells_clipped(self):
        result = QueryResult(columns=["x"], rows=[("y" * 200,)],
                             elapsed=0.0, kind="multievent")
        assert "…" in render_table(result)

    def test_status_line(self):
        result = QueryResult(columns=[], rows=[], elapsed=0.002,
                             kind="anomaly")
        assert "anomaly query: 0 rows" in render_status(result)


class TestRepl:
    def test_query_execution(self, session):
        repl = Repl(session)
        out = repl.handle(SIMPLE)
        assert "sbblv.exe" in out
        assert "1 rows" in out

    def test_syntax_error_rendered_with_caret(self, session):
        out = Repl(session).handle('proc p[% start proc c as e1\nreturn c')
        assert "^" in out
        assert "syntax error" in out

    def test_describe(self, session):
        assert "events" in Repl(session).handle(".describe")

    def test_explain(self, session):
        out = Repl(session).handle(f".explain {SIMPLE}")
        assert "estimated" in out

    def test_help_and_quit(self, session):
        repl = Repl(session)
        assert "Commands" in repl.handle(".help")
        assert repl.handle(".quit") == "bye"
        assert repl.done

    def test_empty_input(self, session):
        assert Repl(session).handle("   ") == ""


class TestWebApi:
    def test_index_served(self, session):
        status, ctype, body = WebApi(session).index()
        assert status == 200
        assert "AIQL" in body

    def test_query_endpoint(self, session):
        status, _ctype, body = WebApi(session).query(SIMPLE)
        payload = json.loads(body)
        assert status == 200
        assert payload["ok"]
        assert payload["columns"] == ["p", "f"]
        assert payload["rows"][0][0] == "sbblv.exe"
        assert "aiql-entity" in payload["highlighted"]

    def test_query_endpoint_sort_and_search(self, session):
        api = WebApi(session)
        query = (f'(at "{DAY}")\nproc p write file f as e1\n'
                 'return distinct f')
        _s, _c, body = api.query(query, sort="f", search="log1")
        payload = json.loads(body)
        values = [row[0] for row in payload["rows"]]
        assert values == sorted(values)
        assert all("log1" in v for v in values)

    def test_query_syntax_error(self, session):
        status, _ctype, body = WebApi(session).query("proc p[%")
        payload = json.loads(body)
        assert status == 400
        assert not payload["ok"]
        assert "syntax error" in payload["error"]

    def test_check_endpoint(self, session):
        api = WebApi(session)
        ok = json.loads(api.check(SIMPLE)[2])
        assert ok["ok"]
        bad = json.loads(api.check("proc p[%")[2])
        assert not bad["ok"]
        assert bad["line"] == 1

    def test_describe_endpoint(self, session):
        payload = json.loads(WebApi(session).describe()[2])
        assert "events" in payload["summary"]

    def test_catalog_endpoint(self, session):
        status, _ctype, body = WebApi(session).catalog("figure4")
        payload = json.loads(body)
        assert status == 200
        assert len(payload["queries"]) == 20
        first = payload["queries"][0]
        assert first["id"] == "a1-1"
        assert "aiql" in first and "aiql-entity" in first["highlighted"]

    def test_catalog_unknown_name(self, session):
        status, _ctype, body = WebApi(session).catalog("figure9")
        assert status == 404
        assert not json.loads(body)["ok"]


class TestHttpServer:
    def test_real_http_roundtrip(self, session):
        server, _thread = serve_background(session)
        try:
            port = server.server_address[1]
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/") as response:
                assert b"AIQL" in response.read()
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/api/query",
                data=SIMPLE.encode(), method="POST")
            with urllib.request.urlopen(request) as response:
                payload = json.loads(response.read())
            assert payload["ok"]
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/api/describe") as response:
                assert json.loads(response.read())["ok"]
        finally:
            server.shutdown()

    def test_404(self, session):
        server, _thread = serve_background(session)
        try:
            port = server.server_address[1]
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/nope")
        finally:
            server.shutdown()
