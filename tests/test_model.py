"""Tests for the entity/event data model (repro.model)."""

import pytest

from repro.errors import DataModelError
from repro.model.attributes import (AttributeRef, default_attribute,
                                    resolve_entity_attribute,
                                    resolve_event_attribute)
from repro.errors import SemanticError
from repro.model.entities import (FILE, NETWORK, PROCESS, FileEntity,
                                  NetworkEntity, ProcessEntity,
                                  canonical_attribute, entity_attributes)
from repro.model.events import (Event, canonical_event_attribute,
                                validate_operation)


def proc(**kw):
    defaults = dict(agentid=1, pid=10, exe_name="x.exe")
    defaults.update(kw)
    return ProcessEntity(**defaults)


class TestEntities:
    def test_process_identity_includes_host_pid_start(self):
        a = proc(start_time=1.0)
        b = proc(start_time=2.0)
        assert a.identity != b.identity
        assert proc(start_time=1.0).identity == a.identity

    def test_file_identity_is_per_host_path(self):
        assert (FileEntity(1, "/etc/passwd").identity
                != FileEntity(2, "/etc/passwd").identity)

    def test_network_identity_is_flow_tuple(self):
        a = NetworkEntity(1, "10.0.0.1", 1000, "10.0.0.2", 80)
        b = NetworkEntity(1, "10.0.0.1", 1001, "10.0.0.2", 80)
        assert a.identity != b.identity

    def test_default_attributes(self):
        assert proc().default_attribute == "x.exe"
        assert FileEntity(1, "/tmp/a").default_attribute == "/tmp/a"
        conn = NetworkEntity(1, "a", 1, "9.9.9.9", 2)
        assert conn.default_attribute == "9.9.9.9"

    def test_attribute_access_with_alias(self):
        assert proc().attribute("name") == "x.exe"
        conn = NetworkEntity(1, "a", 1, "9.9.9.9", 2)
        assert conn.attribute("dstip") == "9.9.9.9"
        assert conn.attribute("dst_ip") == "9.9.9.9"

    def test_unknown_attribute_rejected(self):
        with pytest.raises(DataModelError):
            proc().attribute("nonsense")

    def test_canonical_attribute_per_type(self):
        assert canonical_attribute(PROCESS, "EXE") == "exe_name"
        assert canonical_attribute(FILE, "path") == "name"
        assert canonical_attribute(NETWORK, "srcport") == "src_port"
        with pytest.raises(DataModelError):
            canonical_attribute("nope", "x")
        with pytest.raises(DataModelError):
            canonical_attribute(FILE, "dst_ip")

    def test_entity_attributes_listing(self):
        assert "exe_name" in entity_attributes(PROCESS)
        assert "dst_port" in entity_attributes(NETWORK)


class TestEvents:
    def test_subject_must_be_process(self):
        f = FileEntity(1, "/tmp/a")
        with pytest.raises(DataModelError):
            Event(id=1, ts=0.0, agentid=1, operation="read",
                  subject=f, object=f)  # type: ignore[arg-type]

    def test_operation_must_match_object_type(self):
        with pytest.raises(DataModelError):
            Event(id=1, ts=0.0, agentid=1, operation="accept",
                  subject=proc(), object=FileEntity(1, "/tmp/a"))

    def test_event_type_follows_object(self):
        evt = Event(id=1, ts=0.0, agentid=1, operation="read",
                    subject=proc(), object=FileEntity(1, "/tmp/a"))
        assert evt.event_type == FILE

    def test_event_attribute_aliases(self):
        evt = Event(id=1, ts=5.0, agentid=1, operation="read",
                    subject=proc(), object=FileEntity(1, "/tmp/a"),
                    amount=42)
        assert evt.attribute("time") == 5.0
        assert evt.attribute("size") == 42
        assert evt.attribute("op") == "read"

    def test_validate_operation(self):
        assert validate_operation("file", "READ") == "read"
        with pytest.raises(DataModelError):
            validate_operation("proc", "read")
        with pytest.raises(DataModelError):
            validate_operation("bogus", "read")

    def test_canonical_event_attribute(self):
        assert canonical_event_attribute("timestamp") == "ts"
        with pytest.raises(DataModelError):
            canonical_event_attribute("exe_name")


class TestAttributeResolution:
    def test_bare_variable_resolves_to_default(self):
        ref = resolve_entity_attribute("p1", PROCESS, None)
        assert ref == AttributeRef("p1", "exe_name", "entity")

    def test_alias_resolution(self):
        ref = resolve_entity_attribute("i1", NETWORK, "dstip")
        assert ref.attribute == "dst_ip"

    def test_event_attribute(self):
        ref = resolve_event_attribute("evt", "bytes")
        assert ref == AttributeRef("evt", "amount", "event")

    def test_errors_become_semantic(self):
        with pytest.raises(SemanticError):
            resolve_entity_attribute("p1", PROCESS, "dst_ip")
        with pytest.raises(SemanticError):
            default_attribute("bogus")
