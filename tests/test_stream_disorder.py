"""Out-of-order and duplicate arrival: dedup + partition routing.

System monitoring feeds are only *roughly* time-ordered — agents batch,
clocks skew, retries duplicate.  These tests lock in how the write path
behaves under non-monotonic timestamps and repeated events, on both
ingest surfaces: batch (:class:`IngestPipeline`) and stream-published
(:class:`EventBus`), across every storage backend.
"""

from __future__ import annotations

import random

import pytest

from repro import AiqlSession
from repro.model.entities import FileEntity, ProcessEntity
from repro.model.events import Event
from repro.model.timeutil import Window
from repro.storage.backend import create_backend
from repro.storage.dedup import EventMerger, ReplayDeduper
from repro.storage.durable import DurableStore, recover
from repro.storage.ingest import IngestPipeline
from repro.storage.partition import Hypertable
from repro.storage.wal import WriteAheadLog
from repro.stream import EventBus

BACKENDS = ("row", "columnar", "sqlite")


def _event(eid: int, ts: float, *, agent: int = 1, pid: int = 10,
           exe: str = "w.exe", path: str = "/f", amount: int = 1) -> Event:
    return Event(id=eid, ts=ts, agentid=agent, operation="write",
                 subject=ProcessEntity(agent, pid, exe),
                 object=FileEntity(agent, path), amount=amount)


def _shuffled_events(n: int = 400, seed: int = 11) -> list[Event]:
    """Events over several buckets and agents, in scrambled time order."""
    rng = random.Random(seed)
    events = [
        _event(i + 1, rng.uniform(0.0, 4000.0),
               agent=rng.choice((1, 2, 3)),
               pid=rng.choice((10, 11)),
               path=f"/data/{i % 7}")
        for i in range(n)
    ]
    rng.shuffle(events)
    return events


# ---------------------------------------------------------------------------
# EventMerger under disorder and duplicates
# ---------------------------------------------------------------------------

class TestMergerDisorder:
    def test_out_of_order_within_window_still_merges(self):
        merger = EventMerger(merge_window=5.0)
        assert merger.push(_event(1, 100.0, amount=10)) == []
        # A straggler with an *earlier* timestamp inside the window is
        # merged into the pending event (gap measured signed).
        assert merger.push(_event(2, 97.0, amount=5)) == []
        final = merger.flush()
        assert len(final) == 1
        assert final[0].amount == 15
        assert final[0].ts == 100.0        # first-seen event anchors

    def test_gap_beyond_window_emits_the_pending_event(self):
        merger = EventMerger(merge_window=5.0)
        merger.push(_event(1, 100.0, amount=10))
        emitted = merger.push(_event(2, 200.0, amount=5))
        assert [e.id for e in emitted] == [1]
        assert [e.id for e in merger.flush()] == [2]

    def test_duplicate_events_collapse_to_one(self):
        """The same agent record delivered twice (retry) merges away."""
        merger = EventMerger(merge_window=5.0)
        original = _event(1, 100.0, amount=10)
        duplicate = _event(1, 100.0, amount=10)
        merger.push(original)
        assert merger.push(duplicate) == []
        final = merger.flush()
        assert len(final) == 1 and final[0].amount == 20
        assert merger.merged_away == 1

    def test_flush_emits_in_time_order_despite_arrival_order(self):
        merger = EventMerger(merge_window=0.5)
        for eid, ts in ((1, 300.0), (2, 100.0), (3, 200.0)):
            merger.push(_event(eid, ts, pid=eid, path=f"/{eid}"))
        assert [e.ts for e in merger.flush()] == [100.0, 200.0, 300.0]


# ---------------------------------------------------------------------------
# Partition routing under non-monotonic timestamps
# ---------------------------------------------------------------------------

class TestPartitionRoutingDisorder:
    def test_hypertable_routes_by_timestamp_not_arrival(self):
        table = Hypertable(bucket_seconds=1000.0)
        for event in _shuffled_events():
            table.add(event)
        for partition in table.partitions():
            agentid, bucket = partition.key
            lo, hi = bucket * 1000.0, (bucket + 1) * 1000.0
            for event in partition.events():
                assert event.agentid == agentid
                assert lo <= event.ts < hi

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_scan_is_time_ordered_after_disordered_ingest(self, backend_name):
        store = create_backend(backend_name, bucket_seconds=1000.0)
        events = _shuffled_events()
        with IngestPipeline(store, batch_size=64) as pipeline:
            pipeline.add_all(events)
        got = store.scan()
        assert len(got) == len(events)
        assert [(e.ts, e.id) for e in got] == sorted(
            (e.ts, e.id) for e in events)
        # Window pruning stays exact at bucket edges under disorder.
        window = Window(1000.0, 2000.0)
        expected = sorted((e.ts, e.id) for e in events
                          if window.contains(e.ts))
        assert [(e.ts, e.id) for e in store.scan(window)] == expected

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_stream_published_store_equals_batch_ingested(self, backend_name):
        """The async bus path and the batch pipeline build the same
        store from the same disordered feed."""
        events = _shuffled_events()
        batch_store = create_backend(backend_name, bucket_seconds=1000.0)
        with IngestPipeline(batch_store, batch_size=50) as pipeline:
            pipeline.add_all(events)
        stream_store = create_backend(backend_name, bucket_seconds=1000.0)
        bus = EventBus(batch_size=37)
        bus.attach_store(stream_store)
        bus.publish_many(events)
        bus.close()
        assert len(stream_store) == len(batch_store)
        assert ([(e.id, e.ts, e.agentid) for e in stream_store.scan()]
                == [(e.id, e.ts, e.agentid) for e in batch_store.scan()])
        assert stream_store.partition_count == batch_store.partition_count

    def test_stream_published_duplicates_merge_like_batch(self):
        """Duplicate + out-of-order arrivals dedup identically on both
        ingest surfaces when a merge window is configured."""
        events = []
        for i in range(20):
            events.append(_event(2 * i + 1, 100.0 + i * 0.1, amount=1))
        events.append(_event(99, 100.0, amount=1))     # late duplicate burst
        batch_store = create_backend("row")
        with IngestPipeline(batch_store, batch_size=8,
                            merge_window=10.0) as pipeline:
            pipeline.add_all(events)
        stream_store = create_backend("row")
        bus = EventBus(batch_size=8)
        bus.attach_store(stream_store, merge_window=10.0)
        bus.publish_many(events)
        bus.close()
        assert len(stream_store) == len(batch_store) == 1
        assert (stream_store.scan()[0].amount
                == batch_store.scan()[0].amount == 21)


# ---------------------------------------------------------------------------
# Durable replay under disorder and duplicates
# ---------------------------------------------------------------------------

class TestDurableReplayDisorder:
    """WAL replay meets the same feed pathologies live ingest does:
    duplicated batches (at-least-once shippers) and non-monotonic
    timestamps.  Recovery must converge to the same store a clean batch
    ingest builds — on every backend the durable tier can wrap."""

    def test_replay_deduper_admits_each_event_once(self):
        deduper = ReplayDeduper()
        events = _shuffled_events(50)
        assert deduper.admit_batch(events) == events
        assert deduper.admit_batch(events) == []       # full replay dup
        assert deduper.admit_batch(events[25:]) == []  # suffix overlap
        assert deduper.duplicates == 75
        assert len(deduper) == 50
        # Same id but different (agentid, ts) is a different event.
        other = _event(1, 9999.0, agent=3)
        assert deduper.admit(other)

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_disordered_duplicated_wal_recovers_like_batch(
            self, tmp_path, backend_name):
        events = _shuffled_events(300)
        chunks = [events[i:i + 60] for i in range(0, 300, 60)]
        directory = tmp_path / backend_name
        directory.mkdir()
        with WriteAheadLog(directory / "wal.log") as wal:
            for chunk in (chunks[2], chunks[0], chunks[1],   # out of order
                          chunks[0],                         # duplicated
                          chunks[3], chunks[4], chunks[3]):
                wal.append_events(chunk)
        recovered = recover(directory, backend=backend_name,
                            bucket_seconds=1000.0)
        assert recovered.recovery.deduplicated == 120
        expected = create_backend(backend_name, bucket_seconds=1000.0)
        with IngestPipeline(expected, batch_size=64) as pipeline:
            pipeline.add_all(events)
        assert ([(e.id, e.ts, e.agentid) for e in recovered.scan()]
                == [(e.id, e.ts, e.agentid) for e in expected.scan()])
        assert recovered.partition_count == expected.partition_count
        recovered.close()

    def test_durable_reopen_after_duplicate_suffix_append(self, tmp_path):
        """A shipper retry re-appends an already-applied suffix; the next
        recovery (and the one after it) both land on the same state."""
        events = _shuffled_events(200)
        store = DurableStore(tmp_path / "dur", bucket_seconds=1000.0)
        store.ingest(events[:150])
        store.close()
        with WriteAheadLog(tmp_path / "dur" / "wal.log") as wal:
            wal.append_events(events[100:150])      # retried suffix
            wal.append_events(events[150:])         # then new data
        for _round in range(2):                     # recover twice
            recovered = recover(tmp_path / "dur", bucket_seconds=1000.0)
            assert len(recovered) == 200
            assert sorted(e.id for e in recovered.scan()) == sorted(
                e.id for e in events)
            recovered.close()


# ---------------------------------------------------------------------------
# Standing queries under bounded disorder
# ---------------------------------------------------------------------------

class TestStandingQueriesUnderDisorder:
    AIQL = ('proc p["a.exe"] write file f as e1\n'
            'proc q["b.exe"] read file f as e2\n'
            'with e1 before e2 within 30 sec\n'
            'return f')

    def test_lateness_window_preserves_exactness(self):
        """With disorder bounded by the configured lateness, stream
        results still equal the batch engine on the final store."""
        rng = random.Random(3)
        events = []
        for i in range(300):
            ts = float(i)
            if i % 20 == 5:
                events.append(Event(i + 1, ts, 1, "write",
                                    ProcessEntity(1, 1, "a.exe"),
                                    FileEntity(1, f"/d/{i % 9}")))
            elif i % 20 == 9:
                events.append(Event(i + 1, ts, 1, "read",
                                    ProcessEntity(1, 2, "b.exe"),
                                    FileEntity(1, f"/d/{(i - 4) % 9}")))
            else:
                events.append(Event(i + 1, ts, 1, "write",
                                    ProcessEntity(1, 3, "noise.exe"),
                                    FileEntity(1, "/noise")))
        # Bounded disorder: jitter arrival within ±4 seconds of ts order.
        events.sort(key=lambda e: e.ts + rng.uniform(-4.0, 4.0))
        session = AiqlSession()
        stream = session.stream(batch_size=16, lateness=8.0)
        standing = session.register(self.AIQL)
        stream.publish_many(events)
        stream.close()
        batch = session.query(self.AIQL)
        assert standing.result().rows == batch.rows
        assert standing.matches > 0

    def test_anomaly_anchor_waits_for_the_lateness_allowance(self):
        """A windowless anomaly query anchors its pane grid at the
        stream's earliest timestamp; an in-allowance straggler arriving
        *before* the first batch's minimum must still move the anchor, or
        every pane shifts and stream-vs-batch equivalence breaks."""
        aiql = ('window = 10 sec, step = 10 sec\n'
                'proc p write file f as evt\n'
                'return p, count(evt) as n\n'
                'group by p')
        events = [_event(1, 25.0), _event(2, 26.0),
                  _event(3, 3.0),                  # early straggler
                  _event(4, 40.0), _event(5, 55.0)]
        session = AiqlSession()
        stream = session.stream(batch_size=2, lateness=30.0)
        standing = session.register(aiql)
        stream.publish_many(events)
        stream.close()
        batch = session.query(aiql)
        assert standing.result().rows == batch.rows
        assert batch.rows[0][0].endswith("00:00:03")   # anchored at ts=3
