"""Tests for the optimized scheduler (ordering, propagation, short-circuit)."""

import pytest

from repro.lang.parser import parse
from repro.model.entities import FileEntity, NetworkEntity, ProcessEntity
from repro.engine.planner import plan_multievent
from repro.engine.scheduler import Scheduler
from repro.storage.store import EventStore

from tests.conftest import BASE_TS


@pytest.fixture
def store() -> EventStore:
    store = EventStore()
    agent = 1
    rare = ProcessEntity(agent, 1, "rare.exe")
    common = ProcessEntity(agent, 2, "common.exe")
    target = FileEntity(agent, "/data/secret")
    store.record(BASE_TS + 500, agent, "read", rare, target, amount=1)
    for index in range(300):
        store.record(BASE_TS + index, agent, "write", common,
                     FileEntity(agent, f"/logs/{index % 7}"), amount=1)
    store.record(BASE_TS + 600, agent, "write", common, target, amount=1)
    return store


QUERY = '''
proc c["%common%"] write file f as e1
proc r["%rare%"] read file f as e2
return distinct c, r, f
'''


class TestOrdering:
    def test_most_selective_pattern_runs_first(self, store):
        plan = plan_multievent(parse(QUERY))
        scheduled = Scheduler(store).run(plan)
        assert scheduled.report.order == ["e2", "e1"]

    def test_declaration_order_when_disabled(self, store):
        plan = plan_multievent(parse(QUERY))
        scheduled = Scheduler(store, prioritize=False).run(plan)
        assert scheduled.report.order == ["e1", "e2"]

    def test_same_matches_either_way(self, store):
        plan = plan_multievent(parse(QUERY))
        fast = Scheduler(store).run(plan)
        slow = Scheduler(store, prioritize=False, propagate=False).run(plan)
        fast_ids = {frozenset(e.id for e in events)
                    for events in fast.events.values() if events}
        # Propagation prunes e1's candidate list down to events joinable
        # with e2's matches; the final joined results are checked in
        # test_executor — here we check e2's matches agree exactly.
        e2_index = plan.data_queries[1].index
        assert ({e.id for e in fast.events[e2_index]}
                == {e.id for e in slow.events[e2_index]})


class TestPropagation:
    def test_binding_propagation_prunes_candidates(self, store):
        plan = plan_multievent(parse(QUERY))
        with_prop = Scheduler(store, propagate=True).run(plan)
        without = Scheduler(store, propagate=False).run(plan)
        e1_index = plan.data_queries[0].index
        # e2 matched only /data/secret, so propagation restricts e1 to
        # writes of that file: 1 candidate instead of 301.
        assert len(with_prop.events[e1_index]) == 1
        assert len(without.events[e1_index]) == 301

    def test_temporal_propagation_narrows_window(self):
        store = EventStore()
        agent = 1
        a = ProcessEntity(agent, 1, "a.exe")
        b = ProcessEntity(agent, 2, "b.exe")
        child = ProcessEntity(agent, 3, "c.exe")
        store.record(BASE_TS + 1000, agent, "start", a, child)
        # b starts things both before and after a's event.
        for offset in (500, 1500):
            grandchild = ProcessEntity(agent, 4 + offset, "d.exe")
            store.record(BASE_TS + offset, agent, "start", b, grandchild)
        plan = plan_multievent(parse(
            'proc a["%a.exe%"] start proc x as e1\n'
            'proc b["%b.exe%"] start proc y as e2\n'
            'with e1 before e2\nreturn y'))
        scheduled = Scheduler(store).run(plan)
        e2_matches = scheduled.events[1]
        # Only the start at +1500 can follow e1 (+1000).
        assert [e.ts for e in e2_matches] == [BASE_TS + 1500]

    def test_short_circuit_on_empty_pattern(self, store):
        plan = plan_multievent(parse(
            'proc z["%absent%"] write file f as e1\n'
            'proc c["%common%"] write file f as e2\nreturn f'))
        scheduled = Scheduler(store).run(plan)
        assert scheduled.report.short_circuited
        # The expensive pattern was never fetched.
        fetched = {t.event_var: t.fetched for t in scheduled.report.patterns}
        assert fetched.get("e2") is None


class TestReport:
    def test_report_describes_execution(self, store):
        plan = plan_multievent(parse(QUERY))
        scheduled = Scheduler(store).run(plan)
        text = scheduled.report.describe()
        assert "pattern order" in text
        assert "e2" in text and "e1" in text
        assert "ms" in text
