"""Tests for the optimized scheduler (ordering, propagation, short-circuit)."""

import pytest

from repro.lang.parser import parse
from repro.model.entities import FileEntity, NetworkEntity, ProcessEntity
from repro.engine.options import EngineOptions
from repro.engine.planner import plan_multievent
from repro.engine.scheduler import Scheduler
from repro.storage.store import EventStore

from tests.conftest import BASE_TS


@pytest.fixture
def store() -> EventStore:
    store = EventStore()
    agent = 1
    rare = ProcessEntity(agent, 1, "rare.exe")
    common = ProcessEntity(agent, 2, "common.exe")
    target = FileEntity(agent, "/data/secret")
    store.record(BASE_TS + 500, agent, "read", rare, target, amount=1)
    for index in range(300):
        store.record(BASE_TS + index, agent, "write", common,
                     FileEntity(agent, f"/logs/{index % 7}"), amount=1)
    store.record(BASE_TS + 600, agent, "write", common, target, amount=1)
    return store


QUERY = '''
proc c["%common%"] write file f as e1
proc r["%rare%"] read file f as e2
return distinct c, r, f
'''


class TestOrdering:
    def test_most_selective_pattern_runs_first(self, store):
        plan = plan_multievent(parse(QUERY))
        scheduled = Scheduler(store).run(plan)
        assert scheduled.report.order == ["e2", "e1"]

    def test_declaration_order_when_disabled(self, store):
        plan = plan_multievent(parse(QUERY))
        scheduled = Scheduler(store, EngineOptions(prioritize=False)).run(plan)
        assert scheduled.report.order == ["e1", "e2"]

    def test_same_matches_either_way(self, store):
        plan = plan_multievent(parse(QUERY))
        fast = Scheduler(store).run(plan)
        slow = Scheduler(store, EngineOptions(prioritize=False,
                                       propagate=False)).run(plan)
        fast_ids = {frozenset(e.id for e in events)
                    for events in fast.events.values() if events}
        # Propagation prunes e1's candidate list down to events joinable
        # with e2's matches; the final joined results are checked in
        # test_executor — here we check e2's matches agree exactly.
        e2_index = plan.data_queries[1].index
        assert ({e.id for e in fast.events[e2_index]}
                == {e.id for e in slow.events[e2_index]})


class TestPropagation:
    def test_binding_propagation_prunes_candidates(self, store):
        plan = plan_multievent(parse(QUERY))
        with_prop = Scheduler(store, EngineOptions(propagate=True)).run(plan)
        without = Scheduler(store, EngineOptions(propagate=False)).run(plan)
        e1_index = plan.data_queries[0].index
        # e2 matched only /data/secret, so propagation restricts e1 to
        # writes of that file: 1 candidate instead of 301.
        assert len(with_prop.events[e1_index]) == 1
        assert len(without.events[e1_index]) == 301

    def test_temporal_propagation_narrows_window(self):
        store = EventStore()
        agent = 1
        a = ProcessEntity(agent, 1, "a.exe")
        b = ProcessEntity(agent, 2, "b.exe")
        child = ProcessEntity(agent, 3, "c.exe")
        store.record(BASE_TS + 1000, agent, "start", a, child)
        # b starts things both before and after a's event.
        for offset in (500, 1500):
            grandchild = ProcessEntity(agent, 4 + offset, "d.exe")
            store.record(BASE_TS + offset, agent, "start", b, grandchild)
        plan = plan_multievent(parse(
            'proc a["%a.exe%"] start proc x as e1\n'
            'proc b["%b.exe%"] start proc y as e2\n'
            'with e1 before e2\nreturn y'))
        scheduled = Scheduler(store).run(plan)
        e2_matches = scheduled.events[1]
        # Only the start at +1500 can follow e1 (+1000).
        assert [e.ts for e in e2_matches] == [BASE_TS + 1500]

    def test_short_circuit_on_empty_pattern(self, store):
        plan = plan_multievent(parse(
            'proc z["%absent%"] write file f as e1\n'
            'proc c["%common%"] write file f as e2\nreturn f'))
        scheduled = Scheduler(store).run(plan)
        assert scheduled.report.short_circuited
        # The expensive pattern was never fetched.
        fetched = {t.event_var: t.fetched for t in scheduled.report.patterns}
        assert fetched.get("e2") is None


class TestTransitiveNarrowing:
    """A match on one pattern tightens every *reachable* pattern's bounds
    through chains of ``before``/``within`` relations — not just its
    direct temporal partners."""

    def _chain_store(self) -> EventStore:
        store = EventStore()
        agent = 1
        rare = ProcessEntity(agent, 1, "rare.exe")
        mid = ProcessEntity(agent, 2, "mid.exe")
        tail = ProcessEntity(agent, 3, "tail.exe")
        secret = FileEntity(agent, "/secret")
        # The selective anchor: e1 matches exactly once, at +1000.
        store.record(BASE_TS + 1000, agent, "read", rare, secret)
        # e3 candidates on both sides of the anchor; only the late one
        # can transitively follow e1 (e1 before e2, e2 before e3).
        store.record(BASE_TS + 500, agent, "write", tail, secret)
        store.record(BASE_TS + 1500, agent, "write", tail, secret)
        # e2 partners so the chain joins — plus enough noise that e2
        # stays the most expensive pattern and executes *last*: e3's
        # narrowing must then come from e1 through the unexecuted e2.
        store.record(BASE_TS + 1200, agent, "write", mid,
                     FileEntity(agent, "/mid"))
        for index in range(50):
            store.record(BASE_TS + 2000 + index, agent, "write", mid,
                         FileEntity(agent, f"/noise/{index}"))
        return store

    CHAIN = ('proc r["%rare%"] read file f as e1\n'
             'proc m["%mid%"] write file g as e2\n'
             'proc t["%tail%"] write file f as e3\n'
             'with e1 before e2, e2 before e3\n'
             'return f')

    def test_chain_narrows_unrelated_middle_hop(self):
        store = self._chain_store()
        plan = plan_multievent(parse(self.CHAIN))
        scheduled = Scheduler(store).run(plan)
        # e1 (1 match) executes first and e3 (2 matches) second; noisy e2
        # goes last.  At e3's execution its only temporal path to e1 goes
        # *through the unexecuted e2* — only the transitive closure can
        # derive e3.ts > e1.ts and drop the +500 decoy.
        assert scheduled.report.order == ["e1", "e3", "e2"]
        e3_matches = scheduled.events[2]
        assert [e.ts for e in e3_matches] == [BASE_TS + 1500]

    def test_chain_narrowing_never_changes_results(self):
        store = self._chain_store()
        plan = plan_multievent(parse(self.CHAIN))
        for pushdown in (True, False):
            for temporal_pushdown in (True, False):
                scheduled = Scheduler(store, EngineOptions(
                    pushdown=pushdown,
                    temporal_pushdown=temporal_pushdown)).run(plan)
                assert ([e.ts for e in scheduled.events[2]]
                        == [BASE_TS + 1500]), (pushdown, temporal_pushdown)

    def test_within_delays_add_along_the_chain(self):
        """``e1 before e2 within 10`` + ``e2 before e3 within 10`` bounds
        e3 to ``(e1.ts, e1.ts + 20]`` — the summed inclusive edge must
        survive exactly, one ulp later must not."""
        store = EventStore()
        agent = 1
        rare = ProcessEntity(agent, 1, "rare.exe")
        mid = ProcessEntity(agent, 2, "mid.exe")
        tail = ProcessEntity(agent, 3, "tail.exe")
        secret = FileEntity(agent, "/secret")
        store.record(BASE_TS, agent, "read", rare, secret)
        store.record(BASE_TS + 10, agent, "write", mid,
                     FileEntity(agent, "/mid"))
        # Noise *inside* e2's narrowed interval keeps e2 the most
        # expensive pattern even after temporal re-estimation, so e3
        # executes before it and e3's bound is the transitive sum, not
        # e2's direct one.
        for index in range(50):
            store.record(BASE_TS + 1 + index * 0.15, agent, "write", mid,
                         FileEntity(agent, f"/noise/{index}"))
        # Exactly at the summed inclusive bound (+20), and just past it.
        store.record(BASE_TS + 20, agent, "write", tail, secret)
        store.record(BASE_TS + 20.0001, agent, "write", tail, secret)
        plan = plan_multievent(parse(
            'proc r["%rare%"] read file f as e1\n'
            'proc m["%mid%"] write file g as e2\n'
            'proc t["%tail%"] write file f as e3\n'
            'with e1 before e2 within 10 sec, e2 before e3 within 10 sec\n'
            'return f'))
        scheduled = Scheduler(store).run(plan)
        assert scheduled.report.order == ["e1", "e3", "e2"]
        assert [e.ts for e in scheduled.events[2]] == [BASE_TS + 20]

    def test_closure_takes_tightest_path(self):
        """Two chains between the same pair: the shortest-path closure
        must keep the tighter summed ``within``."""
        from repro.engine.planner import temporal_closure
        from repro.lang.ast import TemporalRelation
        closure = temporal_closure((
            TemporalRelation("e1", "before", "e2", 100.0),
            TemporalRelation("e2", "before", "e4", 100.0),
            TemporalRelation("e1", "before", "e3", 5.0),
            TemporalRelation("e3", "before", "e4", 5.0),
        ))
        assert closure[("e1", "e4")] == 10.0
        assert closure[("e1", "e2")] == 100.0
        assert ("e4", "e1") not in closure

    def test_unbounded_hop_keeps_precedence_only(self):
        from repro.engine.planner import temporal_closure
        from repro.lang.ast import TemporalRelation
        import math
        closure = temporal_closure((
            TemporalRelation("e1", "before", "e2", 5.0),
            TemporalRelation("e2", "before", "e3", None),
        ))
        assert closure[("e1", "e3")] == math.inf
        assert closure[("e1", "e2")] == 5.0


class TestIntervalNarrowing:
    """Two-sided interval narrowing: a pattern executed *later* shrinks
    the recorded span of an earlier, broader pattern, and every bound
    derived from that span tightens with it."""

    WITHIN_CHAIN = ('proc r["%rare%"] read file f as e1\n'
                    'proc m["%mid%"] write file g as e2\n'
                    'proc t["%tail%"] write file f as e3\n'
                    'with e1 before e2 within 10 sec, '
                    'e2 before e3 within 10 sec\n'
                    'return f')

    def _store(self) -> EventStore:
        store = EventStore()
        agent = 1
        rare = ProcessEntity(agent, 1, "rare.exe")
        mid = ProcessEntity(agent, 2, "mid.exe")
        tail = ProcessEntity(agent, 3, "tail.exe")
        secret = FileEntity(agent, "/secret")
        # e2 (2 events, broad span) executes first; e1 (3 events) second.
        store.record(BASE_TS + 500, agent, "write", mid,
                     FileEntity(agent, "/mid-early"))
        store.record(BASE_TS + 1005, agent, "write", mid,
                     FileEntity(agent, "/mid-late"))
        for offset in (995.0, 996.0, 1000.0):
            store.record(BASE_TS + offset, agent, "read", rare, secret)
        # e3 candidates: only +1012 can follow a *usable* e2 event.  The
        # +1000 decoy sits inside the one-sided transitive bound from e1
        # ((e1_min, e1_min+20]) — only retro-narrowing e2's span to its
        # surviving +1005 event derives ts > 1005 and excludes it.
        store.record(BASE_TS + 505, agent, "write", tail, secret)
        store.record(BASE_TS + 800, agent, "write", tail, secret)
        store.record(BASE_TS + 1000, agent, "write", tail, secret)
        store.record(BASE_TS + 1012, agent, "write", tail, secret)
        return store

    def test_later_match_retro_narrows_executed_span(self):
        store = self._store()
        plan = plan_multievent(parse(self.WITHIN_CHAIN))
        scheduled = Scheduler(store).run(plan)
        assert scheduled.report.order == ["e2", "e1", "e3"]
        # e1's matches pin e2's usable events to (+995, +1010] — only the
        # +1005 write — so e3's bounds become (+1005, +1015] and the
        # decoys at +505/+800/+1000 never survive the scan.
        assert [e.ts for e in scheduled.events[2]] == [BASE_TS + 1012]

    def test_narrowing_is_result_invariant(self):
        store = self._store()
        plan = plan_multievent(parse(self.WITHIN_CHAIN))
        reference = None
        for options in (EngineOptions(),
                        EngineOptions(pushdown=False),
                        EngineOptions(temporal_pushdown=False),
                        EngineOptions(propagate=False)):
            scheduled = Scheduler(store, options).run(plan)
            from repro.engine.joiner import join
            rows = sorted(binding["f"].name
                          for binding in join(plan, scheduled))
            if reference is None:
                reference = rows
            assert rows == reference, options
        # One join row per e1 match (three reads pair with the same
        # surviving e2/e3 chain).
        assert reference == ["/secret"] * 3


class TestPushdown:
    def test_pushdown_matches_post_filter(self, store):
        plan = plan_multievent(parse(QUERY))
        pushed = Scheduler(store, EngineOptions(pushdown=True)).run(plan)
        filtered = Scheduler(store, EngineOptions(pushdown=False)).run(plan)
        for dq in plan.data_queries:
            assert ({e.id for e in pushed.events[dq.index]}
                    == {e.id for e in filtered.events[dq.index]})

    def test_pushdown_shrinks_fetch(self, store):
        """With pushdown the backend never fetches the 301 writes that the
        post-filter variant materializes before discarding."""
        plan = plan_multievent(parse(QUERY))
        pushed = Scheduler(store, EngineOptions(pushdown=True)).run(plan)
        filtered = Scheduler(store, EngineOptions(pushdown=False)).run(plan)
        fetched_pushed = {t.event_var: t.fetched
                          for t in pushed.report.patterns}
        fetched_filtered = {t.event_var: t.fetched
                            for t in filtered.report.patterns}
        assert fetched_pushed["e1"] < fetched_filtered["e1"]

    def test_bindings_reorder_remaining_patterns(self):
        """Re-estimation under propagated bindings flips the order of the
        not-yet-executed patterns when propagation changed their cost."""
        store = EventStore()
        agent = 1
        rare = ProcessEntity(agent, 1, "rare.exe")
        noisy = ProcessEntity(agent, 2, "noisy.exe")
        busy = ProcessEntity(agent, 3, "busy.exe")
        secret = FileEntity(agent, "/secret")
        store.record(BASE_TS, agent, "read", rare, secret)
        store.record(BASE_TS + 1, agent, "write", busy, secret)
        for index in range(200):
            store.record(BASE_TS + 2 + index, agent, "write", noisy,
                         FileEntity(agent, f"/noise/{index}"))
        for index in range(300):
            store.record(BASE_TS + 300 + index, agent, "write", busy,
                         FileEntity(agent, f"/busy/{index}"))
        plan = plan_multievent(parse(
            'proc r["%rare%"] read file f as e1\n'
            'proc n["%noisy%"] write file g as e2\n'
            'proc b["%busy%"] write file f as e3\n'
            'return f'))
        # Upfront estimates: e1=1, e2=200, e3=301 — but once e1 pins f to
        # /secret, e3 collapses to 1 and must jump ahead of e2.
        adaptive = Scheduler(store).run(plan)
        assert adaptive.report.order == ["e1", "e3", "e2"]
        static = Scheduler(store, EngineOptions(pushdown=False)).run(plan)
        assert static.report.order == ["e1", "e2", "e3"]
        # Either order produces the same per-pattern matches.
        for dq in plan.data_queries:
            assert ({e.id for e in adaptive.events[dq.index]}
                    == {e.id for e in static.events[dq.index]})


class TestReport:
    def test_report_describes_execution(self, store):
        plan = plan_multievent(parse(QUERY))
        scheduled = Scheduler(store).run(plan)
        text = scheduled.report.describe()
        assert "pattern order" in text
        assert "e2" in text and "e1" in text
        assert "ms" in text
