"""Chaos-harness child: stream into a durable store, crash at a fault point.

Run as a subprocess by ``tests/test_crash_recovery.py`` (and by the CI
chaos job).  It regenerates the deterministic demo scenario, streams it
through an :class:`~repro.stream.bus.EventBus` into a
:class:`~repro.storage.durable.DurableStore` with one armed fault, and —
in ``kill`` mode — dies by SIGKILL mid-write, exactly like ``kill -9``
or a power cut.  The parent then runs ``recover()`` on the directory and
asserts the differential property: every catalog query returns
byte-identical results to a fresh store holding the same event prefix.

Exit codes: 0 — the whole stream completed and the fault never fired
(the parent treats this as a harness failure for ``kill`` runs);
2 — bad arguments.  A fired ``kill`` fault exits via SIGKILL (the
parent sees returncode ``-9``); ``error``-mode faults exit 0 after the
triggered append is absorbed.
"""

from __future__ import annotations

import argparse
import sys

from repro.storage.durable import DurableStore
from repro.storage.faults import Fault, FaultInjector
from repro.telemetry import build_demo_scenario


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--dir", required=True)
    parser.add_argument("--backend", default="row")
    parser.add_argument("--fault", required=True,
                        help="point[:mode[:skip]] (see Fault.from_spec)")
    parser.add_argument("--events-per-host", type=int, default=200)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--sync", default="always")
    args = parser.parse_args(argv)

    from repro.storage.faults import FaultTriggered
    from repro.stream.bus import EventBus

    events = build_demo_scenario(events_per_host=args.events_per_host,
                                 seed=args.seed).events()
    fault = Fault.from_spec(args.fault)
    injector = FaultInjector([fault])
    # A quarter-stream checkpoint cadence puts every checkpoint.* fault
    # point on the path of a mid-ingest run, not just an explicit call.
    store = DurableStore(args.dir, backend=args.backend, sync=args.sync,
                        auto_checkpoint=max(1, len(events) // 4),
                        faults=injector)
    bus = EventBus(batch_size=args.batch_size)
    bus.attach_store(store)
    try:
        bus.publish_many(events)
        bus.close()
    except FaultTriggered:
        # error/torn/bitflip/truncate modes: the injected failure
        # surfaces in-process.  Stop writing immediately — a real
        # process would crash here — and leave the directory as-is.
        return 0
    store.close()
    # Clean completion: report whether the fault ever fired so the
    # parent can distinguish "survived an error fault" from "the armed
    # point was never reached" (a harness bug worth failing loudly).
    print(f"fired={len(injector.fired)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
