"""Tests for entity interning and event merging."""

import pytest
from hypothesis import given, strategies as st

from repro.model.entities import FileEntity, ProcessEntity
from repro.model.events import Event
from repro.storage.dedup import EntityInterner, EventMerger


def proc(pid=10):
    return ProcessEntity(1, pid, "p.exe")


def write_event(eid, ts, amount=10, pid=10, path="/tmp/f"):
    return Event(id=eid, ts=ts, agentid=1, operation="write",
                 subject=proc(pid), object=FileEntity(1, path),
                 amount=amount)


class TestEntityInterner:
    def test_same_identity_returns_same_object(self):
        interner = EntityInterner()
        a = interner.intern(proc())
        b = interner.intern(proc())
        assert a is b
        assert len(interner) == 1
        assert interner.hits == 1 and interner.misses == 1

    def test_different_identity_kept_apart(self):
        interner = EntityInterner()
        interner.intern(proc(pid=1))
        interner.intern(proc(pid=2))
        assert len(interner) == 2
        assert interner.dedup_ratio == 0.0

    def test_lookup(self):
        interner = EntityInterner()
        entity = interner.intern(proc())
        assert interner.lookup(entity.identity) is entity
        assert interner.lookup(("nope",)) is None


class TestEventMerger:
    def test_merges_burst_and_sums_amounts(self):
        merger = EventMerger(merge_window=1.0)
        out = []
        for i in range(5):
            out.extend(merger.push(write_event(i, 0.1 * i, amount=10)))
        out.extend(merger.flush())
        assert len(out) == 1
        assert out[0].amount == 50
        assert merger.merged_away == 4

    def test_gap_larger_than_window_splits(self):
        merger = EventMerger(merge_window=1.0)
        out = list(merger.push(write_event(1, 0.0)))
        out.extend(merger.push(write_event(2, 5.0)))
        out.extend(merger.flush())
        assert len(out) == 2

    def test_different_keys_never_merge(self):
        merger = EventMerger(merge_window=10.0)
        merger.push(write_event(1, 0.0, path="/a"))
        merger.push(write_event(2, 0.1, path="/b"))
        merger.push(write_event(3, 0.2, pid=99))
        assert len(merger.flush()) == 3
        assert merger.merged_away == 0

    def test_merged_event_keeps_first_timestamp(self):
        merger = EventMerger(merge_window=1.0)
        merger.push(write_event(1, 3.0))
        merger.push(write_event(2, 3.5))
        merged = merger.flush()[0]
        assert merged.ts == 3.0
        assert merged.id == 1

    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=1000)), max_size=50))
    def test_amount_is_conserved(self, specs):
        """Merging never loses bytes: total amount in == total out."""
        specs.sort(key=lambda pair: pair[0])
        merger = EventMerger(merge_window=2.0)
        out = []
        for index, (ts, amount) in enumerate(specs):
            out.extend(merger.push(write_event(index, ts, amount=amount)))
        out.extend(merger.flush())
        assert sum(e.amount for e in out) == sum(a for _t, a in specs)
        assert len(out) + merger.merged_away == len(specs)
