"""Tests for selectivity estimation (the pruning-power signal)."""

import pytest

from repro.model.entities import FileEntity, NetworkEntity, ProcessEntity
from repro.model.timeutil import Window
from repro.storage.partition import Partition
from repro.storage.stats import (PatternProfile, estimate_partition,
                                 estimate_total)

from tests.conftest import BASE_TS


@pytest.fixture
def partition() -> Partition:
    from repro.model.events import Event
    part = Partition((1, 0))
    writer = ProcessEntity(1, 1, "writer.exe")
    rare = ProcessEntity(1, 2, "rare.exe")
    for index in range(90):
        part.add(Event(id=index, ts=float(index), agentid=1,
                       operation="write", subject=writer,
                       object=FileEntity(1, f"/bulk/{index % 9}"),
                       amount=1))
    for index in range(10):
        part.add(Event(id=100 + index, ts=100.0 + index, agentid=1,
                       operation="read", subject=rare,
                       object=FileEntity(1, "/secret"), amount=1))
    return part


class TestEstimatePartition:
    def test_exact_subject_estimate_is_exact(self, partition):
        profile = PatternProfile(event_type="file",
                                 operations=frozenset({"read"}),
                                 subject_exact="rare.exe")
        assert estimate_partition(partition, profile, None) == 10

    def test_type_operation_bound(self, partition):
        profile = PatternProfile(event_type="file",
                                 operations=frozenset({"write"}))
        assert estimate_partition(partition, profile, None) == 90

    def test_min_of_bounds_wins(self, partition):
        # subject narrows to 10, operation narrows to 90: min is 10.
        profile = PatternProfile(event_type="file",
                                 operations=frozenset({"read", "write"}),
                                 subject_exact="rare.exe")
        assert estimate_partition(partition, profile, None) == 10

    def test_like_estimates_via_key_scan(self, partition):
        profile = PatternProfile(event_type="file",
                                 operations=frozenset({"read"}),
                                 subject_like="%rare%")
        assert estimate_partition(partition, profile, None) == 10

    def test_object_exact(self, partition):
        profile = PatternProfile(event_type="file",
                                 operations=frozenset({"read"}),
                                 object_exact="/secret")
        assert estimate_partition(partition, profile, None) == 10

    def test_object_like(self, partition):
        profile = PatternProfile(event_type="file",
                                 operations=frozenset({"write"}),
                                 object_like="%/bulk/0%")
        assert estimate_partition(partition, profile, None) == 10

    def test_window_scales_estimate(self, partition):
        profile = PatternProfile(event_type="file",
                                 operations=frozenset({"write"}))
        # Half the partition's time range -> roughly half the bound.
        scaled = estimate_partition(partition, profile, Window(0.0, 50.0))
        assert 30 <= scaled <= 60

    def test_empty_window_is_zero(self, partition):
        profile = PatternProfile(event_type="file",
                                 operations=frozenset({"write"}))
        assert estimate_partition(partition, profile,
                                  Window(5000.0, 6000.0)) == 0

    def test_absent_value_estimates_zero(self, partition):
        profile = PatternProfile(event_type="file",
                                 operations=frozenset({"read"}),
                                 subject_exact="ghost.exe")
        assert estimate_partition(partition, profile, None) == 0

    def test_empty_partition(self):
        empty = Partition((9, 0))
        profile = PatternProfile(event_type="file", operations=None)
        assert estimate_partition(empty, profile, None) == 0

    def test_total_sums_partitions(self, partition):
        profile = PatternProfile(event_type="file",
                                 operations=frozenset({"read"}))
        assert estimate_total([partition, partition], profile, None) == 20


class TestEstimateOrdersPatterns:
    def test_estimates_track_true_cardinality_order(self, partition):
        """The estimate need not be exact, but must order patterns right."""
        rare = PatternProfile(event_type="file",
                              operations=frozenset({"read"}),
                              subject_exact="rare.exe")
        bulk = PatternProfile(event_type="file",
                              operations=frozenset({"write"}))
        assert (estimate_partition(partition, rare, None)
                < estimate_partition(partition, bulk, None))
