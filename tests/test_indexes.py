"""Tests for posting/time indexes and LIKE semantics."""

import re

import pytest
from hypothesis import given, strategies as st

from repro.model.entities import FileEntity, ProcessEntity
from repro.model.events import Event
from repro.storage.indexes import (PostingIndex, TimeIndex, clip_to_window,
                                   like_match, like_to_regex)


def make_event(eid: int, ts: float, name: str) -> Event:
    subject = ProcessEntity(1, 10, name)
    return Event(id=eid, ts=ts, agentid=1, operation="read",
                 subject=subject, object=FileEntity(1, f"/f/{eid}"))


class TestLike:
    @pytest.mark.parametrize("pattern,value,expected", [
        ("%cmd.exe", "cmd.exe", True),
        ("%cmd.exe", r"C:\windows\cmd.exe", True),
        ("%cmd.exe", "cmd.exe.bak", False),
        ("cmd%", "cmd.exe", True),
        ("%mal%", "normal.txt", True),
        ("_md.exe", "cmd.exe", True),
        ("_md.exe", "md.exe", False),
        ("CMD.EXE", "cmd.exe", True),   # case-insensitive like SQLite
        ("a.b", "aXb", False),           # dot is literal
        ("%", "", True),
        ("", "", True),
        ("", "x", False),
    ])
    def test_matches(self, pattern, value, expected):
        assert like_match(pattern, value) is expected

    @given(st.text(alphabet="ab%_", max_size=8),
           st.text(alphabet="ab", max_size=8))
    def test_agrees_with_naive_regex(self, pattern, value):
        naive = "^" + "".join(
            ".*" if c == "%" else "." if c == "_" else re.escape(c)
            for c in pattern) + "$"
        expected = re.match(naive, value, re.IGNORECASE) is not None
        assert like_match(pattern, value) is expected

    def test_regex_special_chars_escaped(self):
        assert like_match("a+b", "a+b")
        assert not like_match("a+b", "aab")

    def test_compiled_patterns_are_cached(self):
        # Repeated filter evaluation must not recompile the regex: the
        # lru_cache hands back the identical compiled pattern object.
        from repro.storage.indexes import like_to_regex
        assert like_to_regex("%cache-me%") is like_to_regex("%cache-me%")
        info = like_to_regex.cache_info()
        assert info.maxsize and info.hits >= 1


class TestPostingIndex:
    def test_lookup_exact(self):
        index = PostingIndex()
        e1, e2 = make_event(1, 1.0, "a.exe"), make_event(2, 2.0, "b.exe")
        index.add("a.exe", e1)
        index.add("b.exe", e2)
        assert index.lookup("a.exe") == [e1]
        assert index.lookup("missing") == []

    def test_lookup_like_unions_matching_keys(self):
        index = PostingIndex()
        events = [make_event(i, float(i), f"tool{i}.exe") for i in range(5)]
        for event in events:
            index.add(event.subject.exe_name, event)
        matched = index.lookup_like("tool%.exe")
        assert sorted(e.id for e in matched) == [0, 1, 2, 3, 4]
        assert index.lookup_like("%3.exe") == [events[3]]

    def test_counts(self):
        index = PostingIndex()
        for i in range(4):
            index.add("x", make_event(i, float(i), "x"))
        index.add("y", make_event(9, 9.0, "y"))
        assert index.count("x") == 4
        assert index.count("nope") == 0
        assert index.count_like("%") == 5
        assert len(index) == 5
        assert index.distinct == 2

    def test_non_string_keys_ignored_by_like(self):
        index = PostingIndex()
        index.add(("file", "x"), make_event(1, 1.0, "x"))
        assert index.lookup_like("%") == []
        assert index.count_like("%") == 0

    def test_lookup_many_intersects_oversized_key_sets(self):
        """A key set larger than the posting vocabulary flips to key
        intersection — same merged, (ts, id)-sorted result either way."""
        index = PostingIndex()
        events = [make_event(i, float(10 - i), f"k{i % 3}")
                  for i in range(9)]
        for event in events:
            index.add(event.subject.exe_name, event)
        huge = frozenset({f"k{i}" for i in range(50)})  # 50 keys > 3 distinct
        via_intersection = index.lookup_many(huge, compact=True)
        via_probes = index.lookup_many(huge, compact=False)
        assert via_intersection == via_probes
        assert [e.ts for e in via_intersection] == sorted(
            e.ts for e in events)
        assert (index.count_many(huge, compact=True)
                == index.count_many(huge, compact=False) == 9)


class TestTimeIndex:
    def test_range_is_half_open(self):
        index = TimeIndex()
        events = [make_event(i, float(i), "x") for i in range(10)]
        for event in events:
            index.add(event)
        got = index.range(2.0, 5.0)
        assert [e.id for e in got] == [2, 3, 4]
        assert index.count_range(2.0, 5.0) == 3

    def test_out_of_order_inserts_are_sorted_lazily(self):
        index = TimeIndex()
        for ts in (5.0, 1.0, 3.0):
            index.add(make_event(int(ts), ts, "x"))
        assert [e.ts for e in index.all()] == [1.0, 3.0, 5.0]

    @given(st.lists(st.floats(min_value=0, max_value=100), max_size=40))
    def test_range_equals_linear_filter(self, timestamps):
        index = TimeIndex()
        events = [make_event(i, ts, "x")
                  for i, ts in enumerate(timestamps)]
        for event in events:
            index.add(event)
        got = index.range(25.0, 75.0)
        expected = clip_to_window(sorted(events,
                                         key=lambda e: (e.ts, e.id)),
                                  25.0, 75.0)
        assert got == expected
