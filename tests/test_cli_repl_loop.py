"""Tests for the interactive REPL loop (multi-line entry, commands)."""

import io

from repro import AiqlSession
from repro.ui.cli import run

from tests.conftest import make_exfil_store


def drive(script: str) -> str:
    session = AiqlSession(store=make_exfil_store(noise=50))
    stdout = io.StringIO()
    run(session, stdin=io.StringIO(script), stdout=stdout)
    return stdout.getvalue()


class TestReplLoop:
    def test_banner_shown(self):
        assert "AIQL investigation console" in drive("")

    def test_multiline_query_submitted_on_blank_line(self):
        out = drive('proc p["%sbblv%"] read file f as e1\n'
                    'return p, f\n'
                    '\n')
        assert "sbblv.exe" in out
        assert "backup1.dmp" in out

    def test_dot_commands_are_immediate(self):
        out = drive(".describe\n")
        assert "events" in out

    def test_quit_stops_loop(self):
        out = drive(".quit\n.describe\n")
        assert "bye" in out
        assert "partitions" not in out

    def test_syntax_error_shows_caret(self):
        out = drive("proc p[%oops\n\n")
        assert "^" in out

    def test_two_queries_in_sequence(self):
        out = drive('proc p["%cmd.exe%"] start proc c as e1\nreturn c\n\n'
                    'proc p["%sqlservr%"] write file f as e1\nreturn f\n\n')
        assert "osql.exe" in out
        assert "backup1.dmp" in out

    def test_input_is_highlighted(self):
        out = drive('proc p["%cmd.exe%"] start proc c as e1\nreturn c\n\n')
        assert "\x1b[" in out  # ANSI colors echoed
