"""Round-trip tests for the AIQL unparser (parse . pretty == identity)."""

import pytest
from hypothesis import given, strategies as st

from repro.lang.parser import parse
from repro.lang.pretty import pretty

EXAMPLES = [
    # The three paper queries.
    '''(at "06/10/2026")
agentid = 3
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
proc p4 read || write ip i1[dstip="10.0.0.129"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, p2, p3, f1, p4, i1''',
    '''(at "06/10/2026")
forward: proc p1["%/bin/cp%", agentid = 1] ->[write] file f1["%mal%"]
<-[read] proc p2["%apache%"]
->[connect] proc p3[agentid=2]
->[write] file f2["%mal%"]
return f1, p1, p2, p3, f2''',
    '''(at "06/10/2026")
agentid = 3
window = 1 min, step = 10 sec
proc p write ip i[dstip="10.0.0.129"] as evt
return p, avg(evt.amount) as amt
group by p
having (amt > 2 * (amt + amt[1] + amt[2]) / 3)''',
    # Corner shapes.
    '(from "06/10/2026" to "06/12/2026")\n'
    'proc a start proc b as e1 return b.pid as child',
    'proc a[exe_name in ("x.exe", "y.exe")] write file f as e1 '
    'return distinct f, e1.amount',
    'proc a start proc b as e1\nproc b start proc c as e2\n'
    'with e1 before e2 within 5 min\nreturn c',
    'backward: file f["%evil%"] <-[write] proc p return p',
    'window = 2 min, step = 30 sec\n'
    'proc p read || write file f as evt\n'
    'return p, count(*) as c, max(evt.amount) as m\n'
    'group by p\nhaving not (c < 3 and m > 100) or c = 0',
]


@pytest.mark.parametrize("source", EXAMPLES)
def test_roundtrip_fixed_examples(source):
    first = parse(source)
    rendered = pretty(first)
    second = parse(rendered)
    assert first == second
    # Idempotence: pretty of a canonical form is itself.
    assert pretty(second) == rendered


# Generative round-trip: build random (but valid) multievent queries.
_name = st.sampled_from(["cmd.exe", "osql.exe", "x%", "%mal%", "a_b"])
_entity_var = st.sampled_from(["p1", "p2", "f1", "i1"])


@st.composite
def multievent_query(draw):
    pattern_count = draw(st.integers(min_value=1, max_value=3))
    lines = []
    event_vars = []
    for index in range(pattern_count):
        subject_constraint = draw(st.sampled_from(
            ['', '["%cmd.exe"]', '[pid = 7]', '["x", user = "bob"]']))
        object_kind = draw(st.sampled_from(["file", "ip", "proc"]))
        operation = {"file": "write", "ip": "read || write",
                     "proc": "start"}[object_kind]
        object_constraint = draw(st.sampled_from(
            ['', '["%x%"]', '[agentid = 2]']))
        event_var = f"e{index}"
        event_vars.append(event_var)
        lines.append(f"proc s{index}{subject_constraint} {operation} "
                     f"{object_kind} o{index}{object_constraint} "
                     f"as {event_var}")
    if len(event_vars) > 1 and draw(st.booleans()):
        lines.append(f"with {event_vars[0]} before {event_vars[1]}")
    distinct = "distinct " if draw(st.booleans()) else ""
    lines.append(f"return {distinct}o0")
    return "\n".join(lines)


@given(multievent_query())
def test_roundtrip_generated_multievent(source):
    first = parse(source)
    assert parse(pretty(first)) == first
