"""Unit tests for the continuous-query subsystem.

Bus semantics (batching, watermarks, backpressure, threaded delivery),
incremental matcher behavior (exactly-once completion, out-of-order
arrival inside the lateness bound, watermark eviction), anomaly panes,
and the session-level register/stream surface.  The stream-vs-batch
equivalence over the full paper catalogs lives in
``test_stream_differential.py``.
"""

from __future__ import annotations

import math
import threading
import time

import pytest

from repro import AiqlSession
from repro.errors import SemanticError, StorageError
from repro.lang.parser import parse
from repro.model.entities import FileEntity, ProcessEntity
from repro.model.events import Event
from repro.storage.store import EventStore
from repro.stream import ContinuousRuntime, EventBus, MultieventMatcher
from repro.engine.planner import plan_multievent


def _event(eid: int, ts: float, op: str = "write", *, agent: int = 1,
           pid: int = 10, exe: str = "w.exe", path: str = "/f",
           amount: int = 0) -> Event:
    return Event(id=eid, ts=ts, agentid=agent, operation=op,
                 subject=ProcessEntity(agent, pid, exe),
                 object=FileEntity(agent, path), amount=amount)


# ---------------------------------------------------------------------------
# EventBus
# ---------------------------------------------------------------------------

class TestEventBus:
    def test_batches_delivered_in_order_with_watermark(self):
        bus = EventBus(batch_size=3)
        seen: list[tuple[list[int], float]] = []
        bus.subscribe(lambda batch, wm: seen.append(
            ([e.id for e in batch], wm)))
        for i in range(7):
            bus.publish(_event(i + 1, float(i)))
        assert [ids for ids, _wm in seen] == [[1, 2, 3], [4, 5, 6]]
        bus.flush()
        assert [ids for ids, _wm in seen][-1] == [7]
        # Watermark is the maximum delivered timestamp (lateness 0).
        assert seen[-1][1] == 6.0
        assert bus.watermark == 6.0

    def test_lateness_lags_the_watermark(self):
        bus = EventBus(batch_size=1, lateness=2.5)
        bus.publish(_event(1, 10.0))
        assert bus.watermark == 7.5

    def test_attached_store_receives_batches(self):
        store = EventStore()
        bus = EventBus(batch_size=4)
        bus.attach_store(store)
        bus.publish_many(_event(i + 1, float(i)) for i in range(10))
        assert len(store) == 8          # two full batches committed
        bus.close()
        assert len(store) == 10

    def test_flush_commits_partial_batches_to_the_store(self):
        store = EventStore()
        bus = EventBus(batch_size=100)
        bus.attach_store(store)
        bus.publish(_event(1, 1.0))
        assert len(store) == 0
        bus.flush()
        assert len(store) == 1

    def test_publish_after_close_raises(self):
        bus = EventBus()
        bus.close()
        with pytest.raises(StorageError):
            bus.publish(_event(1, 1.0))

    def test_threaded_delivery_preserves_order_and_backpressure(self):
        bus = EventBus(batch_size=5, max_pending=2)
        seen: list[int] = []
        in_flight = threading.Event()

        def slow_consumer(batch, _wm):
            in_flight.set()
            time.sleep(0.002)
            seen.extend(e.id for e in batch)

        bus.subscribe(slow_consumer)
        bus.start()
        bus.publish_many(_event(i + 1, float(i)) for i in range(200))
        bus.close()
        assert seen == list(range(1, 201))
        assert in_flight.is_set()
        assert bus.stats.max_pending <= 2    # the queue stayed bounded
        assert bus.stats.published == 200

    def test_threaded_consumer_error_surfaces_to_publisher(self):
        bus = EventBus(batch_size=1)

        def broken(_batch, _wm):
            raise RuntimeError("consumer exploded")

        bus.subscribe(broken)
        bus.start()
        with pytest.raises(RuntimeError, match="consumer exploded"):
            for i in range(1000):
                bus.publish(_event(i + 1, float(i)))
                bus.flush()

    def test_store_still_receives_batches_queued_after_an_error(self):
        """A broken subscriber must not cost the attached store events
        that publish() already accepted."""
        store = EventStore()
        bus = EventBus(batch_size=2, max_pending=64)
        bus.attach_store(store)
        calls = []

        def broken(batch, _wm):
            calls.append(len(batch))
            raise RuntimeError("subscriber down")

        bus.subscribe(broken)
        bus.start()
        for i in range(10):
            bus.publish(_event(i + 1, float(i)))
        with pytest.raises(RuntimeError, match="subscriber down"):
            bus.close()
        assert len(store) == 10          # every batch reached the store
        assert len(calls) == 5           # and delivery was attempted

    def test_merge_window_dedups_on_the_store_path(self):
        store = EventStore()
        bus = EventBus(batch_size=10)
        bus.attach_store(store, merge_window=5.0)
        # Three identical accesses within the merge window collapse.
        for i in range(3):
            bus.publish(_event(i + 1, float(i), amount=10))
        bus.close()
        assert len(store) == 1
        assert store.scan()[0].amount == 30


# ---------------------------------------------------------------------------
# MultieventMatcher
# ---------------------------------------------------------------------------

WITHIN_AIQL = ('proc p["a.exe"] write file f as e1\n'
               'proc q["b.exe"] read file f as e2\n'
               'with e1 before e2 within 10 sec\n'
               'return f')


class TestMultieventMatcher:
    def _matcher(self, aiql: str = WITHIN_AIQL) -> MultieventMatcher:
        return MultieventMatcher(plan_multievent(parse(aiql)))

    @staticmethod
    def _write(eid, ts, exe="a.exe", path="/x"):
        return _event(eid, ts, "write", pid=1, exe=exe, path=path)

    @staticmethod
    def _read(eid, ts, exe="b.exe", path="/x"):
        return _event(eid, ts, "read", pid=2, exe=exe, path=path)

    def test_match_emitted_exactly_once_by_last_arrival(self):
        matcher = self._matcher()
        assert matcher.push(0, self._write(1, 100.0)) == []
        matches = matcher.push(1, self._read(2, 105.0))
        assert len(matches) == 1
        binding = matches[0]
        assert binding["e1"].id == 1 and binding["e2"].id == 2
        # A second read pairs with the same write — one new match only.
        assert len(matcher.push(1, self._read(3, 106.0))) == 1

    def test_within_bound_is_inclusive_and_before_is_strict(self):
        matcher = self._matcher()
        matcher.push(0, self._write(1, 100.0))
        assert len(matcher.push(1, self._read(2, 110.0))) == 1   # == within
        assert matcher.push(1, self._read(3, 110.5)) == []       # past it
        assert matcher.push(1, self._read(4, 100.0)) == []       # tie: strict

    def test_out_of_order_completion_still_matches(self):
        """The successor arriving before its predecessor (inside the
        lateness allowance) is found when the predecessor probes back."""
        matcher = self._matcher()
        assert matcher.push(1, self._read(2, 105.0)) == []
        matches = matcher.push(0, self._write(1, 100.0))
        assert len(matches) == 1
        assert matches[0]["e1"].id == 1 and matches[0]["e2"].id == 2

    def test_shared_variable_joins_on_identity(self):
        matcher = self._matcher()
        matcher.push(0, self._write(1, 100.0, path="/x"))
        assert matcher.push(1, self._read(2, 101.0, path="/other")) == []
        assert len(matcher.push(1, self._read(3, 102.0, path="/x"))) == 1

    def test_watermark_eviction_bounds_state(self):
        matcher = self._matcher()
        # Retention: e1 must be kept 10s (the within), e2 can go at the
        # watermark (every partner strictly precedes it).
        assert matcher.retention == (10.0, 0.0)
        for i in range(100):
            matcher.push(0, self._write(i + 1, float(i)))
            matcher.evict(float(i))
            assert matcher.state_size() <= 12
        assert matcher.evicted > 0

    def test_eviction_keeps_the_inclusive_within_edge(self):
        matcher = self._matcher()
        matcher.push(0, self._write(1, 100.0))
        matcher.evict(110.0)    # a partner at ts == 110 is still legal
        assert len(matcher.push(1, self._read(2, 110.0))) == 1

    def test_unconstrained_patterns_are_never_evicted(self):
        matcher = self._matcher('proc p["a.exe"] write file f as e1\n'
                                'proc q["b.exe"] read file f as e2\n'
                                'return f')
        assert matcher.retention == (math.inf, math.inf)
        matcher.push(0, self._write(1, 100.0))
        matcher.evict(1e12)
        assert matcher.state_size() == 1

    def test_single_pattern_query_holds_no_state(self):
        matcher = self._matcher('proc p["a.exe"] write file f as e1\n'
                                'return f')
        assert len(matcher.push(0, self._write(1, 100.0))) == 1
        assert matcher.state_size() == 0


# ---------------------------------------------------------------------------
# ContinuousRuntime + session surface
# ---------------------------------------------------------------------------

class TestContinuousRuntime:
    def test_callback_fires_per_match_with_distinct(self):
        session = AiqlSession()
        rows: list[tuple] = []
        stream = session.stream(batch_size=2)
        session.register('proc p write file f as e1 return distinct f',
                         callback=lambda _q, row: rows.append(row))
        stream.publish_many([
            _event(1, 1.0, path="/a"),
            _event(2, 2.0, path="/a"),
            _event(3, 3.0, path="/b"),
        ])
        stream.close()
        assert rows == [("/a",), ("/b",)]   # distinct applied live

    def test_register_rejects_unparseable_kind(self):
        session = AiqlSession()
        with pytest.raises(SemanticError):
            session.stream().runtime.register(object())  # type: ignore

    def test_stream_appends_to_the_session_store(self):
        session = AiqlSession()
        stream = session.stream(batch_size=4)
        stream.publish_many(_event(i + 1, float(i)) for i in range(9))
        stream.close()
        assert session.event_count == 9
        assert session.query('proc p write file f as e1 return f').rows

    def test_anomaly_panes_close_on_watermark_not_only_at_eos(self):
        session = AiqlSession()
        alerts: list[tuple] = []
        stream = session.stream(batch_size=1)
        standing = session.register(
            'window = 10 sec, step = 10 sec\n'
            'proc p write file f as evt\n'
            'return p, count(evt) as n\n'
            'group by p\n'
            'having n > 2',
            callback=lambda _q, row: alerts.append(row))
        for i in range(4):                       # pane [0, 10): 4 writes
            stream.publish(_event(i + 1, float(i)))
        stream.publish(_event(9, 25.0))          # watermark passes pane 1
        stream.flush()
        assert len(alerts) == 1                  # emitted before close
        assert alerts[0][2] == 4
        stream.close()
        assert standing.result().rows[0] == alerts[0]

    def test_dependency_query_streams_like_its_rewrite(self):
        session = AiqlSession()
        standing = session.register(
            'forward: proc m["a.exe"] ->[write] file f["%/x%"] return m, f')
        stream = session.stream()
        stream.publish(_event(1, 1.0, exe="a.exe", path="/x"))
        stream.close()
        result = standing.result()
        assert result.kind == "dependency"
        assert result.rows == session.query(
            'forward: proc m["a.exe"] ->[write] file f["%/x%"] '
            'return m, f').rows

    def test_entity_interning_matches_store_first_wins(self):
        """Two equal-identity subjects with different display attributes:
        stream projections must agree with the store's interned view."""
        session = AiqlSession()
        standing = session.register('proc p write file f as e1 return p, f')
        first = ProcessEntity(1, 10, "first.exe")
        second = ProcessEntity(1, 10, "second.exe")   # same identity
        stream = session.stream()
        stream.publish(Event(1, 1.0, 1, "write", first, FileEntity(1, "/f")))
        stream.publish(Event(2, 2.0, 1, "write", second, FileEntity(1, "/f")))
        stream.close()
        batch = session.query('proc p write file f as e1 return p, f')
        assert standing.result().rows == batch.rows

    def test_result_before_close_reflects_progress(self):
        session = AiqlSession()
        stream = session.stream(batch_size=1)   # configure before register
        standing = session.register('proc p write file f as e1 return f')
        stream.publish(_event(1, 1.0, path="/a"))
        assert standing.result().rows == [("/a",)]
        stream.close()

    def test_stream_is_recreated_after_close(self):
        session = AiqlSession()
        first = session.stream()
        first.close()
        second = session.stream()
        assert second is not first

    def test_configuring_an_active_stream_raises(self):
        """register() creates the stream lazily, so a later configuring
        stream(...) call must fail loudly instead of silently ignoring
        the requested configuration."""
        session = AiqlSession()
        session.register('proc p write file f as e1 return f')
        with pytest.raises(StorageError, match="already active"):
            session.stream(batch_size=1)
        assert session.stream() is session.stream()   # bare access is fine

    def test_callback_only_mode_emits_raw_matches_for_distinct(self):
        """Bounded-memory mode cannot keep a distinct seen-set, so the
        callback sees every match (raw), not the deduplicated stream."""
        session = AiqlSession()
        rows: list[tuple] = []
        stream = session.stream(batch_size=1)
        session.register('proc p write file f as e1 return distinct f',
                         callback=lambda _q, row: rows.append(row),
                         retain_results=False)
        stream.publish_many([_event(1, 1.0, path="/a"),
                             _event(2, 2.0, path="/a")])
        stream.close()
        assert rows == [("/a",), ("/a",)]

    def test_callback_only_mode_retains_nothing(self):
        session = AiqlSession()
        rows: list[tuple] = []
        stream = session.stream(batch_size=1)
        standing = session.register(
            'proc p write file f as e1 return f',
            callback=lambda _q, row: rows.append(row),
            retain_results=False)
        stream.publish_many([_event(i + 1, float(i)) for i in range(5)])
        stream.close()
        assert len(rows) == 5                    # callback saw every match
        assert standing.matches == 5             # counters still accurate
        assert standing.result().rows == []      # nothing accumulated
        assert "callback-only" in standing.result().report

    def test_session_recovers_after_consumer_error_on_close(self):
        """A deferred delivery error must not leave a zombie stream: the
        session hands out a fresh one afterwards."""
        session = AiqlSession()
        first = session.stream(threaded=True, batch_size=1)

        def broken(_q, _row):
            raise RuntimeError("alert sink down")

        session.register('proc p write file f as e1 return f',
                         callback=broken)
        first.publish(_event(1, 1.0))
        with pytest.raises(RuntimeError, match="alert sink down"):
            first.close()
        assert first.closed
        second = session.stream()
        assert second is not first
        second.publish(_event(2, 2.0))
        second.close()
        assert session.event_count == 2

    def test_interning_covers_events_no_query_matches(self):
        """The first-wins instance must be fixed by the *stream*, not by
        the first event a standing query happens to match — otherwise
        projections diverge from the store's interned view."""
        session = AiqlSession()
        standing = session.register(
            'proc p read file f as e1 return p, f')
        first = ProcessEntity(1, 10, "first.exe")
        second = ProcessEntity(1, 10, "second.exe")   # same identity
        stream = session.stream()
        # The first appearance is a *write* — dispatched to no pattern.
        stream.publish(Event(1, 1.0, 1, "write", first, FileEntity(1, "/f")))
        stream.publish(Event(2, 2.0, 1, "read", second, FileEntity(1, "/f")))
        stream.close()
        batch = session.query('proc p read file f as e1 return p, f')
        assert standing.result().rows == batch.rows == [("first.exe", "/f")]


class TestStreamCli:
    def test_stream_command_prints_matches_and_summary(self, capsys):
        import io

        from repro.ui.main import main

        out = io.StringIO()
        code = main([
            "stream", "--scenario", "demo", "--events-per-host", "60",
            "--max-rows", "3",
            'proc p write ip i[dstip = "203.0.113.129"] as e1 '
            'return distinct p, i',
        ], stdout=out)
        text = out.getvalue()
        assert code == 0
        assert "standing queries" in text
        assert "[q1]" in text            # at least one live match printed
        assert "== q1 (multievent):" in text
        assert "events/sec" in text
