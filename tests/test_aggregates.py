"""Tests for aggregate functions and the per-group history ring."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import SemanticError
from repro.engine.aggregates import AGGREGATES, GroupHistory, aggregate


class TestAggregateFunctions:
    def test_basic_values(self):
        values = [4, 1, 3, 2]
        assert aggregate("count", values) == 4
        assert aggregate("sum", values) == 10
        assert aggregate("avg", values) == 2.5
        assert aggregate("min", values) == 1
        assert aggregate("max", values) == 4
        assert aggregate("median", values) == 2.5
        assert aggregate("first", values) == 4
        assert aggregate("last", values) == 2

    def test_empty_set_conventions(self):
        assert aggregate("count", []) == 0
        assert aggregate("sum", []) == 0
        assert aggregate("avg", []) == 0.0
        assert aggregate("stddev", []) == 0.0
        for func in ("min", "max", "median", "first", "last"):
            assert aggregate(func, []) is None

    def test_stddev_population(self):
        assert aggregate("stddev", [2, 4, 4, 4, 5, 5, 7, 9]) == 2.0
        assert aggregate("stddev", [5]) == 0.0

    def test_median_odd(self):
        assert aggregate("median", [9, 1, 5]) == 5

    def test_unknown_function(self):
        with pytest.raises(SemanticError, match="unknown aggregate"):
            aggregate("mode", [1])

    @given(st.lists(st.integers(min_value=-1000, max_value=1000),
                    min_size=1, max_size=50))
    def test_avg_between_min_and_max(self, values):
        avg = aggregate("avg", values)
        assert aggregate("min", values) <= avg <= aggregate("max", values)

    @given(st.lists(st.floats(min_value=-100, max_value=100),
                    min_size=2, max_size=30))
    def test_stddev_nonnegative_and_translation_invariant(self, values):
        s1 = aggregate("stddev", values)
        s2 = aggregate("stddev", [v + 10 for v in values])
        assert s1 >= 0
        assert math.isclose(s1, s2, abs_tol=1e-6)


class TestGroupHistory:
    def test_offset_zero_is_current(self):
        history = GroupHistory(depth=3)
        history.record(("g",), "amt", 1.0)
        assert history.lookup(("g",), "amt", 0) == 1.0

    def test_offsets_walk_back_in_time(self):
        history = GroupHistory(depth=3)
        for value in (1.0, 2.0, 3.0):
            history.record(("g",), "amt", value)
        assert history.lookup(("g",), "amt", 0) == 3.0
        assert history.lookup(("g",), "amt", 1) == 2.0
        assert history.lookup(("g",), "amt", 2) == 1.0

    def test_missing_history_is_none(self):
        history = GroupHistory(depth=3)
        history.record(("g",), "amt", 1.0)
        assert history.lookup(("g",), "amt", 1) is None
        assert history.lookup(("other",), "amt", 0) is None

    def test_depth_bounds_memory(self):
        history = GroupHistory(depth=2)
        for value in range(10):
            history.record(("g",), "amt", value)
        assert history.lookup(("g",), "amt", 0) == 9
        assert history.lookup(("g",), "amt", 1) == 8
        assert history.lookup(("g",), "amt", 2) is None

    def test_groups_are_independent(self):
        history = GroupHistory(depth=2)
        history.record(("a",), "amt", 1.0)
        history.record(("b",), "amt", 2.0)
        assert history.lookup(("a",), "amt", 0) == 1.0
        assert history.lookup(("b",), "amt", 0) == 2.0
        assert history.known_groups() == {("a",), ("b",)}

    def test_aliases_are_independent(self):
        history = GroupHistory(depth=2)
        history.record(("g",), "amt", 1.0)
        history.record(("g",), "cnt", 5)
        assert history.lookup(("g",), "cnt", 0) == 5
        assert history.lookup(("g",), "amt", 0) == 1.0

    def test_bad_depth(self):
        with pytest.raises(SemanticError):
            GroupHistory(depth=0)

    def test_registry_is_complete(self):
        for name in ("count", "sum", "avg", "min", "max", "stddev",
                     "median", "first", "last"):
            assert name in AGGREGATES
